//! Regenerates every experiment table/figure of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p insightnotes-bench --bin report            # all
//! cargo run --release -p insightnotes-bench --bin report -- --exp e2
//! ```
//!
//! Experiment ids: f1 f2 f3 f4 e1 e2 e3 e4 e5 e7 a1 a2 a5 a6 a8 a9 a10
//! (e6 is a property-test suite, not a timing experiment — see
//! tests/plan_equivalence.rs). Experiments with machine-readable output
//! (a5, a6, a8, a9, a10) also write a `BENCH_<name>.json` next to the
//! text table.

use insightnotes_annotations::{AnnotationBody, ColSig};
use insightnotes_bench::{
    annotate_one_row, annotated_db, drive_ingest_writer, ms, timed, write_bench_json, Json, SEED,
};
use insightnotes_common::RowId;
use insightnotes_engine::{Database, ExecOutcome};
use insightnotes_summaries::MaintenanceMode;
use insightnotes_text::NaiveBayes;
use insightnotes_workload::{zoomin_reference_stream, BirdGen, ANNOTATION_CLASSES};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let filter = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_ascii_lowercase());
    let run = |id: &str| filter.as_deref().is_none_or(|f| f == id);

    println!("InsightNotes experiment report (seed 0x{SEED:x})");
    println!("===============================================\n");
    if run("f1") {
        f1_compression();
    }
    if run("f2") {
        f2_pipeline_figure();
    }
    if run("f3") {
        f3_zoomin();
    }
    if run("f4") {
        f4_instances_scaling();
    }
    if run("e1") {
        e1_maintenance();
    }
    if run("e2") {
        e2_propagation();
    }
    if run("e3") {
        e3_merge_overlap();
    }
    if run("e4") {
        e4_cache_policies();
    }
    if run("e5") {
        e5_invariant_optimization();
    }
    if run("e7") {
        e7_summary_predicates();
    }
    if run("a1") {
        a1_cluster_budget();
    }
    if run("a2") {
        a2_index_access_path();
    }
    if run("a5") {
        a5_ingest_throughput();
    }
    if run("a6") {
        a6_recovery();
    }
    if run("a8") {
        a8_replication();
    }
    if run("a9") {
        a9_net_concurrency();
    }
    if run("a10") {
        a10_curation();
    }
}

fn header(title: &str) {
    println!("{title}");
    println!("{}", "-".repeat(title.len()));
}

/// F1 (Figure 1): summaries versus raw annotations at the paper's
/// annotation ratios.
fn f1_compression() {
    header("F1 — annotation summarization compression (Figure 1)");
    println!(
        "{:>6} {:>8} {:>12} {:>9} {:>12} {:>11} {:>12}",
        "ratio", "raw anns", "raw KiB", "objects", "summary KiB", "objs/tuple", "anns/tuple"
    );
    for ratio in [30.0, 120.0, 250.0] {
        let db = annotated_db(20, ratio);
        let store = db.store().stats();
        let objects = db.registry().object_count();
        println!(
            "{:>6} {:>8} {:>12} {:>9} {:>12} {:>11.1} {:>12.1}",
            format!("{}x", ratio as u64),
            store.count,
            store.content_bytes / 1024,
            objects,
            db.registry().total_object_bytes() / 1024,
            objects as f64 / 20.0,
            store.attachments as f64 / 20.0,
        );
    }
    println!("shape check: objects/tuple stays ≈3 while anns/tuple grows 30→250.\n");
}

/// F2 (Figure 2): the worked SPJ propagation example, regenerated as an
/// execution trace.
fn f2_pipeline_figure() {
    header("F2 — summary propagation through an SPJ pipeline (Figure 2)");
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE R (a INT, b INT, c TEXT, d TEXT);
         CREATE TABLE S (x INT, y TEXT, z TEXT);
         INSERT INTO R VALUES (1, 2, 'cv', 'dv');
         INSERT INTO S VALUES (1, 'yv', 'zv');
         CREATE SUMMARY INSTANCE ClassBird2 TYPE CLASSIFIER
           LABELS ('Provenance', 'Comment', 'Question')
           TRAIN ('Provenance': 'derived banding import record',
                  'Comment': 'interesting observation noted seen',
                  'Question': 'why unclear verify what');
         LINK SUMMARY ClassBird2 TO R;
         LINK SUMMARY ClassBird2 TO S;",
    )
    .unwrap();
    let texts = [
        (0u16, "interesting observation noted"),
        (1, "noted again seen"),
        (2, "derived from banding import"),
        (3, "why unclear verify"),
    ];
    for (col, text) in texts {
        db.annotate_rows(
            "R",
            &[RowId::new(1)],
            ColSig::single(insightnotes_common::ColumnId::new(col)),
            AnnotationBody::text(text, "f2"),
        )
        .unwrap();
    }
    db.annotate_rows(
        "S",
        &[RowId::new(1)],
        ColSig::single(insightnotes_common::ColumnId::new(2)),
        AnnotationBody::text("observation seen nearby", "f2"),
    )
    .unwrap();
    let (_, trace) = db
        .query_traced("SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2")
        .unwrap();
    print!("{trace}");
    println!();
}

/// F3 (Figure 3): zoom-in latency, cache hit versus forced re-execution.
fn f3_zoomin() {
    header("F3 — zoom-in processing (Figure 3): cache hit vs re-execution");
    let mut db = annotated_db(200, 60.0);
    let result = db.query("SELECT id, name, weight FROM birds").unwrap();
    let qid = result.qid.raw();
    let zoom = format!("ZOOMIN REFERENCE QID {qid} ON ClassBird1 LABEL 'Disease'");

    let (outcome, hit_time) = timed(|| db.execute_sql(&zoom).unwrap());
    let ExecOutcome::ZoomIn(z) = &outcome[0] else {
        panic!()
    };
    assert!(z.from_cache);
    let retrieved = z.annotations.len();

    // Evict, then zoom again: the engine re-executes the retained plan.
    let qid_typed = insightnotes_common::Qid::new(qid);
    db.zoom_cache_evict(qid_typed);
    let (outcome, miss_time) = timed(|| db.execute_sql(&zoom).unwrap());
    let ExecOutcome::ZoomIn(z) = &outcome[0] else {
        panic!()
    };
    assert!(!z.from_cache);

    println!("{:>14} {:>12} {:>12}", "path", "latency ms", "annotations");
    println!("{:>14} {:>12} {:>12}", "cache hit", ms(hit_time), retrieved);
    println!(
        "{:>14} {:>12} {:>12}",
        "re-execution",
        ms(miss_time),
        z.annotations.len()
    );
    println!("shape check: the hit path avoids the full query re-run.\n");
}

/// F4 (Figure 4): scalability with the number of linked summary
/// instances.
fn f4_instances_scaling() {
    header("F4 — scaling with linked summary instances (Figure 4)");
    println!(
        "{:>10} {:>16} {:>14}",
        "instances", "add-100-anns ms", "query ms"
    );
    for extra in [0usize, 2, 5, 10, 20] {
        let mut db = annotated_db(50, 10.0);
        for i in 0..extra {
            db.execute_sql(&format!(
                "CREATE SUMMARY INSTANCE Extra{i} TYPE CLASSIFIER
                   LABELS ('Behavior', 'Disease', 'Anatomy', 'Other')
                   TRAIN ('Behavior': 'eating diving foraging',
                          'Disease': 'lesions parasites infection',
                          'Anatomy': 'wingspan plumage measured',
                          'Other': 'reference photo attached');
                 LINK SUMMARY Extra{i} TO birds"
            ))
            .unwrap();
        }
        let total = 3 + extra;
        let (_, add_time) = timed(|| annotate_one_row(&mut db, 1, 100, SEED + extra as u64));
        let (_, query_time) = timed(|| {
            db.query("SELECT id, name, weight, region FROM birds WHERE weight > 2")
                .unwrap()
        });
        println!("{total:>10} {:>16} {:>14}", ms(add_time), ms(query_time));
    }
    println!("shape check: both costs grow ≈linearly in the instance count.\n");
}

/// E1: incremental maintenance versus recompute-from-scratch.
fn e1_maintenance() {
    header("E1 — incremental maintenance vs rebuild-from-scratch");
    println!(
        "{:>14} {:>16} {:>14} {:>10}",
        "existing anns", "incremental ms", "rebuild ms", "speedup"
    );
    for existing in [100usize, 500, 1000, 2000] {
        let mut inc = annotated_db(10, 1.0);
        annotate_one_row(&mut inc, 1, existing, SEED);
        let mut reb = annotated_db(10, 1.0);
        annotate_one_row(&mut reb, 1, existing, SEED);
        // lint:allow(wal-bypass) — bench harness config on a throwaway
        // in-memory database with no WAL attached.
        reb.set_maintenance_mode(MaintenanceMode::Rebuild);

        let (_, inc_t) = timed(|| annotate_one_row(&mut inc, 1, 50, SEED + 1));
        let (_, reb_t) = timed(|| annotate_one_row(&mut reb, 1, 50, SEED + 1));
        println!(
            "{existing:>14} {:>16} {:>14} {:>9.1}x",
            ms(inc_t),
            ms(reb_t),
            reb_t.as_secs_f64() / inc_t.as_secs_f64().max(1e-9)
        );
    }
    println!("shape check: rebuild grows with existing volume; incremental is flat.\n");
}

/// E2: summary-aware propagation versus the raw-propagation baseline.
/// Measures query execution *plus result delivery* (serializing what the
/// client receives) — a raw system ships every annotation's content with
/// every output tuple; InsightNotes ships three summary objects.
fn e2_propagation() {
    header("E2 — summary propagation vs raw-annotation propagation (SPJ)");
    let query = "SELECT a.id, a.name, b.name FROM birds a, birds b \
                 WHERE a.region = b.region AND a.weight > 6";
    println!(
        "{:>6} {:>13} {:>12} {:>10} {:>12} {:>9} {:>7}",
        "ratio", "summary ms", "sum KiB", "raw ms", "raw KiB", "slowdown", "rows"
    );
    for ratio in [30.0, 120.0, 250.0, 500.0] {
        let db = annotated_db(60, ratio);
        // Delivery = what the client displays: summary objects rendered
        // in the paper's notation vs every raw annotation's text.
        let (sum_bytes_rows, sum_t) = timed(|| {
            let result = db.query_uncached(query).unwrap();
            let mut bytes = 0usize;
            for row in &result.rows {
                bytes += row.row.to_string().len();
                for (_, obj) in &row.summaries {
                    bytes += obj.to_string().len();
                }
            }
            (bytes, result.rows.len())
        });
        let (raw_bytes_rows, raw_t) = timed(|| {
            let rows = db.query_raw(query).unwrap();
            let mut bytes = 0usize;
            for row in &rows {
                bytes += row.row.to_string().len();
                for a in &row.anns {
                    bytes += a.text.len() + 8;
                }
            }
            (bytes, rows.len())
        });
        assert_eq!(sum_bytes_rows.1, raw_bytes_rows.1);
        println!(
            "{:>6} {:>13} {:>12} {:>10} {:>12} {:>8.1}x {:>7}",
            format!("{}x", ratio as u64),
            ms(sum_t),
            sum_bytes_rows.0 / 1024,
            ms(raw_t),
            raw_bytes_rows.0 / 1024,
            raw_t.as_secs_f64() / sum_t.as_secs_f64().max(1e-9),
            sum_bytes_rows.1
        );
    }
    println!(
        "shape check: summary cost is bounded (objects are O(1) per tuple) while\n\
         raw time and delivery bytes grow linearly with the ratio — the curves\n\
         converge toward the paper's crossover as ratios climb past 250x."
    );
    println!();
}

/// E3: join-merge cost versus the fraction of shared annotations.
fn e3_merge_overlap() {
    header("E3 — join summary-merge cost vs shared-annotation overlap");
    println!("{:>9} {:>12} {:>14}", "overlap", "join ms", "merged count");
    let n = 2000usize;
    for overlap in [0.0f64, 0.25, 0.5, 1.0] {
        let mut db = Database::new();
        db.execute_sql(
            "CREATE TABLE L (k INT); CREATE TABLE R (k INT);
             INSERT INTO L VALUES (1); INSERT INTO R VALUES (1);
             CREATE SUMMARY INSTANCE C TYPE CLASSIFIER
               LABELS ('Behavior', 'Other')
               TRAIN ('Behavior': 'eating diving', 'Other': 'reference photo');
             LINK SUMMARY C TO L; LINK SUMMARY C TO R;",
        )
        .unwrap();
        let l = db.catalog().table_id("l").unwrap();
        let r = db.catalog().table_id("r").unwrap();
        let shared = (n as f64 * overlap) as usize;
        let mut gen = BirdGen::new(SEED);
        for i in 0..n {
            let ann = gen.annotation(0.0, 0.0);
            let body = AnnotationBody::text(ann.text, ann.author);
            let mut targets = vec![(l, RowId::new(1), ColSig::whole_row(1))];
            if i < shared {
                targets.push((r, RowId::new(1), ColSig::whole_row(1)));
            }
            db.annotate_targets(targets, body).unwrap();
        }
        // Right side gets its own annotations for the non-shared part.
        for _ in 0..(n - shared) {
            let ann = gen.annotation(0.0, 0.0);
            db.annotate_rows(
                "R",
                &[RowId::new(1)],
                ColSig::whole_row(1),
                AnnotationBody::text(ann.text, ann.author),
            )
            .unwrap();
        }
        let (result, t) = timed(|| {
            db.query("SELECT l.k, r.k FROM L l, R r WHERE l.k = r.k")
                .unwrap()
        });
        let inst = db.registry().instance_id("C").unwrap();
        let merged = result.rows[0].summary(inst).unwrap().annotation_count();
        println!("{:>8.0}% {:>12} {:>14}", overlap * 100.0, ms(t), merged);
    }
    println!(
        "shape check: merged counts shrink with overlap (no double counting);\ncost stays flat.\n"
    );
}

/// E4: the RCO replacement policy vs LRU / LFU over the real disk
/// cache, driven by a controlled result population: result sizes and
/// recomputation costs are *anti-correlated across part of the
/// population* (some small results are very expensive to recompute, some
/// bulky ones are cheap), and references follow a Zipf stream. The
/// figure of merit is the total recomputation cost paid on misses —
/// what a zoom-in user experiences.
fn e4_cache_policies() {
    use insightnotes_engine::cache::{DiskCache, Lfu, Lru, Rco, ReplacementPolicy};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    header("E4 — result-cache replacement: RCO vs LRU vs LFU");

    // 60 query results; ~25% fit in the cache at a time.
    let mut rng = SmallRng::seed_from_u64(SEED);
    let results: Vec<(u64, usize, f64)> = (0..60u64)
        .map(|qid| {
            // Size 2–40 KiB; complexity partly anti-correlated with size.
            let size = rng.gen_range(2..=40) * 1024usize;
            let complexity = if rng.gen_bool(0.5) {
                // Expensive small results (heavy joins, tight filters).
                rng.gen_range(500.0..5_000.0) * (50_000.0 / size as f64)
            } else {
                // Cheap bulky results (plain scans).
                rng.gen_range(1.0..50.0)
            };
            (qid + 101, size, complexity)
        })
        .collect();
    let qids: Vec<u64> = results.iter().map(|r| r.0).collect();
    let stream = zoomin_reference_stream(SEED, &qids, 1500);

    println!(
        "{:>8} {:>8} {:>8} {:>10} {:>18}",
        "policy", "hits", "misses", "hit rate", "recompute cost"
    );
    let policies: Vec<(&str, Box<dyn ReplacementPolicy>)> = vec![
        ("rco", Box::new(Rco::default())),
        ("lru", Box::new(Lru)),
        ("lfu", Box::new(Lfu)),
    ];
    for (name, policy) in policies {
        let dir = std::env::temp_dir().join(format!(
            "insightnotes-report-e4-{}-{name}",
            std::process::id()
        ));
        let mut cache = DiskCache::new(dir, 256 << 10, policy).unwrap();
        let by_qid: std::collections::HashMap<u64, (usize, f64)> =
            results.iter().map(|&(q, s, c)| (q, (s, c))).collect();
        let mut recompute_cost = 0.0f64;
        let (mut hits, mut misses) = (0u64, 0u64);
        for &qid in &stream {
            let (size, complexity) = by_qid[&qid];
            let q = insightnotes_common::Qid::new(qid);
            if cache.get(q).unwrap().is_some() {
                hits += 1;
            } else {
                misses += 1;
                recompute_cost += complexity;
                cache.put(q, &vec![0u8; size], complexity).unwrap();
            }
        }
        println!(
            "{name:>8} {hits:>8} {misses:>8} {:>9.1}% {:>18.0}",
            100.0 * hits as f64 / stream.len() as f64,
            recompute_cost
        );
    }
    println!(
        "shape check: LRU/LFU chase raw hit counts; RCO trades some hits away\n\
         to retain the expensive-to-recompute results and pays ~2–3x less\n\
         total recomputation — the Complexity/Overhead factors the classic\n\
         policies ignore."
    );
    println!();
}

/// E5: the summarize-once (invariant-property) optimization.
fn e5_invariant_optimization() {
    header("E5 — summarize-once optimization for multi-tuple annotations");
    println!(
        "{:>14} {:>14} {:>13} {:>15} {:>14}",
        "tuples/ann", "cached ms", "digests", "uncached ms", "digests"
    );
    for fanout in [1usize, 4, 16, 64] {
        let run = |use_cache: bool| {
            let mut db = annotated_db(64, 1.0);
            // lint:allow(wal-bypass) — bench harness config on a
            // throwaway in-memory database with no WAL attached.
            db.registry_mut().use_digest_cache = use_cache;
            let rows: Vec<RowId> = (1..=fanout as u64).map(RowId::new).collect();
            let mut gen = BirdGen::new(SEED);
            let mut digests = 0usize;
            let (_, t) = timed(|| {
                for _ in 0..100 {
                    let ann = gen.annotation(0.0, 0.0);
                    db.annotate_rows(
                        "birds",
                        &rows,
                        ColSig::whole_row(6),
                        AnnotationBody::text(ann.text, ann.author),
                    )
                    .unwrap();
                }
                digests = db.registry().digest_cache_len();
            });
            (t, digests)
        };
        let (cached_t, _) = run(true);
        let (uncached_t, _) = run(false);
        // Digest counts: cached = 100 annotations x 3 instances;
        // uncached = 100 x 3 x fanout.
        println!(
            "{fanout:>14} {:>14} {:>13} {:>15} {:>14}",
            ms(cached_t),
            100 * 3,
            ms(uncached_t),
            100 * 3 * fanout
        );
    }
    println!("shape check: the uncached path grows with fan-out; cached stays flat.\n");
}

/// E7: summary-based predicates versus post-filtering raw annotations.
fn e7_summary_predicates() {
    header("E7 — summary predicates vs raw post-filtering");
    println!(
        "{:>6} {:>19} {:>16} {:>9}",
        "ratio", "summary-pred ms", "raw-filter ms", "matches"
    );
    for ratio in [30.0, 120.0] {
        let db = annotated_db(60, ratio);
        let (sum_result, sum_t) = timed(|| {
            db.query(
                "SELECT id, name, weight, region FROM birds \
                 WHERE SUMMARY_COUNT(ClassBird1, 'Disease') > 3",
            )
            .unwrap()
        });

        // Baseline: scan everything raw, classify each annotation at
        // query time, and filter — what a raw-propagation system must do.
        let mut gen = BirdGen::new(SEED);
        let mut model = NaiveBayes::new(
            ANNOTATION_CLASSES
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
        );
        for (class, text) in gen.training_corpus(12) {
            model.train(class, &text);
        }
        let disease = model.label_index("Disease").unwrap();
        let (raw_matches, raw_t) = timed(|| {
            let rows = db
                .query_raw("SELECT id, name, weight, region FROM birds")
                .unwrap();
            rows.into_iter()
                .filter(|r| {
                    r.anns
                        .iter()
                        .filter(|a| model.classify(&a.text) == disease)
                        .count()
                        > 3
                })
                .count()
        });
        assert_eq!(sum_result.rows.len(), raw_matches);
        println!(
            "{:>6} {:>19} {:>16} {:>9}",
            format!("{}x", ratio as u64),
            ms(sum_t),
            ms(raw_t),
            raw_matches
        );
    }
    println!("shape check: classifying raw text at query time dwarfs reading counts.\n");
}

/// A1 (ablation): the bounded cluster-group budget. DESIGN.md argues the
/// budget is what keeps summary objects O(1)-sized and join merges
/// O(budget²); this sweep shows the trade against group granularity.
fn a1_cluster_budget() {
    header("A1 — ablation: cluster-group budget (max_groups)");
    println!(
        "{:>8} {:>10} {:>14} {:>14}",
        "budget", "join ms", "groups/tuple", "object KiB"
    );
    let query = "SELECT a.id, a.name, b.name FROM birds a, birds b \
                 WHERE a.region = b.region AND a.weight > 6";
    for budget in [4usize, 16, 64, 256] {
        let mut db = Database::new();
        // Seed manually so the SimCluster instance carries this budget.
        insightnotes_workload::seed_birds_database(
            &mut db,
            &insightnotes_workload::WorkloadConfig {
                seed: SEED,
                num_birds: 40,
                annotation_ratio: 120.0,
                ..insightnotes_workload::WorkloadConfig::default()
            },
        )
        .unwrap();
        // Replace the default cluster instance with one at this budget,
        // then rebuild (link catch-up re-summarizes existing annotations).
        db.execute_sql("UNLINK SUMMARY SimCluster FROM birds")
            .unwrap();
        db.execute_sql("DROP SUMMARY INSTANCE SimCluster").unwrap();
        let def = insightnotes_summaries::InstanceDef::Cluster {
            name: "SimCluster".into(),
            config: insightnotes_text::ClusterConfig {
                threshold: 0.5,
                max_groups: budget,
                ..insightnotes_text::ClusterConfig::default()
            },
            properties: insightnotes_summaries::InstanceProperties::default(),
        };
        // lint:allow(wal-bypass) — bench harness setup on a throwaway
        // in-memory database with no WAL attached.
        db.registry_mut().create_instance(def).unwrap();
        db.execute_sql("LINK SUMMARY SimCluster TO birds").unwrap();

        let (result, t) = timed(|| db.query_uncached(query).unwrap());
        let sim = db.registry().instance_id("SimCluster").unwrap();
        let mut groups = 0usize;
        let mut bytes = 0usize;
        let mut with_obj = 0usize;
        for row in &result.rows {
            if let Some(obj) = row.summary(sim) {
                groups += obj.component_count();
                bytes += obj.heap_bytes();
                with_obj += 1;
            }
        }
        println!(
            "{budget:>8} {:>10} {:>14.1} {:>14}",
            ms(t),
            groups as f64 / with_obj.max(1) as f64,
            bytes / 1024
        );
    }
    println!(
        "shape check: join time and object size grow with the budget while\n\
         group granularity (groups/tuple) saturates — the default of 16\n\
         sits at the knee."
    );
    println!();
}

/// A2 (ablation): the hash-index access path for point lookups and
/// targeted `ADD ANNOTATION`, versus full scans, as the table grows.
fn a2_index_access_path() {
    header("A2 — ablation: hash-index access path vs scan");
    println!(
        "{:>8} {:>14} {:>13} {:>16} {:>15}",
        "rows", "scan query ms", "idx query ms", "scan annotate ms", "idx annotate ms"
    );
    for rows in [1_000usize, 10_000, 50_000] {
        let build = |indexed: bool| {
            let mut db = Database::new();
            db.execute_sql("CREATE TABLE t (id INT, v TEXT)").unwrap();
            if indexed {
                db.execute_sql("CREATE INDEX ON t (id)").unwrap();
            }
            let mut batch = Vec::with_capacity(256);
            for i in 0..rows {
                batch.push(format!("({i}, 'v{i}')"));
                if batch.len() == 256 {
                    db.execute_sql(&format!("INSERT INTO t VALUES {}", batch.join(", ")))
                        .unwrap();
                    batch.clear();
                }
            }
            if !batch.is_empty() {
                db.execute_sql(&format!("INSERT INTO t VALUES {}", batch.join(", ")))
                    .unwrap();
            }
            db.execute_sql(
                "CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('n') TRAIN ('n': 'w');
                 LINK SUMMARY C TO t",
            )
            .unwrap();
            db
        };
        let run_one = |db: &mut Database| {
            let (_, q) = timed(|| {
                for probe in [7usize, rows / 2, rows - 1] {
                    db.query_uncached(&format!("SELECT v FROM t WHERE id = {probe}"))
                        .unwrap();
                }
            });
            let (_, a) = timed(|| {
                for probe in [11usize, rows / 3, rows - 2] {
                    db.execute_sql(&format!("ADD ANNOTATION 'w note' ON t WHERE id = {probe}"))
                        .unwrap();
                }
            });
            (q, a)
        };
        let mut scan_db = build(false);
        let mut idx_db = build(true);
        let (sq, sa) = run_one(&mut scan_db);
        let (iq, ia) = run_one(&mut idx_db);
        println!(
            "{rows:>8} {:>14} {:>13} {:>16} {:>15}",
            ms(sq),
            ms(iq),
            ms(sa),
            ms(ia)
        );
    }
    println!("shape check: scan paths grow linearly with the table; index paths stay flat.");
    println!();
}

/// A5: group-commit annotation ingest through the server path. A fixed
/// budget of `ADD ANNOTATION` statements is pushed through an
/// in-process `insightd` by concurrent writer connections at client
/// batch sizes 1/16/256, under a background analyst load that keeps the
/// shared read lock busy. Batch size 1 pays a round-trip, a
/// commit-queue hand-off, and a write-lock wait behind in-flight scans
/// per annotation; batches amortize all of it across the group. The
/// sweep runs once per engine layout — `shards` ∈ {1, 4}: shards = 1 is
/// the legacy single-lock engine, shards = 4 hash-partitions rows over
/// four locks with one committer each, so writers and analysts only
/// collide when they touch the same shard. Every cell runs on a freshly
/// seeded server so cells are comparable. Emits
/// `BENCH_ingest_throughput.json` alongside the table.
fn a5_ingest_throughput() {
    use insightnotes_bench::{ReaderLoad, INGEST_READERS, INGEST_READER_SCAN, INGEST_READER_THINK};
    use insightnotes_client::Client;
    use insightnotes_engine::ShardedDatabase;
    use insightnotes_server::{Server, ServerConfig};
    use insightnotes_workload::{ingest_script, IngestConfig};

    header("A5 — group-commit ingest throughput under reader load");
    const BIRDS: usize = 500;
    const TOTAL: usize = 512;
    // Reader-load cells are scheduling-noise heavy on small hosts;
    // seven runs per cell keeps the reported median out of the tails.
    const RUNS: usize = 7;

    println!(
        "{:>7} {:>8} {:>6} {:>12} {:>12} {:>9}",
        "shards", "writers", "batch", "median ms", "anns/sec", "speedup"
    );
    let mut records = Vec::new();
    for shards in [1usize, 4] {
        for writers in [1usize, 8, 32] {
            let script = ingest_script(&IngestConfig {
                writers,
                annotations_per_writer: TOTAL / writers,
                num_birds: BIRDS,
                ..IngestConfig::default()
            });
            let mut batch1_tput = 0.0f64;
            for batch in [1usize, 16, 256] {
                // Fresh server per cell: every measurement starts from
                // the same seeded state regardless of sweep order.
                let db = ShardedDatabase::create(insightnotes_engine::DbConfig::default(), shards)
                    .expect("sharded db");
                let server =
                    Server::bind_sharded("127.0.0.1:0", db, ServerConfig::default()).expect("bind");
                let addr = server.local_addr().expect("local addr");
                let handle = server.handle();
                let thread = std::thread::spawn(move || server.run().expect("server run"));
                let mut setup_client = Client::connect(addr).expect("connect");
                for stmt in &script.setup {
                    setup_client.execute(stmt).expect("setup statement");
                }
                // Persistent writer connections AND threads, barrier-
                // synced per run: timed regions measure ingest, not the
                // accept loop's poll latency or 32 thread spawns.
                let mut conns: Vec<Client> = (0..writers)
                    .map(|_| Client::connect(addr).expect("connect"))
                    .collect();
                let readers = ReaderLoad::start(
                    addr,
                    INGEST_READERS,
                    INGEST_READER_SCAN,
                    INGEST_READER_THINK,
                );

                let barrier = std::sync::Barrier::new(writers + 1);
                let mut times: Vec<std::time::Duration> = Vec::with_capacity(RUNS);
                std::thread::scope(|scope| {
                    for (mut conn, stream) in conns.drain(..).zip(&script.clients) {
                        let barrier = &barrier;
                        scope.spawn(move || {
                            for _ in 0..RUNS {
                                barrier.wait();
                                drive_ingest_writer(&mut conn, stream, batch);
                                barrier.wait();
                            }
                        });
                    }
                    for _ in 0..RUNS {
                        let (_, t) = timed(|| {
                            barrier.wait();
                            barrier.wait();
                        });
                        times.push(t);
                    }
                });
                drop(readers);
                handle.shutdown();
                thread.join().expect("server thread");

                times.sort();
                let median = times[RUNS / 2];
                let tput = TOTAL as f64 / median.as_secs_f64().max(1e-9);
                if batch == 1 {
                    batch1_tput = tput;
                }
                let speedup = tput / batch1_tput.max(1e-9);
                println!(
                    "{shards:>7} {writers:>8} {batch:>6} {:>12} {:>12.0} {:>8.1}x",
                    ms(median),
                    tput,
                    speedup
                );
                records.push(Json::obj([
                    ("shards", Json::from(shards)),
                    ("writers", Json::from(writers)),
                    ("batch", Json::from(batch)),
                    ("median_ns", Json::from(median.as_nanos() as u64)),
                    ("annotations_per_sec", Json::Num(tput)),
                    ("speedup_vs_batch1", Json::Num(speedup)),
                ]));
            }
        }
    }

    let config = Json::obj([
        ("seed", Json::from(SEED)),
        ("num_birds", Json::from(BIRDS)),
        ("annotations_per_run", Json::from(TOTAL)),
        ("runs_per_cell", Json::from(RUNS)),
        ("readers", Json::from(INGEST_READERS)),
        ("reader_scan", Json::from(INGEST_READER_SCAN)),
        (
            "reader_think_ms",
            Json::Num(INGEST_READER_THINK.as_secs_f64() * 1e3),
        ),
        ("shards", Json::Arr(vec![1usize.into(), 4usize.into()])),
        (
            "writers",
            Json::Arr(vec![1usize.into(), 8usize.into(), 32usize.into()]),
        ),
        (
            "batch_sizes",
            Json::Arr(vec![1usize.into(), 16usize.into(), 256usize.into()]),
        ),
    ]);
    match write_bench_json("ingest_throughput", config, records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write BENCH_ingest_throughput.json: {e}"),
    }
    println!(
        "shape check: with one writer, batch=256 clears 5x over batch=1 — the\n\
         unbatched path waits out an in-flight scan per annotation, the batched\n\
         path twice per 512. At 8/32 writers the batch=1 baseline itself\n\
         improves ~2x: the server's write-combining queue already group-commits\n\
         concurrent single-statement writers; client-side batching recovers the\n\
         rest. At shards=4 the analyst scans pin only the shard they read,\n\
         so writers routed to the other shards commit without waiting; the\n\
         32-writer batch=256 cell should clear the 8-writer one instead of\n\
         plateauing on the global write lock.\n"
    );
}

/// A6: write-ahead-log overhead and crash-recovery time. The same
/// annotation stream is ingested one statement at a time (one log
/// record each), with one group fsync per 64 statements — the server
/// committer's cadence for single-`Annotate` writers — under WAL `off`,
/// `batch` (fsync at the group boundary only), and `always` (fsync on
/// every append; what durable acks would cost without group commit).
/// Then the process "crashes" (the database is dropped without a save)
/// and recovery replays the full log. A final row measures recovery
/// after a checkpoint, where the log is rotated down to a header and
/// startup cost is the snapshot load alone. Emits `BENCH_recovery.json`.
fn a6_recovery() {
    use insightnotes_engine::{DbConfig, SyncPolicy};
    use insightnotes_workload::{ingest_script, IngestConfig};

    header("A6 — WAL overhead and crash recovery");
    const BIRDS: usize = 300;
    const TOTAL: usize = 1024;
    const GROUP: usize = 64; // statements per group commit
    const RUNS: usize = 3;

    let script = ingest_script(&IngestConfig {
        writers: 1,
        annotations_per_writer: TOTAL,
        num_birds: BIRDS,
        ..IngestConfig::default()
    });
    let stream: Vec<String> = script.clients.concat();
    let setup = script.setup.join(";\n");

    let scratch = |tag: &str| {
        let dir =
            std::env::temp_dir().join(format!("insightnotes-a6-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    };
    let ingest = |db: &mut Database| {
        for chunk in stream.chunks(GROUP) {
            for sql in chunk {
                db.execute_sql(sql).expect("ingest statement");
            }
            db.wal_sync().expect("group fsync");
        }
    };

    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>11} {:>12}",
        "wal", "ingest ms", "overhead", "wal KiB", "recover ms", "replayed"
    );
    let mut records = Vec::new();
    let mut base_ms = 0.0f64;
    for (label, wal) in [
        ("off", None),
        ("batch", Some(SyncPolicy::Batch)),
        ("always", Some(SyncPolicy::Always)),
    ] {
        // Median-of-RUNS ingest, each run on a fresh directory; the
        // last run's directory is then recovered from.
        let mut runs: Vec<(std::time::Duration, std::path::PathBuf)> = (0..RUNS)
            .map(|i| {
                let dir = scratch(&format!("{label}-{i}"));
                let config = DbConfig {
                    wal_dir: wal.map(|_| dir.clone()),
                    wal_sync: wal.unwrap_or_default(),
                    ..DbConfig::default()
                };
                let mut db = Database::with_config(config).expect("config");
                db.execute_sql(&setup).expect("setup");
                let (_, t) = timed(|| ingest(&mut db));
                (t, dir)
            })
            .collect();
        runs.sort_by_key(|(t, _)| *t);
        let (ingest_time, dir) = runs[RUNS / 2].clone();
        let ingest_ms = ingest_time.as_secs_f64() * 1e3;
        if label == "off" {
            base_ms = ingest_ms;
        }
        let overhead = (ingest_ms - base_ms) / base_ms.max(1e-9) * 100.0;

        let config = DbConfig {
            wal_dir: wal.map(|_| dir.clone()),
            wal_sync: wal.unwrap_or_default(),
            ..DbConfig::default()
        };
        let wal_bytes = wal.map_or(0, |_| {
            std::fs::metadata(insightnotes_engine::wal::Wal::path_in(&dir))
                .expect("wal metadata")
                .len()
        });
        // Crash: nothing saved, the log is all that survives. Recovery
        // replays every record through the normal execution paths.
        let (recover_ms, replayed) = if wal.is_some() {
            let ((_, report), t) =
                timed(|| Database::recover(None, config.clone()).expect("recover"));
            (t.as_secs_f64() * 1e3, report.records_replayed)
        } else {
            (0.0, 0)
        };
        println!(
            "{label:>8} {ingest_ms:>12.2} {:>9} {:>10} {recover_ms:>11.2} {replayed:>12}",
            if label == "off" {
                "-".to_string()
            } else {
                format!("{overhead:+.1}%")
            },
            wal_bytes / 1024,
        );
        records.push(Json::obj([
            ("wal", Json::from(label)),
            ("ingest_ms", Json::Num(ingest_ms)),
            ("overhead_pct", Json::Num(overhead)),
            ("wal_bytes", Json::from(wal_bytes)),
            ("recover_ms", Json::Num(recover_ms)),
            ("records_replayed", Json::from(replayed)),
        ]));
    }

    // Recovery after a checkpoint: the log is rotated down to a header,
    // so startup is a snapshot load plus zero replays.
    {
        let dir = scratch("checkpoint");
        let snap = dir.join("db.indb");
        let config = DbConfig {
            wal_dir: Some(dir.clone()),
            wal_sync: SyncPolicy::Batch,
            ..DbConfig::default()
        };
        let mut db = Database::with_config(config.clone()).expect("config");
        db.execute_sql(&setup).expect("setup");
        ingest(&mut db);
        db.checkpoint(&snap).expect("checkpoint");
        drop(db);
        let ((_, report), t) =
            timed(|| Database::recover(Some(&snap), config.clone()).expect("recover"));
        let recover_ms = t.as_secs_f64() * 1e3;
        println!(
            "{:>8} {:>12} {:>9} {:>10} {recover_ms:>11.2} {:>12}",
            "ckpt",
            "-",
            "-",
            std::fs::metadata(&snap).expect("snap metadata").len() / 1024,
            report.records_replayed
        );
        records.push(Json::obj([
            ("wal", Json::from("checkpoint")),
            ("ingest_ms", Json::Num(0.0)),
            ("overhead_pct", Json::Num(0.0)),
            (
                "snapshot_bytes",
                Json::from(std::fs::metadata(&snap).expect("snap metadata").len()),
            ),
            ("recover_ms", Json::Num(recover_ms)),
            ("records_replayed", Json::from(report.records_replayed)),
        ]));
    }

    let config = Json::obj([
        ("seed", Json::from(SEED)),
        ("num_birds", Json::from(BIRDS)),
        ("annotations", Json::from(TOTAL)),
        ("group_commit_size", Json::from(GROUP)),
        ("runs_per_cell", Json::from(RUNS)),
    ]);
    match write_bench_json("recovery", config, records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write BENCH_recovery.json: {e}"),
    }
    println!(
        "shape check: `batch` amortizes the fsync across each 64-statement group\n\
         (16 fsyncs total); `always` pays one per record (1024) and lands well\n\
         above it. Replay recovery re-runs maintenance for every logged record,\n\
         so it costs about one ingest; a checkpoint collapses it to a snapshot\n\
         load.\n"
    );
}

/// A8: WAL-shipping replication. Two questions against an in-process
/// primary with live read replicas (each a `Replicator` tailing the
/// primary's committed per-shard WAL streams plus its own serving
/// `insightd` instance): (1) how far behind the primary's committed
/// position does a replica run while a Zipfian batched ingest is in
/// flight (replication lag, sampled as `wait_for_offset` round-trips),
/// and (2) how does aggregate point-read throughput grow when a fixed
/// analyst pool fans out over 1/2/4 replicas instead of hammering the
/// primary. Emits `BENCH_replication.json`.
fn a8_replication() {
    use insightnotes_client::Client;
    use insightnotes_engine::{DbConfig, ShardedDatabase, SyncPolicy};
    use insightnotes_replication::replica::{ReplicaConfig, Replicator};
    use insightnotes_server::{ReplicaServing, Server, ServerConfig};
    use insightnotes_workload::{ingest_script, IngestConfig};
    use std::net::SocketAddr;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    header("A8 — WAL-shipping replication: replica lag and read scale-out");
    const SHARDS: usize = 2;
    const BIRDS: usize = 300;
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 256;
    const BATCH: usize = 16;
    const ZIPF_SKEW: f64 = 1.0;
    const REPLICAS: usize = 4;
    const ANALYSTS_PER_NODE: usize = 8;
    const THINK: Duration = Duration::from_millis(10);
    const CELL: Duration = Duration::from_millis(1500);
    const MIX_BATCH: usize = 8;
    const MIX_PAUSE: Duration = Duration::from_millis(25);

    let scratch = |tag: &str| {
        let dir =
            std::env::temp_dir().join(format!("insightnotes-a8-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    };
    let serve = |db: ShardedDatabase, config: ServerConfig| {
        let server = Server::bind_sharded("127.0.0.1:0", db, config).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run().expect("server run"));
        (addr, handle, thread)
    };

    // Primary: WAL-backed, group-commit fsync — the committed stream the
    // replicas tail is exactly what durable acks promise.
    let dir = scratch("primary");
    let config = DbConfig {
        wal_dir: Some(dir.clone()),
        wal_sync: SyncPolicy::Batch,
        ..DbConfig::default()
    };
    let (db, _) = ShardedDatabase::recover(None, config, SHARDS).expect("primary recover");
    let (primary_addr, primary_handle, primary_thread) = serve(db, ServerConfig::default());

    let script = ingest_script(&IngestConfig {
        seed: SEED,
        writers: WRITERS,
        annotations_per_writer: PER_WRITER,
        num_birds: BIRDS,
        skew: ZIPF_SKEW,
    });
    let mut setup_client = Client::connect(primary_addr).expect("connect");
    for stmt in &script.setup {
        setup_client.execute(stmt).expect("setup statement");
    }

    // Replica fleet: each tails the primary into its own directory and
    // serves reads through its own insightd front end.
    let mut fleet = Vec::new(); // (addr, handle, thread, replicator)
    for r in 0..REPLICAS {
        let boot = Replicator::start(&ReplicaConfig::new(
            primary_addr.to_string(),
            scratch(&format!("replica-{r}")),
        ))
        .expect("replica start");
        let positions = boot.replicator.positions();
        let (addr, handle, thread) = serve(
            boot.db,
            ServerConfig {
                replica: Some(ReplicaServing {
                    primary: primary_addr.to_string(),
                    positions,
                }),
                ..ServerConfig::default()
            },
        );
        fleet.push((addr, handle, thread, boot.replicator));
    }

    // Part 1a — backlog while a full-rate Zipfian ingest burst is in
    // flight. Each sample captures the primary's committed vector, then
    // times how long replica 0 takes to cover it over the wire. The
    // fleet is primed to the post-setup state first so the first sample
    // measures tailing, not bootstrap warmup.
    let primed = setup_client.replica_state().expect("positions");
    for (addr, ..) in &fleet {
        Client::connect(*addr)
            .expect("connect")
            .wait_for_offset(&primed, Duration::from_secs(30))
            .expect("replica primed");
    }
    let done = AtomicUsize::new(0);
    let mut lag_ms: Vec<f64> = Vec::new();
    let (_, ingest_time) = {
        let mut sampler_primary = Client::connect(primary_addr).expect("connect");
        let mut sampler_replica = Client::connect(fleet[0].0).expect("connect");
        let done = &done;
        let clients = &script.clients;
        timed(|| {
            std::thread::scope(|scope| {
                for stream in clients {
                    scope.spawn(move || {
                        let mut c = Client::connect(primary_addr).expect("connect");
                        for chunk in stream.chunks(BATCH) {
                            for item in c.annotate_batch(chunk.to_vec()).expect("batch") {
                                item.expect("acked");
                            }
                        }
                        done.fetch_add(1, Ordering::SeqCst);
                    });
                }
                loop {
                    let finished = done.load(Ordering::SeqCst) == WRITERS;
                    let target = sampler_primary.replica_state().expect("positions");
                    let (r, t) =
                        timed(|| sampler_replica.wait_for_offset(&target, Duration::from_secs(30)));
                    r.expect("replica catches up");
                    lag_ms.push(t.as_secs_f64() * 1e3);
                    if finished {
                        break; // final sample drained everything committed
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        })
    };
    lag_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite lag"));
    let pct = |p: f64| lag_ms[((lag_ms.len() - 1) as f64 * p) as usize];
    let total_anns = WRITERS * PER_WRITER;
    println!(
        "ingest: {total_anns} annotations, {WRITERS} writers, batch {BATCH}, \
         zipf {ZIPF_SKEW}: {} ({:.0} anns/sec)",
        ms(ingest_time),
        total_anns as f64 / ingest_time.as_secs_f64().max(1e-9)
    );
    println!(
        "burst backlog over {} samples: p50 {:.1} ms, max {:.1} ms",
        lag_ms.len(),
        pct(0.5),
        lag_ms.last().copied().unwrap_or(0.0)
    );
    let mut records = vec![Json::obj([
        ("kind", Json::from("burst_backlog")),
        ("samples", Json::from(lag_ms.len())),
        ("backlog_ms_p50", Json::Num(pct(0.5))),
        (
            "backlog_ms_max",
            Json::Num(lag_ms.last().copied().unwrap_or(0.0)),
        ),
        (
            "ingest_anns_per_sec",
            Json::Num(total_anns as f64 / ingest_time.as_secs_f64().max(1e-9)),
        ),
    ])];

    // Part 1b — steady-state lag under a paced Zipfian mix: a throttled
    // curator annotates at a sustainable rate while the sampler measures
    // how far replica 0 trails the primary's committed vector.
    const LAG_SAMPLES: usize = 100;
    let paced = ingest_script(&IngestConfig {
        seed: SEED ^ 0x51EAD,
        writers: 1,
        annotations_per_writer: 1024,
        num_birds: BIRDS,
        skew: ZIPF_SKEW,
    });
    let stop_paced = std::sync::atomic::AtomicBool::new(false);
    let mut paced_ms: Vec<f64> = Vec::new();
    std::thread::scope(|scope| {
        let stop = &stop_paced;
        let stmts = &paced.clients[0];
        scope.spawn(move || {
            let mut c = Client::connect(primary_addr).expect("connect");
            let mut at = 0usize;
            while !stop.load(Ordering::SeqCst) {
                let end = (at + MIX_BATCH).min(stmts.len());
                for item in c
                    .annotate_batch(stmts[at..end].to_vec())
                    .expect("paced mix")
                {
                    item.expect("acked");
                }
                at = if end == stmts.len() { 0 } else { end };
                std::thread::sleep(MIX_PAUSE);
            }
        });
        let mut sampler_primary = Client::connect(primary_addr).expect("connect");
        let mut sampler_replica = Client::connect(fleet[0].0).expect("connect");
        for _ in 0..LAG_SAMPLES {
            std::thread::sleep(Duration::from_millis(5));
            let target = sampler_primary.replica_state().expect("positions");
            let (r, t) =
                timed(|| sampler_replica.wait_for_offset(&target, Duration::from_secs(30)));
            r.expect("replica catches up");
            paced_ms.push(t.as_secs_f64() * 1e3);
        }
        stop.store(true, Ordering::SeqCst);
    });
    paced_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite lag"));
    let ppct = |p: f64| paced_ms[((paced_ms.len() - 1) as f64 * p) as usize];
    println!(
        "steady-state replica lag over {} samples (paced mix): p50 {:.2} ms, \
         p95 {:.2} ms, max {:.1} ms",
        paced_ms.len(),
        ppct(0.5),
        ppct(0.95),
        paced_ms.last().copied().unwrap_or(0.0)
    );
    records.push(Json::obj([
        ("kind", Json::from("replica_lag")),
        ("samples", Json::from(paced_ms.len())),
        ("lag_ms_p50", Json::Num(ppct(0.5))),
        ("lag_ms_p95", Json::Num(ppct(0.95))),
        (
            "lag_ms_max",
            Json::Num(paced_ms.last().copied().unwrap_or(0.0)),
        ),
    ]));

    // Part 2 — read scale-out under the live Zipfian mix. Each serving
    // node gets its own closed-loop analyst pool (ANALYSTS_PER_NODE
    // connections, THINK of pause between Zipf-drawn point SELECTs
    // with summary propagation) while a background curator keeps
    // annotating the primary — the paper's browse-heavy population on
    // top of a live write stream. Offered load scales with the fleet,
    // per-read latency is reported alongside throughput so "more
    // replicas" is checkably more capacity, not just more clients.
    let mix = ingest_script(&IngestConfig {
        seed: SEED ^ 0xA8,
        writers: 1,
        annotations_per_writer: 4096,
        num_birds: BIRDS,
        skew: ZIPF_SKEW,
    });
    let stop_mix = std::sync::atomic::AtomicBool::new(false);
    println!(
        "\n{:>12} {:>9} {:>10} {:>12} {:>9} {:>9} {:>9}",
        "serving", "analysts", "reads", "reads/sec", "p50 us", "p95 us", "speedup"
    );
    let mut one_replica_tput = 0.0f64;
    std::thread::scope(|scope| {
        let stop_mix = &stop_mix;
        let mix_stmts = &mix.clients[0];
        scope.spawn(move || {
            let mut c = Client::connect(primary_addr).expect("connect");
            let mut at = 0usize;
            while !stop_mix.load(Ordering::SeqCst) {
                let end = (at + MIX_BATCH).min(mix_stmts.len());
                for item in c.annotate_batch(mix_stmts[at..end].to_vec()).expect("mix") {
                    item.expect("acked");
                }
                at = if end == mix_stmts.len() { 0 } else { end };
                std::thread::sleep(MIX_PAUSE);
            }
        });
        for (label, replicas) in [("primary", 0usize), ("1", 1), ("2", 2), ("4", 4)] {
            let targets: Vec<SocketAddr> = if replicas == 0 {
                vec![primary_addr]
            } else {
                fleet.iter().take(replicas).map(|f| f.0).collect()
            };
            // Every replica starts the cell caught up to the mix so far.
            let target = setup_client.replica_state().expect("positions");
            for (addr, ..) in &fleet {
                Client::connect(*addr)
                    .expect("connect")
                    .wait_for_offset(&target, Duration::from_secs(30))
                    .expect("replica caught up");
            }
            let analysts = ANALYSTS_PER_NODE * targets.len();
            let stop_cell = std::sync::atomic::AtomicBool::new(false);
            let (mut lat, t) = timed(|| {
                std::thread::scope(|cell| {
                    let stop_cell = &stop_cell;
                    let handles: Vec<_> = (0..analysts)
                        .map(|a| {
                            let addr = targets[a % targets.len()];
                            cell.spawn(move || {
                                let mut c = Client::connect(addr).expect("connect");
                                let mut lat_us: Vec<u64> = Vec::with_capacity(512);
                                // Cheap deterministic Zipf-ish probes.
                                let mut x = SEED ^ (a as u64).wrapping_mul(0x9E37_79B9);
                                while !stop_cell.load(Ordering::Relaxed) {
                                    x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                                    let id = (x >> 33) % BIRDS as u64 % ((x >> 13) % 40 + 1) + 1;
                                    let ((), rt) = timed(|| {
                                        c.query(&format!(
                                            "SELECT name, weight FROM birds WHERE id = {id}"
                                        ))
                                        .map(|_| ())
                                        .expect("point read");
                                    });
                                    lat_us.push(rt.as_micros() as u64);
                                    std::thread::sleep(THINK);
                                }
                                lat_us
                            })
                        })
                        .collect();
                    std::thread::sleep(CELL);
                    stop_cell.store(true, Ordering::SeqCst);
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("analyst"))
                        .collect::<Vec<u64>>()
                })
            });
            lat.sort_unstable();
            let lpct = |p: f64| {
                if lat.is_empty() {
                    0
                } else {
                    lat[((lat.len() - 1) as f64 * p) as usize]
                }
            };
            let total_reads = lat.len();
            let tput = total_reads as f64 / t.as_secs_f64().max(1e-9);
            if replicas == 1 {
                one_replica_tput = tput;
            }
            let speedup_txt = if replicas == 0 {
                "-".to_string()
            } else {
                format!("{:.1}x", tput / one_replica_tput.max(1e-9))
            };
            println!(
                "{label:>12} {analysts:>9} {total_reads:>10} {tput:>12.0} {:>9} {:>9} \
                 {speedup_txt:>9}",
                lpct(0.5),
                lpct(0.95),
            );
            let mut rec = vec![
                ("kind", Json::from("read_scaleout")),
                ("serving", Json::from(label)),
                ("replicas", Json::from(replicas)),
                ("analysts", Json::from(analysts)),
                ("total_reads", Json::from(total_reads)),
                ("duration_ns", Json::from(t.as_nanos() as u64)),
                ("reads_per_sec", Json::Num(tput)),
                ("read_us_p50", Json::from(lpct(0.5))),
                ("read_us_p95", Json::from(lpct(0.95))),
            ];
            if replicas >= 1 {
                rec.push((
                    "speedup_vs_one_replica",
                    Json::Num(tput / one_replica_tput.max(1e-9)),
                ));
            }
            records.push(Json::obj(rec));
        }
        stop_mix.store(true, Ordering::SeqCst);
    });

    for (_, handle, thread, replicator) in fleet {
        handle.shutdown();
        thread.join().expect("replica server thread");
        drop(replicator);
    }
    primary_handle.shutdown();
    primary_thread.join().expect("primary server thread");

    let config = Json::obj([
        ("seed", Json::from(SEED)),
        ("shards", Json::from(SHARDS)),
        ("num_birds", Json::from(BIRDS)),
        ("writers", Json::from(WRITERS)),
        ("annotations", Json::from(WRITERS * PER_WRITER)),
        ("batch", Json::from(BATCH)),
        ("zipf_skew", Json::Num(ZIPF_SKEW)),
        ("analysts_per_node", Json::from(ANALYSTS_PER_NODE)),
        ("think_ms", Json::from(THINK.as_millis() as u64)),
        ("cell_ms", Json::from(CELL.as_millis() as u64)),
        ("mix_batch", Json::from(MIX_BATCH)),
        ("mix_pause_ms", Json::from(MIX_PAUSE.as_millis() as u64)),
        (
            "replica_counts",
            Json::Arr(vec![1usize.into(), 2usize.into(), 4usize.into()]),
        ),
    ]);
    match write_bench_json("replication", config, records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write BENCH_replication.json: {e}"),
    }
    println!(
        "shape check: median steady-state lag is sub-millisecond — a replica's\n\
         distance from the primary is one committed-frame ship plus one local\n\
         group apply, not a rebuild; tail samples ride a hot row's summary\n\
         maintenance apply, and a full-rate burst's backlog drains within the\n\
         burst itself. In the scale-out sweep each node carries\n\
         its own closed-loop analyst pool, so aggregate point-read throughput\n\
         grows with the replica count while per-read p50 stays flat — added\n\
         replicas are added capacity, not queueing. (This container is\n\
         single-core, so the cells are sized to stay under the machine's\n\
         ~12k reads/sec round-trip ceiling; on real per-box hardware the\n\
         per-node ceiling is what replicas multiply.)\n"
    );
}

/// A10: the annotation lifecycle. Part 1 retracts a slice of a heavily
/// annotated row's annotations under both maintenance modes —
/// decremental (subtract the departed annotation's contribution in
/// O(annotation)) versus rebuild-on-retract (re-summarize every target
/// row from the store) — at growing pre-existing volume. The decremental
/// path should stay flat while rebuild grows with volume, mirroring E1's
/// additive result on the removal side. Part 2 replays a full curation
/// session (annotate → flag → correct → retract mixes plus SELECTs)
/// through the SQL path end to end. Emits `BENCH_curation.json`.
fn a10_curation() {
    use insightnotes_workload::{curation_script, CurationConfig};

    header("A10 — curation: decremental retract vs rebuild-on-retract");
    const RETRACTS: usize = 50;
    println!(
        "{:>14} {:>16} {:>14} {:>10}",
        "existing anns", "decremental ms", "rebuild ms", "speedup"
    );
    let mut records = Vec::new();
    for existing in [200usize, 1000, 2000] {
        let build = || {
            let mut db = annotated_db(10, 1.0);
            annotate_one_row(&mut db, 1, existing, SEED);
            db
        };
        let mut inc = build();
        let mut reb = build();
        // lint:allow(wal-bypass) — bench harness config on a throwaway
        // in-memory database with no WAL attached.
        reb.set_maintenance_mode(MaintenanceMode::Rebuild);
        // The last `existing` ids all live on row 1; retract the first
        // RETRACTS of them through the SQL path on both databases.
        let first = inc.store().last_id() - existing as u64 + 1;
        let retract = |db: &mut Database| {
            for id in first..first + RETRACTS as u64 {
                db.execute_sql(&format!("RETRACT ANNOTATION {id}"))
                    .expect("retract");
            }
        };
        let (_, inc_t) = timed(|| retract(&mut inc));
        let (_, reb_t) = timed(|| retract(&mut reb));
        // Both paths end at the same tombstone ledger; the byte-level
        // classifier-equality oracle lives in the engine's tests.
        assert_eq!(inc.store().stats().retired, reb.store().stats().retired);
        let speedup = reb_t.as_secs_f64() / inc_t.as_secs_f64().max(1e-9);
        println!(
            "{existing:>14} {:>16} {:>14} {:>9.1}x",
            ms(inc_t),
            ms(reb_t),
            speedup
        );
        records.push(Json::obj([
            ("kind", Json::from("retract_maintenance")),
            ("existing", Json::from(existing)),
            ("retracts", Json::from(RETRACTS)),
            ("decremental_ns", Json::from(inc_t.as_nanos() as u64)),
            ("rebuild_ns", Json::from(reb_t.as_nanos() as u64)),
            ("speedup", Json::Num(speedup)),
        ]));
    }

    // Part 2 — a full curation session through the SQL path.
    let cfg = CurationConfig {
        seed: SEED,
        clients: 4,
        statements_per_client: 100,
        num_birds: 150,
        ..CurationConfig::default()
    };
    let script = curation_script(&cfg);
    let mut db = Database::new();
    for stmt in &script.setup {
        db.execute_sql(stmt).expect("setup statement");
    }
    let serial = script.serial_order();
    let tail = &serial[script.setup.len()..];
    let (_, t) = timed(|| {
        for stmt in tail {
            db.execute_sql(stmt).expect("curation statement");
        }
    });
    let stats = db.store().stats();
    let count = |p: &str| tail.iter().filter(|s| s.starts_with(p)).count();
    let tput = tail.len() as f64 / t.as_secs_f64().max(1e-9);
    println!(
        "\ncuration session: {} statements ({} add / {} flag / {} correct / \
         {} retract / {} select) in {} ({tput:.0} stmts/sec); \
         {} live, {} tombstoned",
        tail.len(),
        count("ADD ANNOTATION"),
        count("FLAG ANNOTATION"),
        count("CORRECT ANNOTATION"),
        count("RETRACT ANNOTATION"),
        count("SELECT"),
        ms(t),
        stats.count,
        stats.retired,
    );
    records.push(Json::obj([
        ("kind", Json::from("curation_session")),
        ("statements", Json::from(tail.len())),
        ("adds", Json::from(count("ADD ANNOTATION"))),
        ("flags", Json::from(count("FLAG ANNOTATION"))),
        ("corrects", Json::from(count("CORRECT ANNOTATION"))),
        ("retracts", Json::from(count("RETRACT ANNOTATION"))),
        ("selects", Json::from(count("SELECT"))),
        ("median_ns", Json::from(t.as_nanos() as u64)),
        ("statements_per_sec", Json::Num(tput)),
        ("live", Json::from(stats.count)),
        ("tombstoned", Json::from(stats.retired)),
    ]));

    let config = Json::obj([
        ("seed", Json::from(SEED)),
        ("retracts_per_cell", Json::from(RETRACTS)),
        (
            "existing",
            Json::Arr(vec![200usize.into(), 1000usize.into(), 2000usize.into()]),
        ),
        ("session_clients", Json::from(cfg.clients)),
        (
            "session_statements_per_client",
            Json::from(cfg.statements_per_client),
        ),
        ("session_num_birds", Json::from(cfg.num_birds)),
    ]);
    match write_bench_json("curation", config, records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write BENCH_curation.json: {e}"),
    }
    println!(
        "shape check: decremental retract stays flat as pre-existing volume\n\
         grows while rebuild-on-retract re-summarizes the whole row and grows\n\
         linearly — the removal-side twin of E1's maintenance result. The\n\
         session row shows the full lifecycle mix sustains ingest-class\n\
         throughput (no hidden rebuilds on the curation path).\n"
    );
}

/// Resident set size of this process in kilobytes, from
/// `/proc/self/status` (`None` off Linux or if the line is missing).
fn vm_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmRSS:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
}

/// A9: the epoll reactor under pipelining and connection fan-out.
/// Emits `BENCH_net_concurrency.json`.
fn a9_net_concurrency() {
    use insightnotes_client::PipelinedClient;
    use insightnotes_common::wire::{Request, Response};
    use insightnotes_engine::{DbConfig, ShardedDatabase, SyncPolicy};
    use insightnotes_server::{Server, ServerConfig};
    use insightnotes_workload::{ingest_script, IngestConfig};
    use std::time::Duration;

    header("A9 — event-loop concurrency and request pipelining");
    let fd_limit = insightnotes_server::reactor::raise_fd_limit();
    let mut records = Vec::new();

    // -- pipelined single-connection writes (WAL on, batch fsync) -----
    // Depth 1 is the serial-protocol baseline: every annotation pays a
    // full round-trip and its own group commit. Deeper windows keep the
    // committer's queue fed, so one fsync covers the in-flight window.
    const BIRDS: usize = 500;
    const WRITES: usize = 256;
    const RUNS: usize = 5;
    println!("pipelined writes, one connection, WAL batch sync, {WRITES} annotations/run:");
    println!(
        "{:>7} {:>6} {:>12} {:>12} {:>9}",
        "shards", "depth", "median ms", "writes/sec", "speedup"
    );
    for shards in [1usize, 4] {
        let mut depth1_tput = 0.0f64;
        for depth in [1usize, 16, 64] {
            let dir = std::env::temp_dir().join(format!(
                "insightnotes-a9-{}-s{shards}-d{depth}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let db = ShardedDatabase::create(
                DbConfig {
                    wal_dir: Some(dir.clone()),
                    wal_sync: SyncPolicy::Batch,
                    ..DbConfig::default()
                },
                shards,
            )
            .expect("wal-backed db");
            let server =
                Server::bind_sharded("127.0.0.1:0", db, ServerConfig::default()).expect("bind");
            let addr = server.local_addr().expect("local addr");
            let handle = server.handle();
            let thread = std::thread::spawn(move || server.run().expect("server run"));

            let script = ingest_script(&IngestConfig {
                writers: RUNS,
                annotations_per_writer: WRITES,
                num_birds: BIRDS,
                ..IngestConfig::default()
            });
            let mut setup = insightnotes_client::Client::connect(addr).expect("connect");
            for stmt in &script.setup {
                setup.execute(stmt).expect("setup statement");
            }
            let mut client = PipelinedClient::connect(addr).expect("connect");
            let mut times = Vec::with_capacity(RUNS);
            for stream in &script.clients {
                let (_, t) = timed(|| {
                    for sql in stream {
                        // Windowed schedule: submit a full window as
                        // one corked burst, then drain it. The whole
                        // window lands in the committer's queue
                        // together, so each fsync covers ~`depth`
                        // writes; one-at-a-time refills would shrink
                        // commit groups to the client's turnaround
                        // rate.
                        if client.in_flight() >= depth {
                            while client.in_flight() > 0 {
                                let (_, resp) = client.recv_any().expect("response");
                                assert!(!matches!(resp, Response::Error(_)), "write failed");
                            }
                        }
                        client
                            .submit(&Request::Annotate { sql: sql.clone() })
                            .expect("submit");
                    }
                    for (_, resp) in client.drain().expect("drain") {
                        assert!(!matches!(resp, Response::Error(_)), "write failed");
                    }
                });
                times.push(t);
            }
            handle.shutdown();
            thread.join().expect("server thread");
            let _ = std::fs::remove_dir_all(&dir);

            times.sort();
            let median = times[RUNS / 2];
            let tput = WRITES as f64 / median.as_secs_f64().max(1e-9);
            if depth == 1 {
                depth1_tput = tput;
            }
            let speedup = tput / depth1_tput.max(1e-9);
            println!(
                "{shards:>7} {depth:>6} {:>12} {:>12.0} {:>8.1}x",
                ms(median),
                tput,
                speedup
            );
            records.push(Json::obj([
                ("kind", Json::from("pipeline_write")),
                ("shards", Json::from(shards)),
                ("depth", Json::from(depth)),
                ("median_ns", Json::from(median.as_nanos() as u64)),
                ("writes_per_sec", Json::Num(tput)),
                ("speedup_vs_depth1", Json::Num(speedup)),
            ]));
        }
    }

    // -- connection fan-out (pipelined pings) -------------------------
    // Each fleet is opened once and held; every cell then loads `depth`
    // pings on every connection before draining any, so the server
    // carries conns × depth requests in flight at peak. RSS is this
    // whole process — client fleet *and* in-process server — so the
    // per-connection figure is an upper bound on the server side.
    println!("\nconnection fan-out, pipelined pings (fd limit {fd_limit}):");
    println!(
        "{:>7} {:>6} {:>10} {:>12} {:>12} {:>12} {:>7}",
        "conns", "depth", "open ms", "serve ms", "req/sec", "rss KB/conn", "errors"
    );
    // Client fleet and server share this process, so every connection
    // costs two fds against one limit; leave slack for WAL segments,
    // epoll sets, and stdio. Oversized cells are clamped (and recorded
    // as such) rather than skipped — a 20k-fd container still measures
    // a ~9.9k-connection fleet. The true 10k-connection case is the
    // two-process `insight-cli --flood` smoke in check.sh.
    let fleet_budget = if fd_limit == 0 {
        usize::MAX
    } else {
        (fd_limit as usize).saturating_sub(768) / 2
    };
    for requested in [64usize, 1_000, 10_000] {
        let conns = requested.min(fleet_budget);
        if conns == 0 {
            println!("{requested:>7}  skipped: fd limit {fd_limit} too low");
            records.push(Json::obj([
                ("kind", Json::from("conn_fanout")),
                ("conns_requested", Json::from(requested)),
                ("skipped", Json::from("fd limit too low")),
            ]));
            continue;
        }
        if conns < requested {
            println!(
                "{requested:>7}  clamped to {conns} (fd limit {fd_limit}, \
                 2 fds/conn in-process)"
            );
        }
        let db = ShardedDatabase::create(DbConfig::default(), 1).expect("db");
        let server =
            Server::bind_sharded("127.0.0.1:0", db, ServerConfig::default()).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run().expect("server run"));

        let rss_before = vm_rss_kb().unwrap_or(0);
        let mut failed_opens = 0usize;
        // A timeout on the handshake (and on every later blocking
        // read) keeps an fd-exhausted edge honest instead of deadly:
        // a connection the server cannot accept becomes a counted
        // failed open whose closed socket frees fds for the rest,
        // rather than a read that blocks the whole report forever.
        let (mut fleet, open_time) = timed(|| {
            let mut fleet = Vec::with_capacity(conns);
            for _ in 0..conns {
                match PipelinedClient::connect_timeout(&addr, Duration::from_secs(10)) {
                    Ok(c) => fleet.push(c),
                    Err(_) => failed_opens += 1,
                }
            }
            fleet
        });
        let rss_after = vm_rss_kb().unwrap_or(rss_before);
        let rss_per_conn =
            rss_after.saturating_sub(rss_before) as f64 / (fleet.len().max(1)) as f64;

        for depth in [1usize, 16, 64] {
            let mut errors = failed_opens;
            let (_, serve) = timed(|| {
                for client in &mut fleet {
                    for _ in 0..depth {
                        if client.submit(&Request::Ping).is_err() {
                            errors += 1;
                        }
                    }
                }
                // Push every corked window onto the wire before any
                // drain, so the server really holds conns × depth
                // requests in flight at peak.
                for client in &mut fleet {
                    if client.flush().is_err() {
                        errors += 1;
                    }
                }
                for client in &mut fleet {
                    match client.drain() {
                        Ok(resps) => {
                            errors += resps
                                .iter()
                                .filter(|(_, r)| !matches!(r, Response::Pong { .. }))
                                .count();
                        }
                        Err(_) => errors += depth,
                    }
                }
            });
            let total = fleet.len() * depth;
            let tput = total as f64 / serve.as_secs_f64().max(1e-9);
            println!(
                "{conns:>7} {depth:>6} {:>10} {:>12} {:>12.0} {:>12.1} {errors:>7}",
                ms(open_time),
                ms(serve),
                tput,
                rss_per_conn
            );
            records.push(Json::obj([
                ("kind", Json::from("conn_fanout")),
                ("conns_requested", Json::from(requested)),
                ("conns_attempted", Json::from(conns)),
                ("conns_open", Json::from(fleet.len())),
                ("depth", Json::from(depth)),
                ("open_ns", Json::from(open_time.as_nanos() as u64)),
                ("serve_ns", Json::from(serve.as_nanos() as u64)),
                ("requests_per_sec", Json::Num(tput)),
                ("rss_kb_per_conn", Json::Num(rss_per_conn)),
                ("errors", Json::from(errors)),
            ]));
        }
        drop(fleet);
        handle.shutdown();
        thread.join().expect("server thread");
    }

    let config = Json::obj([
        ("seed", Json::from(SEED)),
        ("num_birds", Json::from(BIRDS)),
        ("writes_per_run", Json::from(WRITES)),
        ("runs_per_cell", Json::from(RUNS)),
        ("fd_limit", Json::from(fd_limit)),
        (
            "depths",
            Json::Arr(vec![1usize.into(), 16usize.into(), 64usize.into()]),
        ),
        (
            "conns",
            Json::Arr(vec![64usize.into(), 1_000usize.into(), 10_000usize.into()]),
        ),
        (
            "rss_note",
            Json::from("VmRSS covers the whole process: client fleet plus in-process server"),
        ),
    ]);
    match write_bench_json("net_concurrency", config, records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => println!("could not write BENCH_net_concurrency.json: {e}"),
    }
    println!(
        "shape check: depth 16 clears 5x over depth 1 on the single-shard write\n\
         rows — the serial protocol pays one round-trip and one group commit\n\
         per annotation while a 16-deep window shares each fsync (and each\n\
         wire burst) across the whole window. The 4-shard rows record the\n\
         cross-shard fan-out cost of the async combine; on a multi-core box\n\
         the per-shard committers pay it back in parallel applies, on this\n\
         single-core container they don't. On the fan-out grid req/sec holds\n\
         within the same order of magnitude from 64 connections to the\n\
         fd-budget ceiling (~10k two-fds-per-connection in-process) and RSS\n\
         per connection stays flat (around a kilobyte): a connection is an\n\
         event-loop entry plus buffers, not a thread stack.\n"
    );
}
