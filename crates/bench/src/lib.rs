//! Shared fixtures for the benchmark harness.
//!
//! Both the Criterion benches (`benches/`) and the paper-table
//! regenerator (`src/bin/report.rs`) build their workloads through these
//! helpers so the two always measure the same configurations.

use insightnotes_annotations::{AnnotationBody, ColSig};
use insightnotes_common::{ColumnId, RowId};
use insightnotes_engine::db::PolicyKind;
use insightnotes_engine::{Database, DbConfig};
use insightnotes_summaries::MaintenanceMode;
use insightnotes_workload::{seed_birds_database, WorkloadConfig};
use std::time::{Duration, Instant};

/// Standard seed shared by all experiments.
pub const SEED: u64 = 0x0151_6874;

/// Builds a seeded bird database at the given scale with a
/// morsel-parallel executor (`None` = serial baseline).
pub fn annotated_db_parallel(num_birds: usize, ratio: f64, parallelism: Option<usize>) -> Database {
    let mut db = Database::with_config(DbConfig {
        parallelism,
        ..DbConfig::default()
    })
    .expect("config");
    seed_birds_database(
        &mut db,
        &WorkloadConfig {
            seed: SEED,
            num_birds,
            annotation_ratio: ratio,
            duplicate_rate: 0.25,
            document_rate: 0.05,
            multi_tuple_rate: 0.05,
            column_rate: 0.3,
        },
    )
    .expect("seeding");
    db
}

/// Builds a seeded bird database at the given scale.
pub fn annotated_db(num_birds: usize, ratio: f64) -> Database {
    let mut db = Database::new();
    seed_birds_database(
        &mut db,
        &WorkloadConfig {
            seed: SEED,
            num_birds,
            annotation_ratio: ratio,
            duplicate_rate: 0.25,
            document_rate: 0.05,
            multi_tuple_rate: 0.05,
            column_rate: 0.3,
        },
    )
    .expect("seeding");
    db
}

/// Builds a database with an explicit cache/maintenance configuration,
/// then seeds it.
pub fn annotated_db_with(
    num_birds: usize,
    ratio: f64,
    policy: PolicyKind,
    cache_budget: u64,
    maintenance: MaintenanceMode,
) -> Database {
    let mut db = Database::with_config(DbConfig {
        cache_budget,
        policy,
        maintenance,
        cache_dir: None,
        parallelism: None,
    })
    .expect("config");
    seed_birds_database(
        &mut db,
        &WorkloadConfig {
            seed: SEED,
            num_birds,
            annotation_ratio: ratio,
            ..WorkloadConfig::default()
        },
    )
    .expect("seeding");
    db
}

/// Attaches `n` generator annotations to one row of `db`'s bird table.
pub fn annotate_one_row(db: &mut Database, row: u64, n: usize, seed: u64) {
    let mut gen = insightnotes_workload::BirdGen::new(seed);
    let arity = db
        .catalog()
        .table_by_name("birds")
        .expect("birds table")
        .schema()
        .arity();
    for i in 0..n {
        let ann = gen.annotation(0.2, 0.0);
        let cols = if i % 3 == 0 {
            ColSig::single(ColumnId::new((i % arity) as u16))
        } else {
            ColSig::whole_row(arity)
        };
        db.annotate_rows(
            "birds",
            &[RowId::new(row)],
            cols,
            AnnotationBody::text(ann.text, ann.author),
        )
        .expect("annotate");
    }
}

/// Wall-clock measurement of `f`, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Milliseconds with two decimals, for table printing.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}
