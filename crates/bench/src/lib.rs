//! Shared fixtures for the benchmark harness.
//!
//! Both the Criterion benches (`benches/`) and the paper-table
//! regenerator (`src/bin/report.rs`) build their workloads through these
//! helpers so the two always measure the same configurations.

use insightnotes_annotations::{AnnotationBody, ColSig};
use insightnotes_common::{ColumnId, RowId};
use insightnotes_engine::db::PolicyKind;
use insightnotes_engine::{Database, DbConfig};
use insightnotes_summaries::MaintenanceMode;
use insightnotes_workload::{seed_birds_database, WorkloadConfig};
use std::time::{Duration, Instant};

/// Standard seed shared by all experiments.
pub const SEED: u64 = 0x0151_6874;

/// Builds a seeded bird database at the given scale with a
/// morsel-parallel executor (`None` = serial baseline).
pub fn annotated_db_parallel(num_birds: usize, ratio: f64, parallelism: Option<usize>) -> Database {
    let mut db = Database::with_config(DbConfig {
        parallelism,
        ..DbConfig::default()
    })
    .expect("config");
    seed_birds_database(
        &mut db,
        &WorkloadConfig {
            seed: SEED,
            num_birds,
            annotation_ratio: ratio,
            duplicate_rate: 0.25,
            document_rate: 0.05,
            multi_tuple_rate: 0.05,
            column_rate: 0.3,
        },
    )
    .expect("seeding");
    db
}

/// Builds a seeded bird database at the given scale.
pub fn annotated_db(num_birds: usize, ratio: f64) -> Database {
    let mut db = Database::new();
    seed_birds_database(
        &mut db,
        &WorkloadConfig {
            seed: SEED,
            num_birds,
            annotation_ratio: ratio,
            duplicate_rate: 0.25,
            document_rate: 0.05,
            multi_tuple_rate: 0.05,
            column_rate: 0.3,
        },
    )
    .expect("seeding");
    db
}

/// Builds a database with an explicit cache/maintenance configuration,
/// then seeds it.
pub fn annotated_db_with(
    num_birds: usize,
    ratio: f64,
    policy: PolicyKind,
    cache_budget: u64,
    maintenance: MaintenanceMode,
) -> Database {
    let mut db = Database::with_config(DbConfig {
        cache_budget,
        policy,
        maintenance,
        ..DbConfig::default()
    })
    .expect("config");
    seed_birds_database(
        &mut db,
        &WorkloadConfig {
            seed: SEED,
            num_birds,
            annotation_ratio: ratio,
            ..WorkloadConfig::default()
        },
    )
    .expect("seeding");
    db
}

/// Attaches `n` generator annotations to one row of `db`'s bird table.
pub fn annotate_one_row(db: &mut Database, row: u64, n: usize, seed: u64) {
    let mut gen = insightnotes_workload::BirdGen::new(seed);
    let arity = db
        .catalog()
        .table_by_name("birds")
        .expect("birds table")
        .schema()
        .arity();
    for i in 0..n {
        let ann = gen.annotation(0.2, 0.0);
        let cols = if i % 3 == 0 {
            ColSig::single(ColumnId::new((i % arity) as u16))
        } else {
            ColSig::whole_row(arity)
        };
        db.annotate_rows(
            "birds",
            &[RowId::new(row)],
            cols,
            AnnotationBody::text(ann.text, ann.author),
        )
        .expect("annotate");
    }
}

/// Reader connections held open by [`ReaderLoad`] in the ingest
/// experiments.
pub const INGEST_READERS: usize = 8;

/// The query each background reader loops: a full-table scan whose
/// execution (and summary rendering) holds the server's shared read
/// lock for its full duration.
pub const INGEST_READER_SCAN: &str = "SELECT name, sci_name, wingspan FROM birds";

/// Think time between consecutive reader queries.
pub const INGEST_READER_THINK: Duration = Duration::from_millis(1);

/// Background analyst load for the ingest experiments: N connections
/// each looping a read query with think time until dropped. Readers
/// hold the server's shared read lock for each query's full execution,
/// so every write-lock acquisition by the commit queue waits out the
/// residual of in-flight scans — the convoy that batched ingest
/// amortizes across a whole group instead of paying per annotation.
pub struct ReaderLoad {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ReaderLoad {
    /// Connects `readers` sessions to `addr` and starts their query
    /// loops. The load runs until the returned handle is dropped.
    pub fn start(addr: std::net::SocketAddr, readers: usize, query: &str, think: Duration) -> Self {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = std::sync::Arc::new(AtomicBool::new(false));
        let handles = (0..readers)
            .map(|_| {
                let stop = std::sync::Arc::clone(&stop);
                let query = query.to_string();
                let mut client =
                    insightnotes_client::Client::connect(addr).expect("reader connect");
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        client.query(&query).expect("reader query");
                        std::thread::sleep(think);
                    }
                })
            })
            .collect();
        Self { stop, handles }
    }
}

impl Drop for ReaderLoad {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::SeqCst);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Drains one ingest writer stream over an established `insightd`
/// connection: single `Annotate` frames at batch size ≤ 1,
/// `AnnotateBatch` chunks otherwise. Connections are passed in (not
/// opened here) so timed regions measure ingest, not connection setup —
/// the server's accept loop polls on `poll_interval` ticks, which would
/// otherwise dominate every measurement. Every per-item result is
/// checked — a silent failure would make a throughput measurement
/// meaningless. Shared by `benches/ingest_throughput.rs` and the A5
/// report experiment so both time the same client behavior.
pub fn drive_ingest_writer(
    client: &mut insightnotes_client::Client,
    stream: &[String],
    batch: usize,
) {
    if batch <= 1 {
        for sql in stream {
            client.annotate(sql).expect("annotate");
        }
    } else {
        for chunk in stream.chunks(batch) {
            for item in client.annotate_batch(chunk.to_vec()).expect("batch frame") {
                item.expect("batch item");
            }
        }
    }
}

/// Wall-clock measurement of `f`, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Milliseconds with two decimals, for table printing.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// A JSON value for the machine-readable bench reports. Hand-rolled
/// because the workspace carries no serde; only the shapes the reports
/// need (objects, arrays, strings, numbers).
#[derive(Debug, Clone)]
pub enum Json {
    /// A numeric value, printed without trailing `.0` when integral.
    Num(f64),
    /// A string value (escaped on render).
    Str(String),
    /// An ordered list of key/value pairs (insertion order preserved).
    Obj(Vec<(String, Json)>),
    /// An array of values.
    Arr(Vec<Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Writes a machine-readable bench report to `BENCH_<name>.json` in the
/// current directory: `{"name": .., "config": {..}, "records": [..]}`.
/// Each record is expected to carry at least `median_ns` and a
/// throughput figure so downstream tooling never has to scrape the text
/// tables. Returns the path written.
pub fn write_bench_json(
    name: &str,
    config: Json,
    records: Vec<Json>,
) -> std::io::Result<std::path::PathBuf> {
    let doc = Json::obj([
        ("name", Json::from(name)),
        ("config", config),
        ("records", Json::Arr(records)),
    ]);
    let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, doc.render() + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod json_tests {
    use super::Json;

    #[test]
    fn renders_escaped_compact_json() {
        let doc = Json::obj([
            ("name", Json::from("a \"b\"\n")),
            ("n", Json::from(256usize)),
            ("rate", Json::Num(12.5)),
            ("items", Json::Arr(vec![Json::from(1u64), Json::from(2u64)])),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"a \"b\"\n","n":256,"rate":12.5,"items":[1,2]}"#
        );
    }
}
