//! The biological-database workload variant.
//!
//! The paper's extensibility section contrasts ornithological classes
//! with gene-curation classes ({FunctionPrediction, Provenance, Comment}).
//! This generator produces a gene table and curation annotations in those
//! classes, exercising a second summarization vocabulary over the same
//! engine.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Gene-curation class labels, in zoom-index order.
pub const GENE_CLASSES: [&str; 3] = ["FunctionPrediction", "Provenance", "Comment"];

/// `CREATE TABLE` statement for the gene table.
pub const GENES_DDL: &str =
    "CREATE TABLE genes (id INT, symbol TEXT, organism TEXT, seq_len INT, description TEXT)";

const SYMBOLS: &[&str] = &[
    "BRCA1", "TP53", "EGFR", "MYC", "KRAS", "PTEN", "RB1", "APC", "VHL", "ATM", "CFTR", "HBB",
];
const ORGANISMS: &[&str] = &["human", "mouse", "zebrafish", "yeast", "fly", "worm"];

const FUNCTION_TERMS: &[&str] = &[
    "predicted",
    "kinase",
    "binding",
    "domain",
    "homology",
    "pathway",
    "regulator",
    "transcription",
    "catalytic",
    "motif",
    "ortholog",
    "expression",
];
const PROVENANCE_TERMS: &[&str] = &[
    "derived",
    "pipeline",
    "curated",
    "imported",
    "genbank",
    "assembly",
    "version",
    "alignment",
    "blast",
    "submitted",
    "accession",
    "release",
];
const COMMENT_TERMS: &[&str] = &[
    "needs",
    "review",
    "conflicting",
    "evidence",
    "unclear",
    "deprecated",
    "duplicate",
    "merged",
    "see",
    "discussion",
    "note",
    "updated",
];

/// One generated gene record, in table-column order.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneRecord {
    /// Numeric identifier.
    pub id: i64,
    /// Gene symbol.
    pub symbol: String,
    /// Organism.
    pub organism: String,
    /// Sequence length in bases.
    pub seq_len: i64,
    /// Free-text description.
    pub description: String,
}

/// Seeded generator for gene records and curation annotations.
#[derive(Debug)]
pub struct GeneGen {
    rng: SmallRng,
}

impl GeneGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Generates `n` gene records with ids `1..=n`.
    pub fn records(&mut self, n: usize) -> Vec<GeneRecord> {
        (0..n)
            .map(|i| {
                let symbol = SYMBOLS[self.rng.gen_range(0..SYMBOLS.len())];
                GeneRecord {
                    id: i as i64 + 1,
                    symbol: format!("{symbol}-{}", i + 1),
                    organism: ORGANISMS[self.rng.gen_range(0..ORGANISMS.len())].to_string(),
                    seq_len: self.rng.gen_range(400..200_000),
                    description: format!("{symbol} locus annotation target"),
                }
            })
            .collect()
    }

    fn class_terms(class: usize) -> &'static [&'static str] {
        match class {
            0 => FUNCTION_TERMS,
            1 => PROVENANCE_TERMS,
            _ => COMMENT_TERMS,
        }
    }

    /// Generates one curation annotation: `(class index, text)`.
    pub fn annotation(&mut self) -> (usize, String) {
        let class = self.rng.gen_range(0..GENE_CLASSES.len());
        let terms = Self::class_terms(class);
        let n = self.rng.gen_range(4..8);
        let words: Vec<&str> = (0..n)
            .map(|_| terms[self.rng.gen_range(0..terms.len())])
            .collect();
        (class, words.join(" "))
    }

    /// A labeled training corpus: `per_class` examples per class.
    pub fn training_corpus(&mut self, per_class: usize) -> Vec<(usize, String)> {
        let mut out = Vec::with_capacity(per_class * GENE_CLASSES.len());
        for class in 0..GENE_CLASSES.len() {
            let terms = Self::class_terms(class);
            for _ in 0..per_class {
                let words: Vec<&str> = (0..5)
                    .map(|_| terms[self.rng.gen_range(0..terms.len())])
                    .collect();
                out.push((class, words.join(" ")));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct_per_seed() {
        let mut a = GeneGen::new(5);
        let mut b = GeneGen::new(5);
        assert_eq!(a.records(5), b.records(5));
        assert_eq!(a.annotation(), b.annotation());
    }

    #[test]
    fn annotations_cover_all_gene_classes() {
        let mut g = GeneGen::new(8);
        let mut seen = [false; 3];
        for _ in 0..100 {
            let (class, text) = g.annotation();
            seen[class] = true;
            assert!(!text.is_empty());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn training_corpus_balanced() {
        let corpus = GeneGen::new(2).training_corpus(4);
        assert_eq!(corpus.len(), 12);
    }
}
