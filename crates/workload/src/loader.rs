//! One-call database seeding.
//!
//! Builds the demo paper's setup end-to-end: the bird table, the three
//! summary instances of Figure 1 (`ClassBird1` classifier, `SimCluster`
//! clusterer, `TextSummary1` snippet summarizer), the links, the base
//! rows, and an annotation stream at the configured
//! annotations-per-tuple ratio.

use crate::birds::{BirdGen, ANNOTATION_CLASSES, BIRDS_DDL};
use insightnotes_annotations::AnnotationBody;
use insightnotes_annotations::ColSig;
use insightnotes_common::{ColumnId, Result, RowId};
use insightnotes_engine::Database;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Workload shape parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// RNG seed (drives every random choice).
    pub seed: u64,
    /// Number of bird rows.
    pub num_birds: usize,
    /// Mean annotations per tuple (the paper reports 30x–250x).
    pub annotation_ratio: f64,
    /// Probability an annotation is a near-duplicate of a recent one.
    pub duplicate_rate: f64,
    /// Probability an annotation carries an attached document.
    pub document_rate: f64,
    /// Probability an annotation attaches to a second tuple too.
    pub multi_tuple_rate: f64,
    /// Probability an annotation targets one column instead of the row.
    pub column_rate: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            seed: 0xB12D5,
            num_birds: 50,
            annotation_ratio: 30.0,
            duplicate_rate: 0.25,
            document_rate: 0.03,
            multi_tuple_rate: 0.05,
            column_rate: 0.3,
        }
    }
}

/// What the loader produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadStats {
    /// Bird rows inserted.
    pub rows: usize,
    /// Annotations attached.
    pub annotations: usize,
    /// Attached documents among them.
    pub documents: usize,
}

/// Seeds `db` with the full ornithological scenario. Returns load
/// statistics. The database should be empty (table/instance names are
/// fixed).
pub fn seed_birds_database(db: &mut Database, config: &WorkloadConfig) -> Result<LoadStats> {
    let mut gen = BirdGen::new(config.seed);
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0x5EED);

    db.execute_sql(BIRDS_DDL)?;
    db.execute_sql("CREATE INDEX ON birds (id)")?;

    // Summary instances per Figure 1, classifier trained on the
    // generator's labeled seed corpus.
    let corpus = gen.training_corpus(12);
    let train_pairs: Vec<String> = corpus
        .iter()
        .map(|(class, text)| format!("'{}': '{}'", ANNOTATION_CLASSES[*class], text))
        .collect();
    db.execute_sql(&format!(
        "CREATE SUMMARY INSTANCE ClassBird1 TYPE CLASSIFIER LABELS ({}) TRAIN ({})",
        ANNOTATION_CLASSES
            .iter()
            .map(|c| format!("'{c}'"))
            .collect::<Vec<_>>()
            .join(", "),
        train_pairs.join(", ")
    ))?;
    db.execute_sql("CREATE SUMMARY INSTANCE SimCluster TYPE CLUSTER THRESHOLD 0.5")?;
    db.execute_sql("CREATE SUMMARY INSTANCE TextSummary1 TYPE SNIPPET MIN_SOURCE 400")?;
    for inst in ["ClassBird1", "SimCluster", "TextSummary1"] {
        db.execute_sql(&format!("LINK SUMMARY {inst} TO birds"))?;
    }

    // Base rows.
    let records = gen.records(config.num_birds);
    for chunk in records.chunks(64) {
        let values: Vec<String> = chunk
            .iter()
            .map(|r| {
                format!(
                    "({}, '{}', '{}', {}, {}, '{}')",
                    r.id, r.name, r.sci_name, r.weight, r.wingspan, r.region
                )
            })
            .collect();
        db.execute_sql(&format!("INSERT INTO birds VALUES {}", values.join(", ")))?;
    }

    // Annotation stream through the typed API (attaching by explicit row
    // ids keeps the loader independent of predicate matching).
    let arity = db.catalog().table_by_name("birds")?.schema().arity();
    let total = (config.num_birds as f64 * config.annotation_ratio).round() as usize;
    let mut documents = 0usize;
    for _ in 0..total {
        let ann = gen.annotation(config.duplicate_rate, config.document_rate);
        if ann.document.is_some() {
            documents += 1;
        }
        let mut rows = vec![RowId::new(rng.gen_range(1..=config.num_birds as u64))];
        if config.num_birds > 1 && rng.gen_bool(config.multi_tuple_rate.clamp(0.0, 1.0)) {
            let mut other = rng.gen_range(1..=config.num_birds as u64);
            if other == rows[0].raw() {
                other = other % config.num_birds as u64 + 1;
            }
            rows.push(RowId::new(other));
        }
        let cols = if rng.gen_bool(config.column_rate.clamp(0.0, 1.0)) {
            ColSig::single(ColumnId::new(rng.gen_range(0..arity as u16)))
        } else {
            ColSig::whole_row(arity)
        };
        let mut body = AnnotationBody::text(ann.text, ann.author);
        if let Some(doc) = ann.document {
            body = body.with_document(doc);
        }
        db.annotate_rows("birds", &rows, cols, body)?;
    }

    Ok(LoadStats {
        rows: config.num_birds,
        annotations: total,
        documents,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> WorkloadConfig {
        WorkloadConfig {
            num_birds: 10,
            annotation_ratio: 5.0,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn seeds_a_working_database() {
        let mut db = Database::new();
        let stats = seed_birds_database(&mut db, &tiny_config()).unwrap();
        assert_eq!(stats.rows, 10);
        assert_eq!(stats.annotations, 50);
        assert_eq!(db.store().stats().count, 50);
        // Every annotated row carries summary objects for the three
        // linked instances.
        let result = db.query("SELECT name, region FROM birds").unwrap();
        assert_eq!(result.rows.len(), 10);
        let annotated = result
            .rows
            .iter()
            .filter(|r| !r.summaries.is_empty())
            .count();
        assert!(
            annotated > 5,
            "most rows should carry summaries, got {annotated}"
        );
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Database::new();
        let mut b = Database::new();
        seed_birds_database(&mut a, &tiny_config()).unwrap();
        seed_birds_database(&mut b, &tiny_config()).unwrap();
        let ra = a.query("SELECT name FROM birds").unwrap();
        let rb = b.query("SELECT name FROM birds").unwrap();
        assert_eq!(ra.rows, rb.rows);
    }

    #[test]
    fn ratio_controls_annotation_volume() {
        let mut db = Database::new();
        let stats = seed_birds_database(
            &mut db,
            &WorkloadConfig {
                num_birds: 5,
                annotation_ratio: 20.0,
                ..WorkloadConfig::default()
            },
        )
        .unwrap();
        assert_eq!(stats.annotations, 100);
    }
}
