//! Query and zoom-in workload generators.
//!
//! [`QueryGen`] emits SPJ queries over the seeded bird table with varying
//! shapes (point lookups, region scans, self-joins, group-bys) so cache
//! entries differ in complexity and size — the skew the RCO policy
//! exploits. [`zoomin_reference_stream`] produces a Zipf-like stream of
//! QID references: a few hot results get most zoom-ins, matching
//! interactive-analysis behavior.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Seeded generator of SELECT statements over the bird workload.
#[derive(Debug)]
pub struct QueryGen {
    rng: SmallRng,
    num_birds: usize,
}

impl QueryGen {
    /// Creates a generator. `num_birds` bounds id predicates.
    pub fn new(seed: u64, num_birds: usize) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            num_birds: num_birds.max(1),
        }
    }

    /// Emits the next query. Shapes rotate through point lookups, range
    /// scans, projections, self-joins, and group-bys.
    pub fn next_query(&mut self) -> String {
        let id = self.rng.gen_range(1..=self.num_birds as i64);
        match self.rng.gen_range(0..5) {
            0 => format!("SELECT name, weight FROM birds WHERE id = {id}"),
            1 => format!(
                "SELECT name, region FROM birds WHERE weight > {}",
                self.rng.gen_range(1..9)
            ),
            2 => "SELECT name, sci_name, wingspan FROM birds".to_string(),
            3 => format!(
                "SELECT a.name, b.region FROM birds a, birds b \
                 WHERE a.region = b.region AND a.id = {id}"
            ),
            _ => "SELECT region, COUNT(*) AS n FROM birds GROUP BY region".to_string(),
        }
    }
}

/// Produces `n` zoom-in references over `qids` with approximate Zipf
/// skew: lower-ranked (earlier) QIDs are referenced far more often.
pub fn zoomin_reference_stream(seed: u64, qids: &[u64], n: usize) -> Vec<u64> {
    assert!(!qids.is_empty(), "need at least one QID");
    let mut rng = SmallRng::seed_from_u64(seed);
    // Zipf(s = 1) via inverse-CDF over precomputed harmonic weights.
    let weights: Vec<f64> = (1..=qids.len()).map(|r| 1.0 / r as f64).collect();
    let total: f64 = weights.iter().sum();
    (0..n)
        .map(|_| {
            let mut x = rng.gen_range(0.0..total);
            for (i, w) in weights.iter().enumerate() {
                if x < *w {
                    return qids[i];
                }
                x -= w;
            }
            qids[qids.len() - 1]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_are_deterministic_and_varied() {
        let mut a = QueryGen::new(1, 20);
        let mut b = QueryGen::new(1, 20);
        let qa: Vec<String> = (0..20).map(|_| a.next_query()).collect();
        let qb: Vec<String> = (0..20).map(|_| b.next_query()).collect();
        assert_eq!(qa, qb);
        let distinct: std::collections::HashSet<&String> = qa.iter().collect();
        assert!(distinct.len() > 3, "expected shape variety");
    }

    #[test]
    fn zoomin_stream_is_skewed() {
        let qids: Vec<u64> = (101..=120).collect();
        let stream = zoomin_reference_stream(7, &qids, 2000);
        assert_eq!(stream.len(), 2000);
        let hot = stream.iter().filter(|&&q| q == 101).count();
        let cold = stream.iter().filter(|&&q| q == 120).count();
        assert!(hot > cold * 3, "hot {hot} vs cold {cold}");
    }

    #[test]
    #[should_panic(expected = "at least one QID")]
    fn empty_qids_panics() {
        zoomin_reference_stream(1, &[], 10);
    }
}
