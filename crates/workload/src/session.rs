//! Wire-driving session scripts.
//!
//! Where [`crate::loader`] seeds a database through the embedded typed
//! API, this module emits plain **SQL text** — the shape of load a client
//! pushes through `insightd` over the wire. A [`SessionScript`] has a
//! serial `setup` phase (DDL, summary instances, links, row inserts) and
//! one statement stream per client mixing Read-class SELECTs with
//! Write-class `ADD ANNOTATION`s, so N concurrent sessions contend on the
//! server's reader/writer lock the way the paper's curators and
//! scientists contend on one shared summary registry.
//!
//! Scripts are seed-deterministic, which is what makes the serial-replay
//! equivalence check in `tests/server_concurrency.rs` possible: the same
//! statements replayed in any serializable order must converge to the
//! same summary objects (annotation summarization is order-insensitive
//! for classifier counts and cluster membership).

use crate::birds::{BirdGen, ANNOTATION_CLASSES, BIRDS_DDL};
use crate::queries::QueryGen;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`session_script`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of per-client statement streams.
    pub clients: usize,
    /// Statements per client stream.
    pub statements_per_client: usize,
    /// Rows in the bird table.
    pub num_birds: usize,
    /// Fraction of each stream that is `ADD ANNOTATION` (the rest are
    /// SELECTs).
    pub write_ratio: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            seed: 0xB17D,
            clients: 8,
            statements_per_client: 50,
            num_birds: 200,
            write_ratio: 0.3,
        }
    }
}

/// A generated wire workload: serial setup plus per-client streams.
#[derive(Debug, Clone)]
pub struct SessionScript {
    /// Statements to run once (single connection) before the clients
    /// start: DDL, index, summary instances, links, inserts.
    pub setup: Vec<String>,
    /// One mixed read/write statement stream per client.
    pub clients: Vec<Vec<String>>,
}

impl SessionScript {
    /// All statements flattened into one serializable order: setup first,
    /// then the client streams interleaved round-robin (client 0's first
    /// statement, client 1's first, …). Replaying this serially on an
    /// embedded database gives the reference state for equivalence
    /// checks.
    pub fn serial_order(&self) -> Vec<String> {
        let mut out = self.setup.clone();
        let longest = self.clients.iter().map(Vec::len).max().unwrap_or(0);
        for i in 0..longest {
            for stream in &self.clients {
                if let Some(stmt) = stream.get(i) {
                    out.push(stmt.clone());
                }
            }
        }
        out
    }
}

/// Doubles single quotes for embedding in a SQL string literal.
fn sql_quote(s: &str) -> String {
    s.replace('\'', "''")
}

/// The shared serial setup phase: bird DDL + index, classifier and
/// clusterer instances, links, and batched row inserts.
fn setup_statements(seed: u64, num_birds: usize) -> Vec<String> {
    let mut gen = BirdGen::new(seed);
    let mut setup = vec![
        BIRDS_DDL.to_string(),
        "CREATE INDEX ON birds (id)".to_string(),
    ];

    // A classifier over the four observation classes, trained from the
    // seeded corpus, plus a clusterer for the near-duplicate streams.
    let pairs: Vec<String> = gen
        .training_corpus(2)
        .into_iter()
        .map(|(class, text)| format!("'{}': '{}'", ANNOTATION_CLASSES[class], sql_quote(&text)))
        .collect();
    let labels: Vec<String> = ANNOTATION_CLASSES
        .iter()
        .map(|c| format!("'{c}'"))
        .collect();
    setup.push(format!(
        "CREATE SUMMARY INSTANCE ClassBird1 TYPE CLASSIFIER LABELS ({}) TRAIN ({})",
        labels.join(", "),
        pairs.join(", ")
    ));
    setup.push("CREATE SUMMARY INSTANCE DupBird1 TYPE CLUSTER THRESHOLD 0.5".to_string());
    setup.push("LINK SUMMARY ClassBird1 TO birds".to_string());
    setup.push("LINK SUMMARY DupBird1 TO birds".to_string());

    // Batched inserts (64 rows per statement).
    for chunk in gen.records(num_birds).chunks(64) {
        let rows: Vec<String> = chunk
            .iter()
            .map(|r| {
                format!(
                    "({}, '{}', '{}', {}, {}, '{}')",
                    r.id,
                    sql_quote(&r.name),
                    sql_quote(&r.sci_name),
                    r.weight,
                    r.wingspan,
                    sql_quote(&r.region)
                )
            })
            .collect();
        setup.push(format!("INSERT INTO birds VALUES {}", rows.join(", ")));
    }
    setup
}

/// Generates a deterministic mixed-session workload.
pub fn session_script(cfg: &SessionConfig) -> SessionScript {
    let setup = setup_statements(cfg.seed, cfg.num_birds);
    let clients = (0..cfg.clients)
        .map(|c| {
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (0x9E37 + c as u64));
            let mut anns = BirdGen::new(cfg.seed.wrapping_mul(31).wrapping_add(c as u64));
            let mut queries = QueryGen::new(cfg.seed ^ (c as u64) << 8, cfg.num_birds);
            (0..cfg.statements_per_client)
                .map(|_| {
                    if rng.gen_bool(cfg.write_ratio.clamp(0.0, 1.0)) {
                        let a = anns.annotation(0.25, 0.0);
                        let id = rng.gen_range(1..=cfg.num_birds.max(1));
                        format!(
                            "ADD ANNOTATION '{}' AUTHOR '{}' ON birds WHERE id = {id}",
                            sql_quote(&a.text),
                            sql_quote(&a.author)
                        )
                    } else {
                        queries.next_query()
                    }
                })
                .collect()
        })
        .collect();

    SessionScript { setup, clients }
}

/// Configuration for [`ingest_script`].
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of concurrent writer streams.
    pub writers: usize,
    /// `ADD ANNOTATION` statements per writer stream.
    pub annotations_per_writer: usize,
    /// Rows in the bird table.
    pub num_birds: usize,
    /// Zipfian skew of the target row ids: row `r` is drawn with weight
    /// `1/r^skew`. `0.0` (the default) is uniform — and byte-identical
    /// to the scripts this generator emitted before the knob existed;
    /// `~1.0` is classic Zipf, concentrating contention on a few hot
    /// rows (and, on a sharded engine, on the shards that own them).
    pub skew: f64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            seed: 0x16E5_7B17,
            writers: 8,
            annotations_per_writer: 64,
            num_birds: 200,
            skew: 0.0,
        }
    }
}

/// Row-id sampler over `1..=n`: uniform at `skew <= 0`, Zipfian with
/// exponent `skew` otherwise (inverse-CDF lookup over the precomputed
/// harmonic prefix sums).
struct RowSampler {
    /// Prefix sums of `1/r^skew`; empty on the uniform path so the
    /// pre-knob draw sequence stays bit-identical.
    cdf: Vec<f64>,
    n: usize,
}

impl RowSampler {
    fn new(n: usize, skew: f64) -> Self {
        let n = n.max(1);
        if skew <= 0.0 {
            return Self { cdf: Vec::new(), n };
        }
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for r in 1..=n {
            total += 1.0 / (r as f64).powf(skew);
            cdf.push(total);
        }
        Self { cdf, n }
    }

    fn sample(&self, rng: &mut SmallRng) -> usize {
        let Some(&total) = self.cdf.last() else {
            return rng.gen_range(1..=self.n);
        };
        let u = rng.gen_range(0.0..total);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("finite cdf"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.n),
        }
    }
}

/// Generates an ingest-heavy workload: the same seeded setup phase as
/// [`session_script`], but every client statement is an
/// `ADD ANNOTATION` targeting one indexed row (drawn uniformly, or
/// Zipf-skewed under [`IngestConfig::skew`]). This is the pure write
/// path — the shape of load the server's group-commit queues absorb —
/// and what `benches/ingest_throughput.rs` replays at varying batch
/// sizes and shard counts.
pub fn ingest_script(cfg: &IngestConfig) -> SessionScript {
    let setup = setup_statements(cfg.seed, cfg.num_birds);
    let sampler = RowSampler::new(cfg.num_birds, cfg.skew);
    let clients = (0..cfg.writers)
        .map(|c| {
            let mut rng = SmallRng::seed_from_u64(cfg.seed ^ (0x51B5 + c as u64));
            let mut anns = BirdGen::new(cfg.seed.wrapping_mul(37).wrapping_add(c as u64));
            (0..cfg.annotations_per_writer)
                .map(|_| {
                    let a = anns.annotation(0.25, 0.0);
                    let id = sampler.sample(&mut rng);
                    format!(
                        "ADD ANNOTATION '{}' AUTHOR '{}' ON birds WHERE id = {id}",
                        sql_quote(&a.text),
                        sql_quote(&a.author)
                    )
                })
                .collect()
        })
        .collect();

    SessionScript { setup, clients }
}

/// Configuration for [`curation_script`].
#[derive(Debug, Clone)]
pub struct CurationConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of per-client statement streams.
    pub clients: usize,
    /// Statements per client stream.
    pub statements_per_client: usize,
    /// Rows in the bird table.
    pub num_birds: usize,
    /// Fraction of slots that create a new annotation (`ADD`). Also the
    /// fallback whenever a lifecycle op has nothing live to act on.
    pub add_ratio: f64,
    /// Fraction of slots that `FLAG` a live annotation.
    pub flag_ratio: f64,
    /// Fraction of slots that `CORRECT` a live annotation (retiring it
    /// and creating its successor).
    pub correct_ratio: f64,
    /// Fraction of slots that `RETRACT` a live annotation. Whatever
    /// probability mass remains after the four ratios is SELECTs.
    pub retract_ratio: f64,
}

impl Default for CurationConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0_4A7E,
            clients: 4,
            statements_per_client: 60,
            num_birds: 120,
            add_ratio: 0.4,
            flag_ratio: 0.1,
            correct_ratio: 0.1,
            retract_ratio: 0.1,
        }
    }
}

/// Generates a deterministic curation workload: annotate → flag →
/// correct → retract mixes, with SELECTs filling the remaining slots.
///
/// Lifecycle statements reference annotation ids by number, and ids are
/// allocated by the engine at execution time — so unlike
/// [`session_script`], a curation script is only valid when replayed in
/// its [`SessionScript::serial_order`] (or any single-connection order
/// that preserves it). Generation simulates the engine's id counter
/// along that order: the k-th annotation the engine creates (an `ADD`,
/// or a `CORRECT`'s successor) is id k, at any shard count, because the
/// router's allocator and the single-shard store both hand out ids
/// sequentially in statement order. Every lifecycle op targets an id
/// that is provably live at its point in the serial order.
pub fn curation_script(cfg: &CurationConfig) -> SessionScript {
    let setup = setup_statements(cfg.seed, cfg.num_birds);
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0xCA7E);
    let mut anns = BirdGen::new(cfg.seed.wrapping_mul(43).wrapping_add(11));
    let mut queries = QueryGen::new(cfg.seed ^ 0xC11A, cfg.num_birds);
    let mut clients: Vec<Vec<String>> = vec![Vec::new(); cfg.clients];
    let mut next_id = 0u64;
    let mut live: Vec<u64> = Vec::new();
    let add = cfg.add_ratio.clamp(0.0, 1.0);
    let flag = add + cfg.flag_ratio.max(0.0);
    let correct = flag + cfg.correct_ratio.max(0.0);
    let retract = correct + cfg.retract_ratio.max(0.0);
    // Joint round-robin generation: slot s of every client in client
    // order — exactly the interleaving serial_order replays.
    for _slot in 0..cfg.statements_per_client {
        for stream in &mut clients {
            let roll: f64 = rng.gen();
            let stmt = if roll < add || (roll < retract && live.is_empty()) {
                next_id += 1;
                live.push(next_id);
                let a = anns.annotation(0.25, 0.0);
                let id = rng.gen_range(1..=cfg.num_birds.max(1));
                format!(
                    "ADD ANNOTATION '{}' AUTHOR '{}' ON birds WHERE id = {id}",
                    sql_quote(&a.text),
                    sql_quote(&a.author)
                )
            } else if roll < flag {
                let target = live[rng.gen_range(0..live.len())];
                format!("FLAG ANNOTATION {target} 'needs review'")
            } else if roll < correct {
                let i = rng.gen_range(0..live.len());
                let target = live.swap_remove(i);
                next_id += 1;
                live.push(next_id);
                let a = anns.annotation(0.25, 0.0);
                format!(
                    "CORRECT ANNOTATION {target} '{}' AUTHOR '{}'",
                    sql_quote(&a.text),
                    sql_quote(&a.author)
                )
            } else if roll < retract {
                let i = rng.gen_range(0..live.len());
                let target = live.swap_remove(i);
                format!("RETRACT ANNOTATION {target}")
            } else {
                queries.next_query()
            };
            stream.push(stmt);
        }
    }
    SessionScript { setup, clients }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic() {
        let cfg = SessionConfig::default();
        let a = session_script(&cfg);
        let b = session_script(&cfg);
        assert_eq!(a.setup, b.setup);
        assert_eq!(a.clients, b.clients);
    }

    #[test]
    fn every_statement_parses() {
        let script = session_script(&SessionConfig {
            clients: 3,
            statements_per_client: 20,
            num_birds: 70,
            ..SessionConfig::default()
        });
        for stmt in script.serial_order() {
            insightnotes_sql::parse(&stmt)
                .unwrap_or_else(|e| panic!("statement failed to parse: {e}\n{stmt}"));
        }
    }

    #[test]
    fn streams_mix_reads_and_writes() {
        let script = session_script(&SessionConfig::default());
        assert_eq!(script.clients.len(), 8);
        let all: Vec<&String> = script.clients.iter().flatten().collect();
        let writes = all
            .iter()
            .filter(|s| s.starts_with("ADD ANNOTATION"))
            .count();
        let reads = all.iter().filter(|s| s.starts_with("SELECT")).count();
        assert_eq!(writes + reads, all.len());
        assert!(writes > 0 && reads > 0);
        let ratio = writes as f64 / all.len() as f64;
        assert!((0.15..=0.45).contains(&ratio), "write ratio {ratio}");
    }

    #[test]
    fn ingest_script_is_deterministic_and_write_only() {
        let cfg = IngestConfig {
            writers: 3,
            annotations_per_writer: 10,
            num_birds: 50,
            ..IngestConfig::default()
        };
        let a = ingest_script(&cfg);
        let b = ingest_script(&cfg);
        assert_eq!(a.setup, b.setup);
        assert_eq!(a.clients, b.clients);
        assert_eq!(a.clients.len(), 3);
        for stream in &a.clients {
            assert_eq!(stream.len(), 10);
            for stmt in stream {
                assert!(stmt.starts_with("ADD ANNOTATION"), "not a write: {stmt}");
                insightnotes_sql::parse(stmt)
                    .unwrap_or_else(|e| panic!("statement failed to parse: {e}\n{stmt}"));
            }
        }
        // Setup phase matches the mixed-session script's for the same
        // seed and table size — only the client streams differ.
        let mixed = session_script(&SessionConfig {
            seed: cfg.seed,
            num_birds: cfg.num_birds,
            ..SessionConfig::default()
        });
        assert_eq!(a.setup, mixed.setup);
    }

    #[test]
    fn zipf_skew_concentrates_low_row_ids() {
        let base = IngestConfig {
            writers: 4,
            annotations_per_writer: 100,
            num_birds: 100,
            ..IngestConfig::default()
        };
        let skewed = ingest_script(&IngestConfig {
            skew: 1.2,
            ..base.clone()
        });
        let uniform = ingest_script(&base);
        let hot_hits = |script: &SessionScript| {
            script
                .clients
                .iter()
                .flatten()
                .filter(|s| {
                    let id: usize = s
                        .rsplit("id = ")
                        .next()
                        .and_then(|t| t.parse().ok())
                        .expect("ingest statement targets one id");
                    id <= 10
                })
                .count()
        };
        let (hot_skewed, hot_uniform) = (hot_hits(&skewed), hot_hits(&uniform));
        // Zipf(1.2) over 100 rows puts well over half the mass on the
        // first ten; uniform puts ~10% there.
        assert!(
            hot_skewed > 2 * hot_uniform,
            "skewed {hot_skewed} vs uniform {hot_uniform} of 400"
        );
        // Determinism and parseability hold on the skewed path too.
        let again = ingest_script(&IngestConfig { skew: 1.2, ..base });
        assert_eq!(skewed.clients, again.clients);
        for stmt in skewed.clients.iter().flatten() {
            insightnotes_sql::parse(stmt).expect("skewed statement parses");
        }
    }

    #[test]
    fn curation_script_mixes_lifecycle_ops_and_replays_serially() {
        let cfg = CurationConfig::default();
        let script = curation_script(&cfg);
        assert_eq!(script.clients, curation_script(&cfg).clients);
        let all: Vec<&String> = script.clients.iter().flatten().collect();
        let count = |p: &str| all.iter().filter(|s| s.starts_with(p)).count();
        assert!(count("ADD ANNOTATION") > 0);
        assert!(count("FLAG ANNOTATION") > 0);
        assert!(count("CORRECT ANNOTATION") > 0);
        assert!(count("RETRACT ANNOTATION") > 0);
        assert!(count("SELECT") > 0);
        // Every lifecycle op targets an id that is live at its point in
        // the serial order: the whole script replays without an error.
        let mut db = insightnotes_engine::Database::new();
        for stmt in script.serial_order() {
            db.execute_sql(&stmt)
                .unwrap_or_else(|e| panic!("curation statement failed: {e}\n{stmt}"));
        }
        let stats = db.store().stats();
        assert!(stats.retired > 0, "retracts/corrects left tombstones");
        assert!(stats.count > 0, "live annotations remain");
    }

    #[test]
    fn serial_order_interleaves_round_robin() {
        let script = session_script(&SessionConfig {
            clients: 2,
            statements_per_client: 2,
            ..SessionConfig::default()
        });
        let serial = script.serial_order();
        let tail = &serial[script.setup.len()..];
        assert_eq!(tail[0], script.clients[0][0]);
        assert_eq!(tail[1], script.clients[1][0]);
        assert_eq!(tail[2], script.clients[0][1]);
        assert_eq!(tail[3], script.clients[1][1]);
    }
}
