#![warn(missing_docs)]
//! # insightnotes-workload
//!
//! Seeded synthetic workloads standing in for the paper's proprietary
//! datasets (see DESIGN.md §5):
//!
//! - [`birds`] — an AKN/eBird-style ornithological table plus
//!   class-conditioned free-text observations ({Behavior, Disease,
//!   Anatomy, Other}), near-duplicates for clustering, and long attached
//!   articles for snippets, at configurable annotation ratios (the paper
//!   reports 30x–250x annotations-to-records);
//! - [`genes`] — the biological-database variant the paper's
//!   extensibility section motivates ({FunctionPrediction, Provenance,
//!   Comment} classes);
//! - [`queries`] — SPJ query generators and a skewed zoom-in reference
//!   stream for the cache experiments;
//! - [`loader`] — one-call database seeding: tables, summary instances,
//!   links, rows, annotation stream;
//! - [`session`] — seed-deterministic SQL statement streams (setup plus
//!   N mixed read/write client scripts, or pure `ADD ANNOTATION` ingest
//!   streams) for driving `insightd` over the wire and for serial-replay
//!   equivalence checks.
//!
//! Everything is driven by a single seed: identical configs produce
//! identical databases, which keeps experiment tables reproducible.

pub mod birds;
pub mod genes;
pub mod loader;
pub mod queries;
pub mod session;

pub use birds::{BirdGen, BirdRecord, GeneratedAnnotation, ANNOTATION_CLASSES};
pub use genes::GeneGen;
pub use loader::{seed_birds_database, LoadStats, WorkloadConfig};
pub use queries::{zoomin_reference_stream, QueryGen};
pub use session::{
    curation_script, ingest_script, session_script, CurationConfig, IngestConfig, SessionConfig,
    SessionScript,
};
