//! The ornithological workload: bird records and class-conditioned
//! annotation text.
//!
//! Annotation text is assembled from per-class vocabulary pools, so the
//! Naive Bayes classifier has real signal to learn, near-duplicates share
//! most of their tokens (exercising the clusterer), and attached articles
//! are long enough to exercise the snippet summarizer.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The ornithological class labels, in zoom-index order (Figure 1's
/// `ClassBird1`).
pub const ANNOTATION_CLASSES: [&str; 4] = ["Behavior", "Disease", "Anatomy", "Other"];

const SPECIES: &[(&str, &str)] = &[
    ("Swan Goose", "Anser cygnoides"),
    ("Snow Goose", "Anser caerulescens"),
    ("Canada Goose", "Branta canadensis"),
    ("Mute Swan", "Cygnus olor"),
    ("Trumpeter Swan", "Cygnus buccinator"),
    ("Mallard", "Anas platyrhynchos"),
    ("Wood Duck", "Aix sponsa"),
    ("Great Blue Heron", "Ardea herodias"),
    ("Sandhill Crane", "Antigone canadensis"),
    ("Osprey", "Pandion haliaetus"),
    ("Bald Eagle", "Haliaeetus leucocephalus"),
    ("Peregrine Falcon", "Falco peregrinus"),
    ("Common Loon", "Gavia immer"),
    ("Atlantic Puffin", "Fratercula arctica"),
    ("Ruby-throated Hummingbird", "Archilochus colubris"),
    ("Northern Cardinal", "Cardinalis cardinalis"),
];

const REGIONS: &[&str] = &[
    "northeast",
    "southeast",
    "midwest",
    "southwest",
    "pacific",
    "arctic",
    "gulf",
    "plains",
];

const BEHAVIOR_TERMS: &[&str] = &[
    "foraging",
    "diving",
    "eating",
    "stonewort",
    "grazing",
    "nesting",
    "courtship",
    "display",
    "migrating",
    "flocking",
    "preening",
    "calling",
    "territorial",
    "roosting",
    "dabbling",
];
const DISEASE_TERMS: &[&str] = &[
    "lesions",
    "parasites",
    "infection",
    "avian",
    "pox",
    "influenza",
    "botulism",
    "mites",
    "feather",
    "loss",
    "lethargy",
    "swollen",
    "discharge",
    "outbreak",
    "mortality",
];
const ANATOMY_TERMS: &[&str] = &[
    "wingspan",
    "plumage",
    "beak",
    "tarsus",
    "molt",
    "coloration",
    "weight",
    "measured",
    "juvenile",
    "adult",
    "crest",
    "talons",
    "webbing",
    "iridescent",
    "banding",
];
const OTHER_TERMS: &[&str] = &[
    "reference",
    "attached",
    "photo",
    "recording",
    "checklist",
    "coordinates",
    "survey",
    "protocol",
    "permit",
    "station",
    "observer",
    "duplicate",
    "correction",
    "database",
    "source",
];

const FILLER: &[&str] = &[
    "observed",
    "near",
    "lake",
    "shore",
    "during",
    "morning",
    "several",
    "individuals",
    "reported",
    "appears",
    "likely",
    "possible",
    "seen",
    "again",
    "today",
];

/// One generated bird record, in table-column order.
#[derive(Debug, Clone, PartialEq)]
pub struct BirdRecord {
    /// Numeric identifier.
    pub id: i64,
    /// Common name.
    pub name: String,
    /// Scientific name.
    pub sci_name: String,
    /// Body weight in kg.
    pub weight: f64,
    /// Wingspan in cm.
    pub wingspan: f64,
    /// Observation region.
    pub region: String,
}

/// `CREATE TABLE` statement for the bird table.
pub const BIRDS_DDL: &str =
    "CREATE TABLE birds (id INT, name TEXT, sci_name TEXT, weight FLOAT, wingspan FLOAT, region TEXT)";

/// One generated annotation.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedAnnotation {
    /// Free text.
    pub text: String,
    /// Class the text was drawn from (ground truth for the classifier).
    pub class: usize,
    /// Attached document, when generated.
    pub document: Option<String>,
    /// Curator name.
    pub author: String,
}

/// Seeded generator for bird records and annotations.
#[derive(Debug)]
pub struct BirdGen {
    rng: SmallRng,
    /// Recent annotation texts, kept for near-duplicate generation.
    recent: Vec<String>,
}

impl BirdGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            recent: Vec::new(),
        }
    }

    /// Generates `n` bird records with ids `1..=n`.
    pub fn records(&mut self, n: usize) -> Vec<BirdRecord> {
        (0..n)
            .map(|i| {
                let (name, sci) = SPECIES[self.rng.gen_range(0..SPECIES.len())];
                BirdRecord {
                    id: i as i64 + 1,
                    name: name.to_string(),
                    sci_name: sci.to_string(),
                    weight: (self.rng.gen_range(3.0..120.0_f64) / 10.0 * 100.0).round() / 100.0,
                    wingspan: (self.rng.gen_range(200.0..3000.0_f64) / 10.0).round(),
                    region: REGIONS[self.rng.gen_range(0..REGIONS.len())].to_string(),
                }
            })
            .collect()
    }

    fn class_terms(class: usize) -> &'static [&'static str] {
        match class {
            0 => BEHAVIOR_TERMS,
            1 => DISEASE_TERMS,
            2 => ANATOMY_TERMS,
            _ => OTHER_TERMS,
        }
    }

    /// Generates one annotation. `duplicate_rate` is the probability of
    /// producing a near-duplicate of a recent annotation (fodder for the
    /// clusterer); `document_rate` the probability of attaching a long
    /// article (fodder for the snippet summarizer).
    pub fn annotation(&mut self, duplicate_rate: f64, document_rate: f64) -> GeneratedAnnotation {
        if !self.recent.is_empty() && self.rng.gen_bool(duplicate_rate.clamp(0.0, 1.0)) {
            let base = self.recent[self.rng.gen_range(0..self.recent.len())].clone();
            let perturbed = self.perturb(&base);
            return GeneratedAnnotation {
                text: perturbed,
                class: self.classify_ground_truth(&base),
                document: None,
                author: self.author(),
            };
        }
        let class = self.rng.gen_range(0..ANNOTATION_CLASSES.len());
        let terms = Self::class_terms(class);
        let n_class = self.rng.gen_range(3..6);
        let n_filler = self.rng.gen_range(2..5);
        let mut words: Vec<&str> = Vec::with_capacity(n_class + n_filler);
        for _ in 0..n_class {
            words.push(terms[self.rng.gen_range(0..terms.len())]);
        }
        for _ in 0..n_filler {
            words.push(FILLER[self.rng.gen_range(0..FILLER.len())]);
        }
        words.shuffle(&mut self.rng);
        let text = words.join(" ");
        if self.recent.len() < 256 {
            self.recent.push(text.clone());
        } else {
            let slot = self.rng.gen_range(0..self.recent.len());
            self.recent[slot] = text.clone();
        }
        let document = if self.rng.gen_bool(document_rate.clamp(0.0, 1.0)) {
            Some(self.document(class))
        } else {
            None
        };
        GeneratedAnnotation {
            text,
            class,
            document,
            author: self.author(),
        }
    }

    /// A labeled training corpus for the classifier instance:
    /// `per_class` examples per class, `(class index, text)` pairs.
    pub fn training_corpus(&mut self, per_class: usize) -> Vec<(usize, String)> {
        let mut out = Vec::with_capacity(per_class * ANNOTATION_CLASSES.len());
        for class in 0..ANNOTATION_CLASSES.len() {
            let terms = Self::class_terms(class);
            for _ in 0..per_class {
                let words: Vec<&str> = (0..5)
                    .map(|_| terms[self.rng.gen_range(0..terms.len())])
                    .collect();
                out.push((class, words.join(" ")));
            }
        }
        out
    }

    fn perturb(&mut self, base: &str) -> String {
        let mut words: Vec<&str> = base.split(' ').collect();
        if !words.is_empty() {
            let slot = self.rng.gen_range(0..words.len());
            words[slot] = FILLER[self.rng.gen_range(0..FILLER.len())];
        }
        words.join(" ")
    }

    fn classify_ground_truth(&self, text: &str) -> usize {
        // Majority vote over class term hits; ties fall to Other.
        let mut best = (ANNOTATION_CLASSES.len() - 1, 0usize);
        for class in 0..ANNOTATION_CLASSES.len() {
            let terms = Self::class_terms(class);
            let hits = text.split(' ').filter(|w| terms.contains(w)).count();
            if hits > best.1 {
                best = (class, hits);
            }
        }
        best.0
    }

    fn document(&mut self, class: usize) -> String {
        let terms = Self::class_terms(class);
        let sentences = self.rng.gen_range(12..30);
        let mut out = String::new();
        for _ in 0..sentences {
            let n = self.rng.gen_range(6..14);
            let words: Vec<&str> = (0..n)
                .map(|_| {
                    if self.rng.gen_bool(0.4) {
                        terms[self.rng.gen_range(0..terms.len())]
                    } else {
                        FILLER[self.rng.gen_range(0..FILLER.len())]
                    }
                })
                .collect();
            out.push_str(&words.join(" "));
            out.push_str(". ");
        }
        out
    }

    fn author(&mut self) -> String {
        format!("watcher{:03}", self.rng.gen_range(0..200))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = BirdGen::new(42);
        let mut b = BirdGen::new(42);
        assert_eq!(a.records(10), b.records(10));
        assert_eq!(a.annotation(0.2, 0.1), b.annotation(0.2, 0.1));
        let mut c = BirdGen::new(43);
        assert_ne!(a.records(10), c.records(10));
    }

    #[test]
    fn records_have_sane_fields() {
        let recs = BirdGen::new(1).records(50);
        assert_eq!(recs.len(), 50);
        assert_eq!(recs[0].id, 1);
        assert!(recs.iter().all(|r| r.weight > 0.0 && r.wingspan > 0.0));
        assert!(recs
            .iter()
            .all(|r| !r.name.is_empty() && !r.region.is_empty()));
    }

    #[test]
    fn annotations_cover_all_classes() {
        let mut g = BirdGen::new(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let a = g.annotation(0.0, 0.0);
            seen[a.class] = true;
            assert!(!a.text.is_empty());
        }
        assert!(seen.iter().all(|&s| s), "classes seen: {seen:?}");
    }

    #[test]
    fn documents_are_long() {
        let mut g = BirdGen::new(9);
        let mut got_doc = false;
        for _ in 0..50 {
            if let Some(doc) = g.annotation(0.0, 1.0).document {
                assert!(doc.len() > 300, "doc length {}", doc.len());
                got_doc = true;
            }
        }
        assert!(got_doc);
    }

    #[test]
    fn duplicates_share_most_tokens() {
        let mut g = BirdGen::new(11);
        let first = g.annotation(0.0, 0.0);
        let dup = g.annotation(1.0, 0.0);
        let a: std::collections::HashSet<&str> = first.text.split(' ').collect();
        let b: std::collections::HashSet<&str> = dup.text.split(' ').collect();
        let shared = a.intersection(&b).count();
        assert!(shared * 2 >= a.len(), "{shared} of {} shared", a.len());
    }

    #[test]
    fn training_corpus_is_balanced() {
        let corpus = BirdGen::new(3).training_corpus(5);
        assert_eq!(corpus.len(), 20);
        for class in 0..4 {
            assert_eq!(corpus.iter().filter(|(c, _)| *c == class).count(), 5);
        }
    }
}
