#![warn(missing_docs)]
//! # insightnotes-server
//!
//! `insightd`: a concurrent TCP daemon serving one shared
//! [`Database`] to many client sessions over the
//! [`insightnotes_common::wire`] frame protocol.
//!
//! ## Session model
//!
//! One OS thread per connection over a `std::net::TcpListener`. The
//! engine sits behind an `Arc<`[`ShardedDatabase`]`>` — N partitioned
//! [`Database`] shards (one at the default `--shards 1`, where the
//! router collapses to the legacy single-lock engine). Read-class work
//! (SELECT, ZOOMIN, EXPLAIN) fans out through the router under shared
//! locks; replicated Write-class work (DDL, INSERT, registry changes)
//! broadcasts under exclusive locks in fixed shard order. Queries from
//! N sessions therefore execute concurrently; writers to *different
//! shards* no longer serialize against each other.
//!
//! ## Group commit, per shard
//!
//! `Annotate` and `AnnotateBatch` frames do **not** take an exclusive
//! lock from their session thread. Each shard gets its own bounded
//! commit queue ([`ServerConfig::commit_queue_depth`]) and its own
//! committer thread. At one shard, sessions enqueue raw statements and
//! the committer drains whatever has accumulated into one
//! [`Database::annotate_batch_sql`] call — one exclusive-lock
//! acquisition per *group* of concurrent writers instead of one per
//! annotation. At `shards > 1`, the session itself resolves targets and
//! obtains router-stamped ids/ticks
//! ([`ShardedDatabase::prepare_sql_annotations`], shard read guards
//! dropped before any enqueue), then hands each owner shard's slice to
//! that shard's queue — all sends before any reply wait, so disjoint
//! shards group-commit **in parallel**. Per-statement results fan back
//! out to the waiting sessions (partial failure allowed within a
//! batch). Every queue drains fully on graceful shutdown: every
//! enqueued writer still receives its reply.
//!
//! ## Durability
//!
//! With a write-ahead log attached (`insightd --wal-dir`), each
//! committer is its shard's **group-fsync** point: the drained group
//! lands in that shard's WAL segment as one record before it executes,
//! one `fsync` covers it (under the `batch` sync policy), and replies
//! are released only **after** that fsync returns — an ack therefore
//! promises the annotation survives `kill -9` or power loss. A
//! multi-shard annotation acks only after *every* owner shard's fsync.
//! If an fsync fails, every would-be success in that shard's group is
//! converted to an error, because the ack's promise could not be kept.
//! `Execute` frames carrying writes follow the same discipline (log,
//! execute, sync, then reply). On restart, `insightd` recovers through
//! [`ShardedDatabase::recover`]: per-shard snapshot plus WAL-tail
//! replay, cross-checked against the shard manifest.
//!
//! ## Robustness
//!
//! - **Connection limit** — accepts beyond
//!   [`ServerConfig::max_connections`] are answered with a structured
//!   error frame and closed.
//! - **Per-request timeout** — once the first byte of a frame arrives,
//!   the rest must arrive within [`ServerConfig::request_timeout`];
//!   responses are written under the same timeout. Waiting *between*
//!   frames is unbounded (idle REPL sessions stay up).
//! - **Graceful shutdown** — SIGINT/SIGTERM (see
//!   [`install_signal_handlers`]), a client `Shutdown` frame, or
//!   [`ServerHandle::shutdown`] all drain the same path: stop accepting,
//!   unblock every session socket, join the session threads, then write
//!   a final [`insightnotes_engine::persist`] snapshot when a snapshot
//!   path is configured.
//!
//! ## Replication
//!
//! A WAL-attached primary also serves [`Request::Subscribe`]: the
//! session switches into a one-way streaming mode that bootstraps the
//! subscriber with a chunked snapshot when needed and then ships every
//! *committed* (fsynced, hence acked) WAL byte range as
//! [`Response::WalFrame`]s — see [`insightnotes_replication::feed`].
//! A server started in replica mode ([`ServerConfig::replica`]) serves
//! reads from locally applied state, answers
//! [`Request::ReplicaState`] with its applied position vector (the
//! read-your-writes handshake), and rejects every write with
//! [`Error::ReadOnlyReplica`] naming the primary.

use insightnotes_common::wire::{
    self, BatchItem, Request, Response, RowsPayload, ShardPosition, WireAnnotation, WireError,
    WireRow, WireValue, ZoomPayload,
};
use insightnotes_common::{AnnotationId, Error, Result};
use insightnotes_engine::db::{ExecOutcome, QueryResult, SqlStatement, ZoomInResult};
use insightnotes_engine::{Database, ShardedDatabase, StampedRowAnnotation};
use insightnotes_replication::feed::{self, FeedStart};
use insightnotes_replication::PositionTable;
use insightnotes_sql::{parse, Statement, StatementClass};
use insightnotes_storage::{Column, Value};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum simultaneously served connections; excess connects get an
    /// error frame and are closed.
    pub max_connections: usize,
    /// Deadline for finishing one in-flight request frame (read of the
    /// remaining frame bytes) and for writing a response.
    pub request_timeout: Duration,
    /// How often blocked accept/read loops wake to check for shutdown.
    pub poll_interval: Duration,
    /// When set, a final durable snapshot is written here during
    /// graceful shutdown.
    pub snapshot_path: Option<PathBuf>,
    /// Capacity of the group-commit queue (in enqueued frames). Sessions
    /// whose `Annotate`/`AnnotateBatch` lands on a full queue block until
    /// the committer drains — natural backpressure on ingest bursts.
    pub commit_queue_depth: usize,
    /// When set, this server is a read replica: reads serve locally,
    /// writes are rejected with [`Error::ReadOnlyReplica`], and
    /// `ReplicaState` reports the tailers' applied positions.
    pub replica: Option<ReplicaServing>,
}

/// Replica-mode serving context: where writes should be redirected and
/// which applied positions to report.
#[derive(Debug, Clone)]
pub struct ReplicaServing {
    /// Primary address, quoted in `ReadOnlyReplica` rejections.
    pub primary: String,
    /// Applied-position table shared with the replica's tailer threads.
    pub positions: Arc<PositionTable>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            request_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(50),
            snapshot_path: None,
            commit_queue_depth: 256,
            replica: None,
        }
    }
}

/// Per-shard commit notification: the shard's committer bumps `seq`
/// after every successful group fsync and wakes all waiters, so a
/// caught-up replication feed ships the new frames immediately instead
/// of discovering them on its next poll tick. Steady-state replication
/// lag is then one ship + one apply, not the poll interval.
#[derive(Debug, Default)]
struct CommitSignal {
    seq: Mutex<u64>,
    cond: std::sync::Condvar,
}

/// Shared mutable server state (the handle and every session see it).
#[derive(Debug)]
struct ServerState {
    config: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    served: AtomicU64,
    next_session: AtomicU64,
    /// Socket clones of live sessions, used to unblock their reads at
    /// shutdown.
    sessions: Mutex<HashMap<u64, TcpStream>>,
    /// One [`CommitSignal`] per shard.
    commits: Vec<CommitSignal>,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal_requested()
    }

    /// Current commit sequence for `shard` (0 if out of range).
    fn commit_seq(&self, shard: usize) -> u64 {
        self.commits.get(shard).map_or(0, |s| *s.seq.lock())
    }

    /// Bumps `shard`'s commit sequence and wakes every feed waiting on it.
    fn notify_commit(&self, shard: usize) {
        if let Some(s) = self.commits.get(shard) {
            *s.seq.lock() += 1;
            s.cond.notify_all();
        }
    }

    /// Blocks until `shard`'s commit sequence moves past `seen`, the
    /// timeout elapses, or a spurious wakeup fires — the caller's poll
    /// loop re-checks the committed watermark either way, so this only
    /// needs to be a bounded, prompt-on-commit wait.
    fn wait_commit_past(&self, shard: usize, seen: u64, timeout: Duration) {
        let Some(s) = self.commits.get(shard) else {
            std::thread::sleep(timeout);
            return;
        };
        let guard = s.seq.lock();
        if *guard != seen {
            return;
        }
        drop(s.cond.wait_timeout(guard, timeout));
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for (_, stream) in self.sessions.lock().drain() {
            // Read side only: blocked reads unblock immediately, while a
            // session still waiting on the commit queue can flush its
            // reply before exiting (no lost acks mid-queue).
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
}

/// A cheap clone-able handle for observing and stopping a running server.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Asks the server to shut down gracefully; returns immediately.
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutting_down()
    }

    /// Total requests served so far, across all sessions.
    pub fn requests_served(&self) -> u64 {
        self.state.served.load(Ordering::Relaxed)
    }

    /// Currently live sessions.
    pub fn active_sessions(&self) -> usize {
        self.state.active.load(Ordering::Relaxed)
    }
}

/// The `insightd` server: a listener plus the shared database.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    db: Arc<ShardedDatabase>,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds a listener over a single-shard database. Use port 0 for
    /// an ephemeral port; read it back with [`Server::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs, db: Database, config: ServerConfig) -> Result<Self> {
        Self::bind_sharded(addr, db.into(), config)
    }

    /// Binds a listener over an already-partitioned engine
    /// (`insightd --shards N` builds one via [`ShardedDatabase::recover`]).
    pub fn bind_sharded(
        addr: impl ToSocketAddrs,
        db: ShardedDatabase,
        config: ServerConfig,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept lets the loop poll the shutdown flag.
        listener.set_nonblocking(true)?;
        let commits = (0..db.shard_count())
            .map(|_| CommitSignal::default())
            .collect();
        Ok(Self {
            listener,
            db: Arc::new(db),
            state: Arc::new(ServerState {
                config,
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                served: AtomicU64::new(0),
                next_session: AtomicU64::new(0),
                sessions: Mutex::new(HashMap::new()),
                commits,
            }),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// A handle for stopping/observing the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Shard 0 of the shared database (tests inspect state through
    /// this; at the default single shard it is *the* database).
    pub fn database(&self) -> Arc<RwLock<Database>> {
        Arc::clone(self.db.shard(0))
    }

    /// The sharded engine behind the server.
    pub fn sharded_database(&self) -> Arc<ShardedDatabase> {
        Arc::clone(&self.db)
    }

    /// Serves connections until shutdown is requested, then drains
    /// sessions and every shard's commit queue and writes the final
    /// snapshot (when configured). Returns the total requests served.
    pub fn run(self) -> Result<u64> {
        let depth = self.state.config.commit_queue_depth.max(1);
        let mut commit_txs = Vec::with_capacity(self.db.shard_count());
        let mut committers = Vec::with_capacity(self.db.shard_count());
        for shard in 0..self.db.shard_count() {
            let (tx, rx) = mpsc::sync_channel::<CommitJob>(depth);
            let db = Arc::clone(&self.db);
            let state = Arc::clone(&self.state);
            committers.push(std::thread::spawn(move || {
                run_committer(rx, &db, shard, &state);
            }));
            commit_txs.push(tx);
        }
        let commit_txs = Arc::new(commit_txs);
        let mut workers = Vec::new();
        loop {
            if self.state.shutting_down() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    workers.retain(|h: &std::thread::JoinHandle<()>| !h.is_finished());
                    if self.state.active.load(Ordering::Relaxed)
                        >= self.state.config.max_connections
                    {
                        refuse(stream, &self.state.config);
                        continue;
                    }
                    let id = self.state.next_session.fetch_add(1, Ordering::Relaxed);
                    let db = Arc::clone(&self.db);
                    let state = Arc::clone(&self.state);
                    let committer = Committer {
                        txs: Arc::clone(&commit_txs),
                    };
                    self.state.active.fetch_add(1, Ordering::Relaxed);
                    workers.push(std::thread::spawn(move || {
                        run_session(stream, id, &db, &state, &committer);
                        state.active.fetch_sub(1, Ordering::Relaxed);
                        state.sessions.lock().remove(&id);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(self.state.config.poll_interval);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        // Drain: unblock session sockets, then join the threads. Each
        // session blocked on a commit reply stays up until the committer
        // serves it, so no enqueued writer loses its ack.
        self.state.begin_shutdown();
        for h in workers {
            let _ = h.join();
        }
        // All session-held senders are gone; dropping ours disconnects
        // every channel. Each committer finishes whatever is still
        // buffered (mpsc delivers queued messages after disconnect) and
        // exits.
        drop(commit_txs);
        for committer in committers {
            let _ = committer.join();
        }
        if let Some(path) = &self.state.config.snapshot_path {
            // With a WAL this is a checkpoint (durable snapshot, then log
            // rotation, per shard); without one it degrades to a plain
            // durable save.
            self.db.checkpoint(path)?;
        }
        Ok(self.state.served.load(Ordering::Relaxed))
    }
}

// -- group commit ---------------------------------------------------------

/// What one enqueued ingest frame carries.
enum CommitPayload {
    /// Raw `ADD ANNOTATION` statements (with source text, for the WAL).
    /// The single-shard route: the committer resolves and ingests them
    /// through [`Database::annotate_batch_sql`].
    Sql(Vec<SqlStatement>),
    /// Pre-resolved items already stamped by the router, every one
    /// owned by this queue's shard. The `shards > 1` route: sessions
    /// resolve and stamp before enqueueing.
    Stamped(Vec<StampedRowAnnotation>),
}

impl CommitPayload {
    fn len(&self) -> usize {
        match self {
            CommitPayload::Sql(v) => v.len(),
            CommitPayload::Stamped(v) => v.len(),
        }
    }
}

/// One enqueued ingest frame plus the channel the session blocks on.
/// The committer answers with one [`BatchItem`] per item, in order.
struct CommitJob {
    payload: CommitPayload,
    reply: mpsc::Sender<Vec<BatchItem>>,
}

/// A session's handle into every shard's commit queue.
struct Committer {
    txs: Arc<Vec<mpsc::SyncSender<CommitJob>>>,
}

impl Committer {
    /// Enqueues one payload on `shard`'s queue and blocks until that
    /// shard's committer has ingested it (and, when a WAL is attached,
    /// fsynced it), returning one result per item.
    fn submit(&self, shard: usize, payload: CommitPayload) -> Result<Vec<BatchItem>> {
        self.submit_async(shard, payload)?
            .recv()
            .map_err(|_| Error::Execution("commit reply lost (committer exited)".into()))
    }

    /// Enqueues without waiting; the caller collects the reply later.
    /// This is what lets one session's multi-shard batch commit on all
    /// its owner shards in parallel.
    fn submit_async(
        &self,
        shard: usize,
        payload: CommitPayload,
    ) -> Result<mpsc::Receiver<Vec<BatchItem>>> {
        let (reply_tx, reply_rx) = mpsc::channel();
        let tx = self
            .txs
            .get(shard)
            .ok_or_else(|| Error::Execution(format!("no commit queue for shard {shard}")))?;
        tx.send(CommitJob {
            payload,
            reply: reply_tx,
        })
        .map_err(|_| Error::Execution("commit queue closed (server shutting down)".into()))?;
        Ok(reply_rx)
    }
}

/// Converts one engine result into its wire item, poisoning would-be
/// successes when the group's fsync failed (the ack's durability
/// promise could not be kept).
fn batch_item(r: Result<ExecOutcome>, sync_err: Option<&Error>) -> BatchItem {
    match (r, sync_err) {
        (Ok(_), Some(e)) => BatchItem::Err(WireError::from(&Error::Execution(format!(
            "write-ahead log sync failed; write not durable: {e}"
        )))),
        (Ok(outcome), None) => BatchItem::Ok(outcome.to_string()),
        (Err(e), _) => BatchItem::Err(WireError::from(&e)),
    }
}

/// One shard's dedicated committer thread: each wake-up drains every
/// job that has accumulated in its queue (capped at
/// [`wire::MAX_BATCH_ITEMS`] items per group) and ingests the combined
/// lists through **one** exclusive-lock acquisition on its shard —
/// [`Database::annotate_batch_sql`] for raw statements,
/// [`Database::annotate_rows_batch_stamped`] for router-stamped items —
/// then fsyncs that shard's WAL segment (the group-commit point;
/// readers may proceed during the fsync, which only needs the shared
/// lock) and fans the per-item results back to the waiting sessions. A
/// failed fsync poisons every would-be success in the group. Exits when
/// every sender is gone and the queue is empty, which is what makes
/// shutdown lossless. N shards run N of these: N independent lock
/// domains and N overlapping fsync pipelines.
///
/// A failed fsync also poisons the *committer itself* for the rest of
/// its lifetime (mirroring the engine-level `Wal` poisoning): every
/// later group on this shard is rejected without executing. Were
/// commits allowed to resume after a sync failure, a previously
/// compensated (error-acked) annotation could silently resurrect on the
/// next successful fsync — the DESIGN.md §12 residual risk this
/// closes. Recovery is an operator restart, which replays only the
/// durable prefix.
fn run_committer(
    rx: mpsc::Receiver<CommitJob>,
    db: &ShardedDatabase,
    shard: usize,
    state: &ServerState,
) {
    let mut poisoned: Option<String> = None;
    while let Ok(first) = rx.recv() {
        let mut queued = first.payload.len();
        let mut jobs = vec![first];
        while queued < wire::MAX_BATCH_ITEMS {
            match rx.try_recv() {
                Ok(job) => {
                    queued += job.payload.len();
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        let mut sql = Vec::new();
        let mut stamped = Vec::new();
        // Per job: (is_sql, item count) — replies fan back out in order.
        let mut spans = Vec::with_capacity(jobs.len());
        let mut replies = Vec::with_capacity(jobs.len());
        for job in jobs {
            match job.payload {
                CommitPayload::Sql(mut v) => {
                    spans.push((true, v.len()));
                    sql.append(&mut v);
                }
                CommitPayload::Stamped(mut v) => {
                    spans.push((false, v.len()));
                    stamped.append(&mut v);
                }
            }
            replies.push(job.reply);
        }
        if let Some(why) = &poisoned {
            let item = BatchItem::Err(WireError::from(&Error::Execution(format!(
                "shard {shard} commits are disabled after an earlier write-ahead-log \
                 sync failure: {why}"
            ))));
            for ((_, n), reply) in spans.into_iter().zip(replies) {
                let _ = reply.send(vec![item.clone(); n]);
            }
            continue;
        }
        let handle = db.shard(shard);
        let (sql_results, stamped_results) = {
            let mut guard = handle.write();
            let sql_results = if sql.is_empty() {
                Vec::new()
            } else {
                guard.annotate_batch_sql(sql)
            };
            let stamped_results = if stamped.is_empty() {
                Vec::new()
            } else {
                guard.annotate_rows_batch_stamped(stamped)
            };
            (sql_results, stamped_results)
        };
        // Group-commit fsync *after* releasing the exclusive lock (sync
        // only needs `&self`), *before* releasing any reply.
        let sync_err = handle.read().wal_sync().err();
        if let Some(e) = &sync_err {
            poisoned = Some(e.to_string());
        } else {
            // The group is durable: move the committed watermark's
            // signal so caught-up replication feeds ship it now.
            state.notify_commit(shard);
        }
        let mut sql_results = sql_results.into_iter();
        let mut stamped_results = stamped_results.into_iter();
        for ((is_sql, n), reply) in spans.into_iter().zip(replies) {
            let items: Vec<BatchItem> = if is_sql {
                sql_results
                    .by_ref()
                    .take(n)
                    .map(|r| batch_item(r, sync_err.as_ref()))
                    .collect()
            } else {
                stamped_results
                    .by_ref()
                    .take(n)
                    .map(|r| batch_item(r, sync_err.as_ref()))
                    .collect()
            };
            // A send error means the session died mid-wait; its reply is
            // dropped, everyone else's still goes out.
            let _ = reply.send(items);
        }
    }
}

/// Routes one frame's `ADD ANNOTATION` statements into the commit
/// queue(s). Single shard: the raw statements go to the one committer
/// (legacy group commit). `shards > 1`: the *session* resolves targets
/// and obtains router stamps (shard read guards acquired and dropped
/// inside [`ShardedDatabase::prepare_sql_annotations`], so no lock is
/// held across a queue send), then submits each owner shard's slice to
/// that shard's committer — all sends first, then all replies, so
/// disjoint shards commit and fsync in parallel. A multi-owner item
/// acks only once every owner shard has fsynced; any owner's failure
/// becomes the item's result — after the owners that did durably store
/// the replica are given a best-effort compensating delete
/// ([`ShardedDatabase::compensate_partial`]), so the reported failure
/// does not leave the annotation attached to a subset of its rows.
fn submit_annotations(
    db: &ShardedDatabase,
    committer: &Committer,
    stmts: Vec<SqlStatement>,
) -> Result<Vec<BatchItem>> {
    if !db.is_sharded() {
        return committer.submit(0, CommitPayload::Sql(stmts));
    }
    let prepared = db.prepare_sql_annotations(&stmts);
    let mut slots: Vec<Option<BatchItem>> = Vec::new();
    slots.resize_with(prepared.len(), || None);
    let mut ids: Vec<Option<AnnotationId>> = vec![None; slots.len()];
    let mut ok_shards: Vec<Vec<usize>> = vec![Vec::new(); slots.len()];
    let mut per_shard: BTreeMap<usize, (Vec<usize>, Vec<StampedRowAnnotation>)> = BTreeMap::new();
    for (i, p) in prepared.into_iter().enumerate() {
        match p {
            Err(e) => {
                if let Some(slot) = slots.get_mut(i) {
                    *slot = Some(BatchItem::Err(WireError::from(&e)));
                }
            }
            Ok(routed) => {
                if let Some(id) = ids.get_mut(i) {
                    *id = Some(AnnotationId::new(routed.stamped.id));
                }
                for &k in &routed.shards {
                    let (indices, batch) = per_shard.entry(k).or_default();
                    indices.push(i);
                    batch.push(routed.stamped.clone());
                }
            }
        }
    }
    let mut pending = Vec::with_capacity(per_shard.len());
    for (k, (indices, batch)) in per_shard {
        pending.push((
            k,
            indices,
            committer.submit_async(k, CommitPayload::Stamped(batch))?,
        ));
    }
    for (k, indices, reply_rx) in pending {
        let items = reply_rx
            .recv()
            .map_err(|_| Error::Execution("commit reply lost (committer exited)".into()))?;
        for (i, item) in indices.into_iter().zip(items) {
            let Some(slot) = slots.get_mut(i) else {
                continue;
            };
            if matches!(item, BatchItem::Ok(_)) {
                if let Some(oks) = ok_shards.get_mut(i) {
                    oks.push(k);
                }
            }
            // Multi-owner combine: any shard's failure wins; otherwise
            // the first (lowest-shard) success stands.
            let replace = match (&slot, &item) {
                (Some(BatchItem::Err(_)), _) => false,
                (Some(BatchItem::Ok(_)), BatchItem::Err(_)) => true,
                (Some(BatchItem::Ok(_)), BatchItem::Ok(_)) => false,
                (None, _) => true,
            };
            if replace {
                *slot = Some(item);
            }
        }
    }
    // A multi-owner item that committed (and fsynced) on some owners
    // but failed — or lost its group fsync — on another is repaired
    // before the error goes out: the successful owners' replicas are
    // deleted so the acked failure converges to "not written".
    for ((slot, id), oks) in slots.iter().zip(&ids).zip(&ok_shards) {
        if matches!(slot, Some(BatchItem::Err(_))) && !oks.is_empty() {
            if let Some(id) = id {
                db.compensate_partial(*id, oks);
            }
        }
    }
    Ok(slots
        .into_iter()
        .map(|s| {
            s.unwrap_or_else(|| {
                BatchItem::Err(WireError::from(&Error::Execution(
                    "batch slot missing a committer result".into(),
                )))
            })
        })
        .collect())
}

/// Turns away a connection over the limit with a structured error frame,
/// written under the same [`ServerConfig::request_timeout`] every other
/// response honors.
fn refuse(mut stream: TcpStream, config: &ServerConfig) {
    let _ = stream.set_write_timeout(Some(config.request_timeout));
    let _ = wire::write_frame(
        &mut stream,
        &Response::Error(WireError::from(&Error::Execution(format!(
            "connection limit ({}) reached; try again later",
            config.max_connections
        )))),
    );
}

/// What one attempt to read a frame from a session produced.
enum FrameRead {
    /// A complete, well-formed request.
    Frame(Request),
    /// A well-delimited frame whose payload failed to decode; the stream
    /// is still in sync, so the session answers with an error frame.
    Bad(WireError),
    /// Nothing arrived within one poll tick.
    Idle,
    /// The peer closed the connection cleanly.
    Closed,
}

/// Reads one frame in poll ticks. The wait for a frame's *first* byte is
/// unbounded (returning [`FrameRead::Idle`] each tick so the caller can
/// check for shutdown); once a frame has started, the remaining bytes
/// must arrive before `request_timeout` expires.
fn read_session_frame(stream: &mut TcpStream, state: &ServerState) -> Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled == 0 {
        if state.shutting_down() {
            return Ok(FrameRead::Idle);
        }
        match stream.read(&mut len_buf) {
            Ok(0) => return Ok(FrameRead::Closed),
            Ok(n) => filled = n,
            Err(e) if blocked(&e) => return Ok(FrameRead::Idle),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let deadline = Instant::now() + state.config.request_timeout;
    fill(stream, &mut len_buf, &mut filled, deadline, state)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > wire::MAX_FRAME_BYTES {
        // Swallow the oversized payload (bounded by the request deadline)
        // so the stream stays in sync, then answer with a structured
        // error instead of dropping the connection.
        drain(stream, len, deadline, state)?;
        return Ok(FrameRead::Bad(WireError::from(&Error::Codec(format!(
            "frame of {len} bytes exceeds the {}-byte limit",
            wire::MAX_FRAME_BYTES
        )))));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    fill(stream, &mut payload, &mut got, deadline, state)?;
    match wire::decode_frame::<Request>(&payload) {
        Ok(req) => Ok(FrameRead::Frame(req)),
        Err(e) => Ok(FrameRead::Bad(WireError::from(&e))),
    }
}

/// Reads until `buf[..]` is full, tolerating poll-tick timeouts up to
/// `deadline`. EOF or an expired deadline mid-frame is an error.
fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    filled: &mut usize,
    deadline: Instant,
    state: &ServerState,
) -> Result<()> {
    let total = buf.len();
    loop {
        let Some(rest) = buf.get_mut(*filled..) else {
            return Err(Error::Codec("frame read cursor out of range".into()));
        };
        if rest.is_empty() {
            break;
        }
        if Instant::now() >= deadline {
            return Err(Error::Execution(format!(
                "request timed out after {:?} mid-frame",
                state.config.request_timeout
            )));
        }
        match stream.read(rest) {
            Ok(0) => {
                return Err(Error::Codec(format!(
                    "connection closed mid-frame ({} of {total} bytes)",
                    *filled
                )))
            }
            Ok(n) => *filled += n,
            Err(e) if blocked(&e) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Reads and discards `remaining` payload bytes under `deadline` — the
/// recovery path for frames whose declared length exceeds the cap.
fn drain(
    stream: &mut TcpStream,
    mut remaining: usize,
    deadline: Instant,
    state: &ServerState,
) -> Result<()> {
    let mut scratch = [0u8; 8192];
    while remaining > 0 {
        if Instant::now() >= deadline {
            return Err(Error::Execution(format!(
                "request timed out after {:?} mid-frame",
                state.config.request_timeout
            )));
        }
        let want = remaining.min(scratch.len());
        let Some(chunk) = scratch.get_mut(..want) else {
            return Err(Error::Codec("drain chunk sizing out of range".into()));
        };
        match stream.read(chunk) {
            Ok(0) => {
                return Err(Error::Codec(format!(
                    "connection closed mid-frame ({remaining} bytes left to drain)"
                )))
            }
            Ok(n) => remaining -= n,
            Err(e) if blocked(&e) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

fn blocked(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// One connection's request/response loop.
fn run_session(
    mut stream: TcpStream,
    id: u64,
    db: &ShardedDatabase,
    state: &ServerState,
    committer: &Committer,
) {
    if configure_session_socket(&stream, state).is_err() {
        return;
    }
    if let Ok(clone) = stream.try_clone() {
        state.sessions.lock().insert(id, clone);
    }
    loop {
        match read_session_frame(&mut stream, state) {
            Ok(FrameRead::Idle) => {
                if state.shutting_down() {
                    break;
                }
            }
            Ok(FrameRead::Closed) | Err(_) => break,
            Ok(FrameRead::Bad(e)) => {
                if wire::write_frame(&mut stream, &Response::Error(e)).is_err() {
                    break;
                }
            }
            Ok(FrameRead::Frame(req)) => {
                state.served.fetch_add(1, Ordering::Relaxed);
                if let Request::Subscribe {
                    shard,
                    epoch,
                    offset,
                } = req
                {
                    // The connection becomes a one-way replication
                    // stream; no further requests are read on it.
                    run_feed(&mut stream, db, state, shard, epoch, offset);
                    break;
                }
                let shutdown_requested = matches!(req, Request::Shutdown);
                let response = handle_request(db, state, committer, req);
                let write_ok = wire::write_frame(&mut stream, &response).is_ok();
                if shutdown_requested {
                    state.begin_shutdown();
                    break;
                }
                if !write_ok {
                    break;
                }
            }
        }
    }
}

fn configure_session_socket(stream: &TcpStream, state: &ServerState) -> std::io::Result<()> {
    // Accepted sockets must block with a poll-tick read timeout (the
    // listener itself is non-blocking).
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(state.config.poll_interval))?;
    stream.set_write_timeout(Some(state.config.request_timeout))?;
    Ok(())
}

// -- replication feed -----------------------------------------------------

/// Idle poll ticks between replication heartbeats (empty `WalFrame`s
/// that both prove liveness and detect a dead subscriber).
const HEARTBEAT_TICKS: u32 = 20;

/// Serves one replication subscription until the stream breaks or the
/// server shuts down. Failures that are the subscriber's fault (bad
/// shard index, subscribing to a replica, WAL disabled) go out as a
/// structured error frame; write failures just end the feed — the
/// subscriber reconnects and resubscribes.
fn run_feed(
    stream: &mut TcpStream,
    db: &ShardedDatabase,
    state: &ServerState,
    shard: u32,
    epoch: u64,
    offset: u64,
) {
    if let Err(e) = try_run_feed(stream, db, state, shard, epoch, offset) {
        let _ = wire::write_frame(stream, &Response::Error(WireError::from(&e)));
    }
}

fn try_run_feed(
    stream: &mut TcpStream,
    db: &ShardedDatabase,
    state: &ServerState,
    shard: u32,
    sub_epoch: u64,
    sub_offset: u64,
) -> Result<()> {
    if let Some(replica) = &state.config.replica {
        return Err(Error::Execution(format!(
            "this server is a replica; subscribe to the primary at {}",
            replica.primary
        )));
    }
    let shard_idx = usize::try_from(shard).unwrap_or(usize::MAX);
    if shard_idx >= db.shard_count() {
        return Err(Error::Execution(format!(
            "no shard {shard} on this primary ({} shard(s))",
            db.shard_count()
        )));
    }
    let handle = db.shard(shard_idx);
    let mut sub = (sub_epoch, sub_offset);
    'plan: loop {
        if state.shutting_down() {
            return Ok(());
        }
        // Decide how this subscriber joins: resume at its own position,
        // or snapshot-bootstrap it (also the path after an epoch
        // rotation mid-stream — the subscriber sees a fresh
        // SubscribeAck and discards its local shard state).
        let (epoch, mut cursor) = match feed::plan_feed(handle, sub.0, sub.1)? {
            FeedStart::Resume { epoch, offset } => {
                wire::write_frame(
                    stream,
                    &Response::SubscribeAck {
                        epoch,
                        offset,
                        snapshot: false,
                    },
                )?;
                (epoch, offset)
            }
            FeedStart::Bootstrap {
                epoch,
                offset,
                snapshot,
            } => {
                wire::write_frame(
                    stream,
                    &Response::SubscribeAck {
                        epoch,
                        offset,
                        snapshot: true,
                    },
                )?;
                let total = snapshot.len();
                let mut sent = 0usize;
                loop {
                    let end = (sent + feed::SNAPSHOT_CHUNK_BYTES).min(total);
                    let Some(chunk) = snapshot.get(sent..end) else {
                        break;
                    };
                    wire::write_frame(
                        stream,
                        &Response::SnapshotChunk {
                            data: chunk.to_vec(),
                            last: end == total,
                        },
                    )?;
                    sent = end;
                    if sent >= total {
                        break;
                    }
                }
                (epoch, offset)
            }
        };
        let mut idle = 0u32;
        loop {
            if state.shutting_down() {
                return Ok(());
            }
            // Snapshot the commit signal *before* reading the watermark:
            // a commit that lands between the read and the wait below
            // moves the sequence past `seen`, so the wait returns
            // immediately instead of losing the wakeup.
            let seen = state.commit_seq(shard_idx);
            match feed::read_committed(handle, epoch, cursor)? {
                // The shard's log left this epoch (checkpoint rotation):
                // re-plan, which bootstraps the subscriber afresh.
                None => {
                    sub = (epoch, cursor);
                    continue 'plan;
                }
                Some((_, data)) if data.is_empty() => {
                    state.wait_commit_past(shard_idx, seen, state.config.poll_interval);
                    idle += 1;
                    if idle >= HEARTBEAT_TICKS {
                        idle = 0;
                        wire::write_frame(
                            stream,
                            &Response::WalFrame {
                                epoch,
                                offset: cursor,
                                data: Vec::new(),
                            },
                        )?;
                    }
                }
                Some((end, data)) => {
                    idle = 0;
                    wire::write_frame(
                        stream,
                        &Response::WalFrame {
                            epoch,
                            offset: cursor,
                            data,
                        },
                    )?;
                    cursor = end;
                }
            }
        }
    }
}

/// Rejects a write-class request when this server is a replica.
fn reject_if_replica(state: &ServerState) -> Result<()> {
    if let Some(replica) = &state.config.replica {
        return Err(Error::ReadOnlyReplica(format!(
            "writes must go to the primary at {}",
            replica.primary
        )));
    }
    Ok(())
}

/// Executes one request against the shared database, picking the lock
/// side by statement classification. Annotation ingest routes through
/// the per-shard group-commit queues instead of locking from the
/// session thread.
fn handle_request(
    db: &ShardedDatabase,
    state: &ServerState,
    committer: &Committer,
    req: Request,
) -> Response {
    match try_handle_request(db, state, committer, req) {
        Ok(resp) => resp,
        Err(e) => Response::Error(WireError::from(&e)),
    }
}

fn try_handle_request(
    db: &ShardedDatabase,
    state: &ServerState,
    committer: &Committer,
    req: Request,
) -> Result<Response> {
    match req {
        Request::Ping => Ok(Response::Pong {
            version: wire::WIRE_VERSION,
            served: state.served.load(Ordering::Relaxed),
        }),
        Request::Shutdown => Ok(Response::ShuttingDown),
        Request::Query { sql } => {
            let stmt = expect_single(&sql, "Query")?;
            if !matches!(stmt, Statement::Select(_)) {
                return Err(Error::Execution(
                    "Query frames carry exactly one SELECT; use Execute for other statements"
                        .into(),
                ));
            }
            match db.execute_read(stmt)? {
                ExecOutcome::Query(q) => {
                    // Summary-instance names are replicated; shard 0's
                    // registry renders them for the wire.
                    let shard0 = db.shard(0).read();
                    Ok(Response::Rows(rows_payload(&shard0, &q)))
                }
                _ => Err(Error::Execution(
                    "SELECT produced a non-query outcome; engine/server protocol mismatch".into(),
                )),
            }
        }
        Request::ZoomIn { sql } => {
            let stmt = expect_single(&sql, "ZoomIn")?;
            if !matches!(stmt, Statement::ZoomIn(_)) {
                return Err(Error::Execution(
                    "ZoomIn frames carry exactly one ZOOMIN statement".into(),
                ));
            }
            match db.execute_read(stmt)? {
                ExecOutcome::ZoomIn(z) => Ok(Response::Zoomed(zoom_payload(z))),
                _ => Err(Error::Execution(
                    "ZOOMIN produced a non-zoom-in outcome; engine/server protocol mismatch".into(),
                )),
            }
        }
        Request::Annotate { sql } => {
            reject_if_replica(state)?;
            let stmt = annotate_statement(&sql, "Annotate")?;
            let mut items = submit_annotations(db, committer, vec![stmt])?;
            match items.pop() {
                Some(BatchItem::Ok(message)) => Ok(Response::Ack {
                    messages: vec![message],
                }),
                Some(BatchItem::Err(e)) => Ok(Response::Error(e)),
                None => Err(Error::Execution("committer returned no result".into())),
            }
        }
        Request::AnnotateBatch { statements } => {
            reject_if_replica(state)?;
            // Each item parses independently; the ones that don't become
            // per-item errors while the rest still group-commit.
            let mut slots: Vec<Option<BatchItem>> = Vec::new();
            slots.resize_with(statements.len(), || None);
            let mut stmts = Vec::new();
            let mut indices = Vec::new();
            for (i, sql) in statements.iter().enumerate() {
                match annotate_statement(sql, "AnnotateBatch") {
                    Ok(stmt) => {
                        indices.push(i);
                        stmts.push(stmt);
                    }
                    Err(e) => {
                        if let Some(slot) = slots.get_mut(i) {
                            *slot = Some(BatchItem::Err(WireError::from(&e)));
                        }
                    }
                }
            }
            let committed = if stmts.is_empty() {
                Vec::new()
            } else {
                submit_annotations(db, committer, stmts)?
            };
            for (i, item) in indices.into_iter().zip(committed) {
                if let Some(slot) = slots.get_mut(i) {
                    *slot = Some(item);
                }
            }
            // Every slot is filled by construction; an unfilled one
            // still degrades to a per-item error rather than a panic.
            Ok(Response::BatchAck {
                results: slots
                    .into_iter()
                    .map(|s| {
                        s.unwrap_or_else(|| {
                            BatchItem::Err(WireError::from(&Error::Execution(
                                "batch slot missing a committer result".into(),
                            )))
                        })
                    })
                    .collect(),
            })
        }
        Request::Execute { sql } => {
            let stmts = parse(&sql)?;
            if stmts.is_empty() {
                return Err(Error::Parse("empty statement".into()));
            }
            let messages = if stmts.iter().all(|s| s.class() == StatementClass::Read) {
                stmts
                    .into_iter()
                    .map(|s| Ok(db.execute_read(s)?.to_string()))
                    .collect::<Result<Vec<_>>>()?
            } else {
                reject_if_replica(state)?;
                // The script's source text goes through execute_sql so
                // the WAL (when attached) records it before execution —
                // on every shard it touches; the sync below is the
                // per-request commit point, after which the ack's
                // durability promise holds.
                let outcomes = db.execute_sql(&sql)?;
                db.wal_sync_all()?;
                outcomes
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect()
            };
            Ok(Response::Ack { messages })
        }
        // Intercepted in `run_session` (it consumes the whole
        // connection); reaching here means a caller bypassed that path.
        Request::Subscribe { .. } => Err(Error::Execution(
            "Subscribe is handled at the session layer".into(),
        )),
        Request::ReplicaState => {
            if let Some(replica) = &state.config.replica {
                return Ok(Response::ReplicaState {
                    shards: replica.positions.snapshot(),
                });
            }
            let mut shards = Vec::with_capacity(db.shard_count());
            for k in 0..db.shard_count() {
                let (epoch, offset) = db.shard(k).read().wal_committed().ok_or_else(|| {
                    Error::Execution(
                        "replication state requires a write-ahead log (--wal-dir)".into(),
                    )
                })?;
                shards.push(ShardPosition { epoch, offset });
            }
            Ok(Response::ReplicaState { shards })
        }
    }
}

fn expect_single(sql: &str, kind: &str) -> Result<Statement> {
    let mut stmts = parse(sql)?;
    if stmts.len() != 1 {
        return Err(Error::Execution(format!(
            "{kind} frames carry exactly one statement, found {}",
            stmts.len()
        )));
    }
    Ok(stmts.remove(0))
}

/// Parses one ingest item: exactly one `ADD ANNOTATION` statement,
/// returned with its source text so the committer can log it.
fn annotate_statement(sql: &str, kind: &str) -> Result<SqlStatement> {
    let stmt = expect_single(sql, kind)?;
    if !matches!(stmt, Statement::AddAnnotation { .. }) {
        return Err(Error::Execution(format!(
            "{kind} items carry exactly one ADD ANNOTATION statement"
        )));
    }
    Ok(SqlStatement {
        sql: sql.to_string(),
        stmt,
    })
}

fn wire_value(v: &Value) -> WireValue {
    match v {
        Value::Null => WireValue::Null,
        Value::Int(i) => WireValue::Int(*i),
        Value::Float(f) => WireValue::Float(*f),
        Value::Text(s) => WireValue::Text(s.clone()),
        Value::Bool(b) => WireValue::Bool(*b),
    }
}

/// Converts an engine result set into its wire representation. Summary
/// objects are shipped in the paper's rendered notation.
fn rows_payload(db: &Database, q: &QueryResult) -> RowsPayload {
    let columns = q
        .schema
        .columns()
        .iter()
        .map(Column::display_name)
        .collect();
    let rows = q
        .rows
        .iter()
        .map(|r| WireRow {
            values: r.row.values().iter().map(wire_value).collect(),
            summaries: r
                .summaries
                .iter()
                .map(|(inst, obj)| {
                    let name = db
                        .registry()
                        .instance(*inst)
                        .map_or_else(|_| inst.to_string(), |i| i.name().to_string());
                    format!("{name} {obj}")
                })
                .collect(),
        })
        .collect();
    RowsPayload {
        qid: q.qid.raw(),
        columns,
        rows,
    }
}

fn zoom_payload(z: ZoomInResult) -> ZoomPayload {
    ZoomPayload {
        annotations: z
            .annotations
            .into_iter()
            .map(|a| WireAnnotation {
                id: a.id.raw(),
                text: a.text,
                document: a.document,
                author: a.author,
            })
            .collect(),
        from_cache: z.from_cache,
        matched_rows: z.matched_rows as u64,
    }
}

// -- signal handling ------------------------------------------------------

static SIGNALED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been observed since
/// [`install_signal_handlers`] ran.
pub fn signal_requested() -> bool {
    SIGNALED.load(Ordering::Relaxed)
}

/// Installs SIGINT/SIGTERM handlers that flip an atomic flag; the accept
/// loop polls it and drains into the graceful-shutdown path (final
/// snapshot included). No-op on non-Unix targets.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALED.store(true, Ordering::Relaxed);
    }
    // std links libc; declaring the two symbols we need avoids an
    // external crate. BSD `signal` semantics (glibc default) are fine —
    // the accept loop never blocks, it polls.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    // SAFETY: `signal` is async-signal-safe to install, the handler is a
    // real `extern "C" fn(i32)` whose body only performs an atomic store
    // (itself async-signal-safe), and the `usize` casts round-trip
    // function pointers on every supported Unix ABI.
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// No-op fallback for non-Unix targets.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

#[cfg(test)]
mod tests {
    use super::*;

    // The whole session model hinges on the database being shareable
    // across session threads.
    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<ShardedDatabase>();
        assert_send_sync::<Server>();
    }

    #[test]
    fn classification_picks_the_expected_lock() {
        let read = parse("SELECT name FROM birds").unwrap();
        assert!(read.iter().all(|s| s.class() == StatementClass::Read));
        let write = parse("INSERT INTO birds VALUES (1)").unwrap();
        assert!(write.iter().all(|s| s.class() == StatementClass::Write));
        let mixed = parse("SELECT name FROM birds; DELETE FROM birds").unwrap();
        assert!(!mixed.iter().all(|s| s.class() == StatementClass::Read));
    }

    #[test]
    fn expect_single_rejects_batches() {
        assert!(expect_single("SELECT a FROM t; SELECT b FROM t", "Query").is_err());
        assert!(expect_single("SELECT a FROM t", "Query").is_ok());
    }
}
