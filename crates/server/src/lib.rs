#![warn(missing_docs)]
//! # insightnotes-server
//!
//! `insightd`: a concurrent TCP daemon serving one shared
//! [`Database`] to many client sessions over the
//! [`insightnotes_common::wire`] frame protocol.
//!
//! ## Session model
//!
//! One OS thread per connection over a `std::net::TcpListener`. The
//! database sits behind an `Arc<RwLock<Database>>`; every incoming
//! statement is classified ([`Statement::class`]) and the session takes
//! the **shared** lock for Read-class work (SELECT, ZOOMIN, EXPLAIN —
//! which the engine exposes from `&self` since the QID/zoom-cache state
//! moved behind its interior lock) or the **exclusive** lock for
//! Write-class work (DDL, INSERT, registry changes). Queries from N
//! sessions therefore execute concurrently; writers serialize.
//!
//! ## Group commit
//!
//! `Annotate` and `AnnotateBatch` frames do **not** take the exclusive
//! lock from their session thread. Sessions enqueue their statements
//! into a bounded commit queue ([`ServerConfig::commit_queue_depth`])
//! and block for the reply; a dedicated committer thread drains whatever
//! has accumulated and ingests it through one
//! [`Database::annotate_batch_sql`] call — one exclusive-lock
//! acquisition per *group* of concurrent writers instead of one per
//! annotation, so writers stop convoying behind readers one at a time.
//! Per-statement results fan back out to the waiting sessions (partial
//! failure allowed within a batch). The queue drains fully on graceful
//! shutdown: every enqueued writer still receives its reply.
//!
//! ## Durability
//!
//! With a write-ahead log attached to the database
//! (`insightd --wal-dir`), the committer is also the **group-fsync**
//! point: the whole drained group lands in the log as one record before
//! it executes, one `fsync` covers it (under the `batch` sync policy),
//! and replies are released only **after** that fsync returns — an ack
//! therefore promises the annotation survives `kill -9` or power loss.
//! If the fsync fails, every would-be success in the group is converted
//! to an error, because the ack's promise could not be kept. `Execute`
//! frames carrying writes follow the same discipline (log, execute,
//! sync, then reply). On restart, `insightd` recovers through
//! [`Database::recover`]: snapshot plus WAL-tail replay.
//!
//! ## Robustness
//!
//! - **Connection limit** — accepts beyond
//!   [`ServerConfig::max_connections`] are answered with a structured
//!   error frame and closed.
//! - **Per-request timeout** — once the first byte of a frame arrives,
//!   the rest must arrive within [`ServerConfig::request_timeout`];
//!   responses are written under the same timeout. Waiting *between*
//!   frames is unbounded (idle REPL sessions stay up).
//! - **Graceful shutdown** — SIGINT/SIGTERM (see
//!   [`install_signal_handlers`]), a client `Shutdown` frame, or
//!   [`ServerHandle::shutdown`] all drain the same path: stop accepting,
//!   unblock every session socket, join the session threads, then write
//!   a final [`insightnotes_engine::persist`] snapshot when a snapshot
//!   path is configured.

use insightnotes_common::wire::{
    self, BatchItem, Request, Response, RowsPayload, WireAnnotation, WireError, WireRow, WireValue,
    ZoomPayload,
};
use insightnotes_common::{Error, Result};
use insightnotes_engine::db::{ExecOutcome, QueryResult, SqlStatement, ZoomInResult};
use insightnotes_engine::Database;
use insightnotes_sql::{parse, Statement, StatementClass};
use insightnotes_storage::{Column, Value};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum simultaneously served connections; excess connects get an
    /// error frame and are closed.
    pub max_connections: usize,
    /// Deadline for finishing one in-flight request frame (read of the
    /// remaining frame bytes) and for writing a response.
    pub request_timeout: Duration,
    /// How often blocked accept/read loops wake to check for shutdown.
    pub poll_interval: Duration,
    /// When set, a final durable snapshot is written here during
    /// graceful shutdown.
    pub snapshot_path: Option<PathBuf>,
    /// Capacity of the group-commit queue (in enqueued frames). Sessions
    /// whose `Annotate`/`AnnotateBatch` lands on a full queue block until
    /// the committer drains — natural backpressure on ingest bursts.
    pub commit_queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            request_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(50),
            snapshot_path: None,
            commit_queue_depth: 256,
        }
    }
}

/// Shared mutable server state (the handle and every session see it).
#[derive(Debug)]
struct ServerState {
    config: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    served: AtomicU64,
    next_session: AtomicU64,
    /// Socket clones of live sessions, used to unblock their reads at
    /// shutdown.
    sessions: Mutex<HashMap<u64, TcpStream>>,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal_requested()
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        for (_, stream) in self.sessions.lock().drain() {
            // Read side only: blocked reads unblock immediately, while a
            // session still waiting on the commit queue can flush its
            // reply before exiting (no lost acks mid-queue).
            let _ = stream.shutdown(std::net::Shutdown::Read);
        }
    }
}

/// A cheap clone-able handle for observing and stopping a running server.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Asks the server to shut down gracefully; returns immediately.
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutting_down()
    }

    /// Total requests served so far, across all sessions.
    pub fn requests_served(&self) -> u64 {
        self.state.served.load(Ordering::Relaxed)
    }

    /// Currently live sessions.
    pub fn active_sessions(&self) -> usize {
        self.state.active.load(Ordering::Relaxed)
    }
}

/// The `insightd` server: a listener plus the shared database.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    db: Arc<RwLock<Database>>,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds a listener and prepares the shared database. Use port 0 for
    /// an ephemeral port; read it back with [`Server::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs, db: Database, config: ServerConfig) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept lets the loop poll the shutdown flag.
        listener.set_nonblocking(true)?;
        Ok(Self {
            listener,
            db: Arc::new(RwLock::new(db)),
            state: Arc::new(ServerState {
                config,
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                served: AtomicU64::new(0),
                next_session: AtomicU64::new(0),
                sessions: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// A handle for stopping/observing the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// The shared database (tests inspect state through this).
    pub fn database(&self) -> Arc<RwLock<Database>> {
        Arc::clone(&self.db)
    }

    /// Serves connections until shutdown is requested, then drains
    /// sessions and the commit queue and writes the final snapshot (when
    /// configured). Returns the total number of requests served.
    pub fn run(self) -> Result<u64> {
        let (commit_tx, commit_rx) =
            mpsc::sync_channel::<CommitJob>(self.state.config.commit_queue_depth.max(1));
        let committer = {
            let db = Arc::clone(&self.db);
            std::thread::spawn(move || run_committer(commit_rx, &db))
        };
        let mut workers = Vec::new();
        loop {
            if self.state.shutting_down() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    workers.retain(|h: &std::thread::JoinHandle<()>| !h.is_finished());
                    if self.state.active.load(Ordering::Relaxed)
                        >= self.state.config.max_connections
                    {
                        refuse(stream, &self.state.config);
                        continue;
                    }
                    let id = self.state.next_session.fetch_add(1, Ordering::Relaxed);
                    let db = Arc::clone(&self.db);
                    let state = Arc::clone(&self.state);
                    let committer = Committer {
                        tx: commit_tx.clone(),
                    };
                    self.state.active.fetch_add(1, Ordering::Relaxed);
                    workers.push(std::thread::spawn(move || {
                        run_session(stream, id, &db, &state, &committer);
                        state.active.fetch_sub(1, Ordering::Relaxed);
                        state.sessions.lock().remove(&id);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(self.state.config.poll_interval);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        // Drain: unblock session sockets, then join the threads. Each
        // session blocked on a commit reply stays up until the committer
        // serves it, so no enqueued writer loses its ack.
        self.state.begin_shutdown();
        for h in workers {
            let _ = h.join();
        }
        // All session-held senders are gone; dropping ours disconnects
        // the channel. The committer finishes whatever is still buffered
        // (mpsc delivers queued messages after disconnect) and exits.
        drop(commit_tx);
        let _ = committer.join();
        if let Some(path) = &self.state.config.snapshot_path {
            // With a WAL this is a checkpoint (durable snapshot, then log
            // rotation); without one it degrades to a plain durable save.
            self.db.write().checkpoint(path)?;
        }
        Ok(self.state.served.load(Ordering::Relaxed))
    }
}

// -- group commit ---------------------------------------------------------

/// One enqueued ingest frame: its `ADD ANNOTATION` statements plus the
/// channel the session blocks on. The committer answers with one
/// [`BatchItem`] per statement, in order.
struct CommitJob {
    stmts: Vec<SqlStatement>,
    reply: mpsc::Sender<Vec<BatchItem>>,
}

/// A session's handle into the commit queue.
struct Committer {
    tx: mpsc::SyncSender<CommitJob>,
}

impl Committer {
    /// Enqueues one frame's statements and blocks until the committer
    /// has ingested them (and, when a WAL is attached, fsynced them),
    /// returning one result per statement.
    fn submit(&self, stmts: Vec<SqlStatement>) -> Result<Vec<BatchItem>> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(CommitJob {
                stmts,
                reply: reply_tx,
            })
            .map_err(|_| Error::Execution("commit queue closed (server shutting down)".into()))?;
        reply_rx
            .recv()
            .map_err(|_| Error::Execution("commit reply lost (committer exited)".into()))
    }
}

/// The dedicated committer thread: each wake-up drains every job that
/// has accumulated in the queue (capped at [`wire::MAX_BATCH_ITEMS`]
/// statements per group) and ingests the combined statement list through
/// **one** [`Database::annotate_batch_sql`] call — a single
/// exclusive-lock acquisition and a single WAL record per group — then
/// fsyncs the log (the group-commit point; readers may proceed during
/// the fsync, which only needs the shared lock) and fans the
/// per-statement results back to the waiting sessions. A failed fsync
/// poisons every would-be success in the group: the reply's durability
/// promise could not be kept. Exits when every sender is gone and the
/// queue is empty, which is what makes shutdown lossless.
fn run_committer(rx: mpsc::Receiver<CommitJob>, db: &RwLock<Database>) {
    while let Ok(first) = rx.recv() {
        let mut queued = first.stmts.len();
        let mut jobs = vec![first];
        while queued < wire::MAX_BATCH_ITEMS {
            match rx.try_recv() {
                Ok(job) => {
                    queued += job.stmts.len();
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        let mut all = Vec::with_capacity(queued);
        let mut spans = Vec::with_capacity(jobs.len());
        for job in &mut jobs {
            spans.push(job.stmts.len());
            all.append(&mut job.stmts);
        }
        let results = db.write().annotate_batch_sql(all);
        // Group-commit fsync *after* releasing the exclusive lock (sync
        // only needs `&self`), *before* releasing any reply.
        let sync_err = db.read().wal_sync().err();
        let mut results = results.into_iter();
        for (job, n) in jobs.into_iter().zip(spans) {
            let items: Vec<BatchItem> = results
                .by_ref()
                .take(n)
                .map(|r| match (r, &sync_err) {
                    (Ok(_), Some(e)) => BatchItem::Err(WireError::from(&Error::Execution(
                        format!("write-ahead log sync failed; write not durable: {e}"),
                    ))),
                    (Ok(outcome), None) => BatchItem::Ok(outcome.to_string()),
                    (Err(e), _) => BatchItem::Err(WireError::from(&e)),
                })
                .collect();
            // A send error means the session died mid-wait; its reply is
            // dropped, everyone else's still goes out.
            let _ = job.reply.send(items);
        }
    }
}

/// Turns away a connection over the limit with a structured error frame,
/// written under the same [`ServerConfig::request_timeout`] every other
/// response honors.
fn refuse(mut stream: TcpStream, config: &ServerConfig) {
    let _ = stream.set_write_timeout(Some(config.request_timeout));
    let _ = wire::write_frame(
        &mut stream,
        &Response::Error(WireError::from(&Error::Execution(format!(
            "connection limit ({}) reached; try again later",
            config.max_connections
        )))),
    );
}

/// What one attempt to read a frame from a session produced.
enum FrameRead {
    /// A complete, well-formed request.
    Frame(Request),
    /// A well-delimited frame whose payload failed to decode; the stream
    /// is still in sync, so the session answers with an error frame.
    Bad(WireError),
    /// Nothing arrived within one poll tick.
    Idle,
    /// The peer closed the connection cleanly.
    Closed,
}

/// Reads one frame in poll ticks. The wait for a frame's *first* byte is
/// unbounded (returning [`FrameRead::Idle`] each tick so the caller can
/// check for shutdown); once a frame has started, the remaining bytes
/// must arrive before `request_timeout` expires.
fn read_session_frame(stream: &mut TcpStream, state: &ServerState) -> Result<FrameRead> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled == 0 {
        if state.shutting_down() {
            return Ok(FrameRead::Idle);
        }
        match stream.read(&mut len_buf) {
            Ok(0) => return Ok(FrameRead::Closed),
            Ok(n) => filled = n,
            Err(e) if blocked(&e) => return Ok(FrameRead::Idle),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let deadline = Instant::now() + state.config.request_timeout;
    fill(stream, &mut len_buf, &mut filled, deadline, state)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > wire::MAX_FRAME_BYTES {
        // Swallow the oversized payload (bounded by the request deadline)
        // so the stream stays in sync, then answer with a structured
        // error instead of dropping the connection.
        drain(stream, len, deadline, state)?;
        return Ok(FrameRead::Bad(WireError::from(&Error::Codec(format!(
            "frame of {len} bytes exceeds the {}-byte limit",
            wire::MAX_FRAME_BYTES
        )))));
    }
    let mut payload = vec![0u8; len];
    let mut got = 0usize;
    fill(stream, &mut payload, &mut got, deadline, state)?;
    match wire::decode_frame::<Request>(&payload) {
        Ok(req) => Ok(FrameRead::Frame(req)),
        Err(e) => Ok(FrameRead::Bad(WireError::from(&e))),
    }
}

/// Reads until `buf[..]` is full, tolerating poll-tick timeouts up to
/// `deadline`. EOF or an expired deadline mid-frame is an error.
fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    filled: &mut usize,
    deadline: Instant,
    state: &ServerState,
) -> Result<()> {
    let total = buf.len();
    loop {
        let Some(rest) = buf.get_mut(*filled..) else {
            return Err(Error::Codec("frame read cursor out of range".into()));
        };
        if rest.is_empty() {
            break;
        }
        if Instant::now() >= deadline {
            return Err(Error::Execution(format!(
                "request timed out after {:?} mid-frame",
                state.config.request_timeout
            )));
        }
        match stream.read(rest) {
            Ok(0) => {
                return Err(Error::Codec(format!(
                    "connection closed mid-frame ({} of {total} bytes)",
                    *filled
                )))
            }
            Ok(n) => *filled += n,
            Err(e) if blocked(&e) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Reads and discards `remaining` payload bytes under `deadline` — the
/// recovery path for frames whose declared length exceeds the cap.
fn drain(
    stream: &mut TcpStream,
    mut remaining: usize,
    deadline: Instant,
    state: &ServerState,
) -> Result<()> {
    let mut scratch = [0u8; 8192];
    while remaining > 0 {
        if Instant::now() >= deadline {
            return Err(Error::Execution(format!(
                "request timed out after {:?} mid-frame",
                state.config.request_timeout
            )));
        }
        let want = remaining.min(scratch.len());
        let Some(chunk) = scratch.get_mut(..want) else {
            return Err(Error::Codec("drain chunk sizing out of range".into()));
        };
        match stream.read(chunk) {
            Ok(0) => {
                return Err(Error::Codec(format!(
                    "connection closed mid-frame ({remaining} bytes left to drain)"
                )))
            }
            Ok(n) => remaining -= n,
            Err(e) if blocked(&e) => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

fn blocked(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// One connection's request/response loop.
fn run_session(
    mut stream: TcpStream,
    id: u64,
    db: &RwLock<Database>,
    state: &ServerState,
    committer: &Committer,
) {
    if configure_session_socket(&stream, state).is_err() {
        return;
    }
    if let Ok(clone) = stream.try_clone() {
        state.sessions.lock().insert(id, clone);
    }
    loop {
        match read_session_frame(&mut stream, state) {
            Ok(FrameRead::Idle) => {
                if state.shutting_down() {
                    break;
                }
            }
            Ok(FrameRead::Closed) | Err(_) => break,
            Ok(FrameRead::Bad(e)) => {
                if wire::write_frame(&mut stream, &Response::Error(e)).is_err() {
                    break;
                }
            }
            Ok(FrameRead::Frame(req)) => {
                state.served.fetch_add(1, Ordering::Relaxed);
                let shutdown_requested = matches!(req, Request::Shutdown);
                let response = handle_request(db, state, committer, req);
                let write_ok = wire::write_frame(&mut stream, &response).is_ok();
                if shutdown_requested {
                    state.begin_shutdown();
                    break;
                }
                if !write_ok {
                    break;
                }
            }
        }
    }
}

fn configure_session_socket(stream: &TcpStream, state: &ServerState) -> std::io::Result<()> {
    // Accepted sockets must block with a poll-tick read timeout (the
    // listener itself is non-blocking).
    stream.set_nonblocking(false)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(state.config.poll_interval))?;
    stream.set_write_timeout(Some(state.config.request_timeout))?;
    Ok(())
}

/// Executes one request against the shared database, picking the lock
/// side by statement classification. Annotation ingest routes through
/// the group-commit queue instead of locking from the session thread.
fn handle_request(
    db: &RwLock<Database>,
    state: &ServerState,
    committer: &Committer,
    req: Request,
) -> Response {
    match try_handle_request(db, state, committer, req) {
        Ok(resp) => resp,
        Err(e) => Response::Error(WireError::from(&e)),
    }
}

fn try_handle_request(
    db: &RwLock<Database>,
    state: &ServerState,
    committer: &Committer,
    req: Request,
) -> Result<Response> {
    match req {
        Request::Ping => Ok(Response::Pong {
            version: wire::WIRE_VERSION,
            served: state.served.load(Ordering::Relaxed),
        }),
        Request::Shutdown => Ok(Response::ShuttingDown),
        Request::Query { sql } => {
            let stmt = expect_single(&sql, "Query")?;
            if !matches!(stmt, Statement::Select(_)) {
                return Err(Error::Execution(
                    "Query frames carry exactly one SELECT; use Execute for other statements"
                        .into(),
                ));
            }
            let db = db.read();
            match db.execute_read(stmt)? {
                ExecOutcome::Query(q) => Ok(Response::Rows(rows_payload(&db, &q))),
                _ => Err(Error::Execution(
                    "SELECT produced a non-query outcome; engine/server protocol mismatch".into(),
                )),
            }
        }
        Request::ZoomIn { sql } => {
            let stmt = expect_single(&sql, "ZoomIn")?;
            if !matches!(stmt, Statement::ZoomIn(_)) {
                return Err(Error::Execution(
                    "ZoomIn frames carry exactly one ZOOMIN statement".into(),
                ));
            }
            let db = db.read();
            match db.execute_read(stmt)? {
                ExecOutcome::ZoomIn(z) => Ok(Response::Zoomed(zoom_payload(z))),
                _ => Err(Error::Execution(
                    "ZOOMIN produced a non-zoom-in outcome; engine/server protocol mismatch".into(),
                )),
            }
        }
        Request::Annotate { sql } => {
            let stmt = annotate_statement(&sql, "Annotate")?;
            let mut items = committer.submit(vec![stmt])?;
            match items.pop() {
                Some(BatchItem::Ok(message)) => Ok(Response::Ack {
                    messages: vec![message],
                }),
                Some(BatchItem::Err(e)) => Ok(Response::Error(e)),
                None => Err(Error::Execution("committer returned no result".into())),
            }
        }
        Request::AnnotateBatch { statements } => {
            // Each item parses independently; the ones that don't become
            // per-item errors while the rest still group-commit.
            let mut slots: Vec<Option<BatchItem>> = Vec::new();
            slots.resize_with(statements.len(), || None);
            let mut stmts = Vec::new();
            let mut indices = Vec::new();
            for (i, sql) in statements.iter().enumerate() {
                match annotate_statement(sql, "AnnotateBatch") {
                    Ok(stmt) => {
                        indices.push(i);
                        stmts.push(stmt);
                    }
                    Err(e) => {
                        if let Some(slot) = slots.get_mut(i) {
                            *slot = Some(BatchItem::Err(WireError::from(&e)));
                        }
                    }
                }
            }
            let committed = if stmts.is_empty() {
                Vec::new()
            } else {
                committer.submit(stmts)?
            };
            for (i, item) in indices.into_iter().zip(committed) {
                if let Some(slot) = slots.get_mut(i) {
                    *slot = Some(item);
                }
            }
            // Every slot is filled by construction; an unfilled one
            // still degrades to a per-item error rather than a panic.
            Ok(Response::BatchAck {
                results: slots
                    .into_iter()
                    .map(|s| {
                        s.unwrap_or_else(|| {
                            BatchItem::Err(WireError::from(&Error::Execution(
                                "batch slot missing a committer result".into(),
                            )))
                        })
                    })
                    .collect(),
            })
        }
        Request::Execute { sql } => {
            let stmts = parse(&sql)?;
            if stmts.is_empty() {
                return Err(Error::Parse("empty statement".into()));
            }
            let messages = if stmts.iter().all(|s| s.class() == StatementClass::Read) {
                let db = db.read();
                stmts
                    .into_iter()
                    .map(|s| Ok(db.execute_read(s)?.to_string()))
                    .collect::<Result<Vec<_>>>()?
            } else {
                // The script's source text goes through execute_sql so
                // the WAL (when attached) records it before execution;
                // the sync below is the per-request commit point, after
                // which the ack's durability promise holds.
                let outcomes = db.write().execute_sql(&sql)?;
                db.read().wal_sync()?;
                outcomes
                    .iter()
                    .map(std::string::ToString::to_string)
                    .collect()
            };
            Ok(Response::Ack { messages })
        }
    }
}

fn expect_single(sql: &str, kind: &str) -> Result<Statement> {
    let mut stmts = parse(sql)?;
    if stmts.len() != 1 {
        return Err(Error::Execution(format!(
            "{kind} frames carry exactly one statement, found {}",
            stmts.len()
        )));
    }
    Ok(stmts.remove(0))
}

/// Parses one ingest item: exactly one `ADD ANNOTATION` statement,
/// returned with its source text so the committer can log it.
fn annotate_statement(sql: &str, kind: &str) -> Result<SqlStatement> {
    let stmt = expect_single(sql, kind)?;
    if !matches!(stmt, Statement::AddAnnotation { .. }) {
        return Err(Error::Execution(format!(
            "{kind} items carry exactly one ADD ANNOTATION statement"
        )));
    }
    Ok(SqlStatement {
        sql: sql.to_string(),
        stmt,
    })
}

fn wire_value(v: &Value) -> WireValue {
    match v {
        Value::Null => WireValue::Null,
        Value::Int(i) => WireValue::Int(*i),
        Value::Float(f) => WireValue::Float(*f),
        Value::Text(s) => WireValue::Text(s.clone()),
        Value::Bool(b) => WireValue::Bool(*b),
    }
}

/// Converts an engine result set into its wire representation. Summary
/// objects are shipped in the paper's rendered notation.
fn rows_payload(db: &Database, q: &QueryResult) -> RowsPayload {
    let columns = q
        .schema
        .columns()
        .iter()
        .map(Column::display_name)
        .collect();
    let rows = q
        .rows
        .iter()
        .map(|r| WireRow {
            values: r.row.values().iter().map(wire_value).collect(),
            summaries: r
                .summaries
                .iter()
                .map(|(inst, obj)| {
                    let name = db
                        .registry()
                        .instance(*inst)
                        .map_or_else(|_| inst.to_string(), |i| i.name().to_string());
                    format!("{name} {obj}")
                })
                .collect(),
        })
        .collect();
    RowsPayload {
        qid: q.qid.raw(),
        columns,
        rows,
    }
}

fn zoom_payload(z: ZoomInResult) -> ZoomPayload {
    ZoomPayload {
        annotations: z
            .annotations
            .into_iter()
            .map(|a| WireAnnotation {
                id: a.id.raw(),
                text: a.text,
                document: a.document,
                author: a.author,
            })
            .collect(),
        from_cache: z.from_cache,
        matched_rows: z.matched_rows as u64,
    }
}

// -- signal handling ------------------------------------------------------

static SIGNALED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been observed since
/// [`install_signal_handlers`] ran.
pub fn signal_requested() -> bool {
    SIGNALED.load(Ordering::Relaxed)
}

/// Installs SIGINT/SIGTERM handlers that flip an atomic flag; the accept
/// loop polls it and drains into the graceful-shutdown path (final
/// snapshot included). No-op on non-Unix targets.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALED.store(true, Ordering::Relaxed);
    }
    // std links libc; declaring the two symbols we need avoids an
    // external crate. BSD `signal` semantics (glibc default) are fine —
    // the accept loop never blocks, it polls.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    // SAFETY: `signal` is async-signal-safe to install, the handler is a
    // real `extern "C" fn(i32)` whose body only performs an atomic store
    // (itself async-signal-safe), and the `usize` casts round-trip
    // function pointers on every supported Unix ABI.
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// No-op fallback for non-Unix targets.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

#[cfg(test)]
mod tests {
    use super::*;

    // The whole session model hinges on the database being shareable
    // across session threads.
    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<Server>();
    }

    #[test]
    fn classification_picks_the_expected_lock() {
        let read = parse("SELECT name FROM birds").unwrap();
        assert!(read.iter().all(|s| s.class() == StatementClass::Read));
        let write = parse("INSERT INTO birds VALUES (1)").unwrap();
        assert!(write.iter().all(|s| s.class() == StatementClass::Write));
        let mixed = parse("SELECT name FROM birds; DELETE FROM birds").unwrap();
        assert!(!mixed.iter().all(|s| s.class() == StatementClass::Read));
    }

    #[test]
    fn expect_single_rejects_batches() {
        assert!(expect_single("SELECT a FROM t; SELECT b FROM t", "Query").is_err());
        assert!(expect_single("SELECT a FROM t", "Query").is_ok());
    }
}
