#![warn(missing_docs)]
//! # insightnotes-server
//!
//! `insightd`: a concurrent TCP daemon serving one shared
//! [`Database`] to many client sessions over the
//! [`insightnotes_common::wire`] frame protocol.
//!
//! ## Session model
//!
//! A readiness-based **reactor** (see [`reactor`]): one accept loop
//! hands sockets round-robin to N worker event loops, each owning an
//! epoll set of nonblocking connections with per-connection frame
//! state machines. Requests are **pipelined** — a v2 client tags every
//! request with a sequence id and keeps many in flight on one
//! connection; reads complete (and may reorder) as the engine finishes
//! them, writes flow into the per-shard commit queues and ack in
//! commit (fsync) order. Serial v1 frames stay accepted on the same
//! port, answered in v1.
//!
//! The engine sits behind an `Arc<`[`ShardedDatabase`]`>` — N
//! partitioned [`Database`] shards (one at the default `--shards 1`,
//! where the router collapses to the legacy single-lock engine).
//! Read-class work (SELECT, ZOOMIN, EXPLAIN) executes inline on the
//! worker under shared locks; replicated Write-class work (DDL,
//! INSERT, registry changes) broadcasts under exclusive locks in fixed
//! shard order on a dedicated execute thread. Queries from N sessions
//! therefore execute concurrently; writers to *different shards* no
//! longer serialize against each other — and one stalled connection no
//! longer costs an OS thread.
//!
//! ## Group commit, per shard
//!
//! `Annotate` and `AnnotateBatch` frames do **not** take an exclusive
//! lock from their session thread. Each shard gets its own bounded
//! commit queue ([`ServerConfig::commit_queue_depth`]) and its own
//! committer thread. At one shard, sessions enqueue raw statements and
//! the committer drains whatever has accumulated into one
//! [`Database::annotate_batch_sql`] call — one exclusive-lock
//! acquisition per *group* of concurrent writers instead of one per
//! annotation. At `shards > 1`, the session itself resolves targets and
//! obtains router-stamped ids/ticks
//! ([`ShardedDatabase::prepare_sql_annotations`], shard read guards
//! dropped before any enqueue), then hands each owner shard's slice to
//! that shard's queue — all sends before any reply wait, so disjoint
//! shards group-commit **in parallel**. Per-statement results fan back
//! out to the waiting sessions (partial failure allowed within a
//! batch). Every queue drains fully on graceful shutdown: every
//! enqueued writer still receives its reply.
//!
//! ## Durability
//!
//! With a write-ahead log attached (`insightd --wal-dir`), each
//! committer is its shard's **group-fsync** point: the drained group
//! lands in that shard's WAL segment as one record before it executes,
//! one `fsync` covers it (under the `batch` sync policy), and replies
//! are released only **after** that fsync returns — an ack therefore
//! promises the annotation survives `kill -9` or power loss. A
//! multi-shard annotation acks only after *every* owner shard's fsync.
//! If an fsync fails, every would-be success in that shard's group is
//! converted to an error, because the ack's promise could not be kept.
//! `Execute` frames carrying writes follow the same discipline (log,
//! execute, sync, then reply). On restart, `insightd` recovers through
//! [`ShardedDatabase::recover`]: per-shard snapshot plus WAL-tail
//! replay, cross-checked against the shard manifest.
//!
//! ## Robustness
//!
//! - **Connection limit** — accepts beyond
//!   [`ServerConfig::max_connections`] are answered with a best-effort
//!   nonblocking error frame and closed; the accept loop never blocks
//!   on a refused client.
//! - **Progress deadlines** — `set_read_timeout`/`set_write_timeout`
//!   are silent no-ops on nonblocking sockets, so the reactor enforces
//!   deadlines itself with a timer wheel: a connection that is
//!   mid-frame (slowloris) or sitting on unflushed response bytes
//!   (stalled reader) and makes no socket progress for
//!   [`ServerConfig::request_timeout`] is evicted. Idle connections
//!   between frames are unbounded (idle REPL sessions stay up).
//! - **Backpressure** — per-connection in-flight caps and write-queue
//!   watermarks stop a flooding client from ballooning server memory;
//!   commit-queue saturation parks further writes from a connection
//!   (retried in order) instead of blocking a thread.
//! - **Graceful shutdown** — SIGINT/SIGTERM (see
//!   [`install_signal_handlers`]), a client `Shutdown` frame, or
//!   [`ServerHandle::shutdown`] all drain the same path: stop
//!   accepting, stop reading, let in-flight work finish and its acks
//!   flush (bounded by the request timeout), join the reactor and
//!   committers, then write a final [`insightnotes_engine::persist`]
//!   snapshot when a snapshot path is configured.
//!
//! ## Replication
//!
//! A WAL-attached primary also serves [`Request::Subscribe`]: the
//! session switches into a one-way streaming mode that bootstraps the
//! subscriber with a chunked snapshot when needed and then ships every
//! *committed* (fsynced, hence acked) WAL byte range as
//! [`Response::WalFrame`]s — see [`insightnotes_replication::feed`].
//! A server started in replica mode ([`ServerConfig::replica`]) serves
//! reads from locally applied state, answers
//! [`Request::ReplicaState`] with its applied position vector (the
//! read-your-writes handshake), and rejects every write with
//! [`Error::ReadOnlyReplica`] naming the primary.

pub mod reactor;

use insightnotes_common::wire::{
    self, BatchItem, HistoryPayload, Request, Response, RowsPayload, ShardPosition, WireAnnotation,
    WireError, WireLifecycleEvent, WireLifecycleKind, WireRow, WireValue, ZoomPayload,
};
use insightnotes_common::{AnnotationId, Error, Result};
use insightnotes_engine::db::{ExecOutcome, QueryResult, SqlStatement, ZoomInResult};
use insightnotes_engine::{Database, LifecycleKind, ShardedDatabase, StampedRowAnnotation};
use insightnotes_replication::feed::{self, FeedStart};
use insightnotes_replication::PositionTable;
use insightnotes_sql::{parse, Statement, StatementClass};
use insightnotes_storage::{Column, Value};
use parking_lot::witness::class as lock_class;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum simultaneously served connections; excess connects get an
    /// error frame and are closed.
    pub max_connections: usize,
    /// Deadline for finishing one in-flight request frame (read of the
    /// remaining frame bytes) and for writing a response.
    pub request_timeout: Duration,
    /// How often blocked accept/read loops wake to check for shutdown.
    pub poll_interval: Duration,
    /// When set, a final durable snapshot is written here during
    /// graceful shutdown.
    pub snapshot_path: Option<PathBuf>,
    /// Capacity of the group-commit queue (in enqueued frames). Sessions
    /// whose `Annotate`/`AnnotateBatch` lands on a full queue block until
    /// the committer drains — natural backpressure on ingest bursts.
    pub commit_queue_depth: usize,
    /// When set, this server is a read replica: reads serve locally,
    /// writes are rejected with [`Error::ReadOnlyReplica`], and
    /// `ReplicaState` reports the tailers' applied positions.
    pub replica: Option<ReplicaServing>,
    /// Reactor worker (event-loop) threads. `0` means one per available
    /// core.
    pub reactor_workers: usize,
}

/// Replica-mode serving context: where writes should be redirected and
/// which applied positions to report.
#[derive(Debug, Clone)]
pub struct ReplicaServing {
    /// Primary address, quoted in `ReadOnlyReplica` rejections.
    pub primary: String,
    /// Applied-position table shared with the replica's tailer threads.
    pub positions: Arc<PositionTable>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            // Connections are event-loop entries now, not threads; the
            // default admits the 10k the reactor is built for.
            max_connections: 10_000,
            request_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(50),
            snapshot_path: None,
            commit_queue_depth: 256,
            replica: None,
            reactor_workers: 0,
        }
    }
}

/// Per-shard commit notification: the shard's committer bumps `seq`
/// after every successful group fsync and wakes all waiters, so a
/// caught-up replication feed ships the new frames immediately instead
/// of discovering them on its next poll tick. Steady-state replication
/// lag is then one ship + one apply, not the poll interval.
#[derive(Debug)]
struct CommitSignal {
    seq: Mutex<u64>,
    cond: Condvar,
}

impl Default for CommitSignal {
    fn default() -> Self {
        Self {
            seq: Mutex::new(0).with_class(lock_class::COMMIT_QUEUE),
            cond: Condvar::new(),
        }
    }
}

/// Shared mutable server state (the handle and every session see it).
#[derive(Debug)]
struct ServerState {
    config: ServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    served: AtomicU64,
    /// One [`CommitSignal`] per shard.
    commits: Vec<CommitSignal>,
}

impl ServerState {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal_requested()
    }

    /// Current commit sequence for `shard` (0 if out of range).
    fn commit_seq(&self, shard: usize) -> u64 {
        self.commits.get(shard).map_or(0, |s| *s.seq.lock())
    }

    /// Bumps `shard`'s commit sequence and wakes every feed waiting on it.
    fn notify_commit(&self, shard: usize) {
        if let Some(s) = self.commits.get(shard) {
            *s.seq.lock() += 1;
            s.cond.notify_all();
        }
    }

    /// Blocks until `shard`'s commit sequence moves past `seen`, the
    /// timeout elapses, or a spurious wakeup fires — the caller's poll
    /// loop re-checks the committed watermark either way, so this only
    /// needs to be a bounded, prompt-on-commit wait.
    fn wait_commit_past(&self, shard: usize, seen: u64, timeout: Duration) {
        let Some(s) = self.commits.get(shard) else {
            std::thread::sleep(timeout);
            return;
        };
        let guard = s.seq.lock();
        if *guard != seen {
            return;
        }
        drop(s.cond.wait_timeout(guard, timeout));
    }

    fn begin_shutdown(&self) {
        // Just a flag: reactor workers poll it (within one poll
        // interval) and run the drain protocol themselves — no session
        // sockets to unblock, nothing here ever blocks.
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// A cheap clone-able handle for observing and stopping a running server.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Asks the server to shut down gracefully; returns immediately.
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutting_down()
    }

    /// Total requests served so far, across all sessions.
    pub fn requests_served(&self) -> u64 {
        self.state.served.load(Ordering::Relaxed)
    }

    /// Currently live sessions.
    pub fn active_sessions(&self) -> usize {
        self.state.active.load(Ordering::Relaxed)
    }
}

/// The `insightd` server: a listener plus the shared database.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    db: Arc<ShardedDatabase>,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds a listener over a single-shard database. Use port 0 for
    /// an ephemeral port; read it back with [`Server::local_addr`].
    pub fn bind(addr: impl ToSocketAddrs, db: Database, config: ServerConfig) -> Result<Self> {
        Self::bind_sharded(addr, db.into(), config)
    }

    /// Binds a listener over an already-partitioned engine
    /// (`insightd --shards N` builds one via [`ShardedDatabase::recover`]).
    pub fn bind_sharded(
        addr: impl ToSocketAddrs,
        db: ShardedDatabase,
        config: ServerConfig,
    ) -> Result<Self> {
        let listener = TcpListener::bind(addr)?;
        // Non-blocking accept lets the loop poll the shutdown flag.
        listener.set_nonblocking(true)?;
        let commits = (0..db.shard_count())
            .map(|_| CommitSignal::default())
            .collect();
        Ok(Self {
            listener,
            db: Arc::new(db),
            state: Arc::new(ServerState {
                config,
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                served: AtomicU64::new(0),
                commits,
            }),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// A handle for stopping/observing the server from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Shard 0 of the shared database (tests inspect state through
    /// this; at the default single shard it is *the* database).
    pub fn database(&self) -> Arc<RwLock<Database>> {
        Arc::clone(self.db.shard(0))
    }

    /// The sharded engine behind the server.
    pub fn sharded_database(&self) -> Arc<ShardedDatabase> {
        Arc::clone(&self.db)
    }

    /// Serves connections until shutdown is requested, then drains the
    /// reactor and every shard's commit queue and writes the final
    /// snapshot (when configured). Returns the total requests served.
    pub fn run(self) -> Result<u64> {
        let depth = self.state.config.commit_queue_depth.max(1);
        let shard_count = self.db.shard_count();
        let mut txs = Vec::with_capacity(shard_count);
        let mut backlog = Vec::with_capacity(shard_count);
        let mut committers = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let (tx, rx) = mpsc::channel::<CommitJob>();
            let gauge = Arc::new(AtomicUsize::new(0));
            let db = Arc::clone(&self.db);
            let state = Arc::clone(&self.state);
            let g = Arc::clone(&gauge);
            committers.push(std::thread::spawn(move || {
                run_committer(rx, &db, shard, &state, &g);
            }));
            txs.push(tx);
            backlog.push(gauge);
        }
        let ctx = Arc::new(SessionCtx {
            db: Arc::clone(&self.db),
            state: Arc::clone(&self.state),
            queues: CommitQueues {
                txs: Mutex::new(txs).with_class(lock_class::COMMIT_QUEUE),
                backlog,
                depth,
            },
            execute_lane: ExecuteLane::start(),
            feeders: Mutex::new(Vec::new()).with_class(lock_class::REACTOR),
        });
        let workers = match self.state.config.reactor_workers {
            0 => std::thread::available_parallelism().map_or(4, std::num::NonZeroUsize::get),
            n => n,
        };
        let mut reactor =
            reactor::Reactor::start(workers, Arc::clone(&ctx) as Arc<dyn reactor::Ops>)?;
        // The (nonblocking) listener rides its own epoll set so a
        // connect wakes the accept loop immediately — sleeping a poll
        // interval between accept attempts would turn a burst of N
        // connects into N × interval of accept latency. The timeout
        // only bounds how stale the shutdown check can get.
        let accept_poll = {
            use std::os::fd::AsRawFd;
            let ep = reactor::epoll::Epoll::new()?;
            ep.add(
                self.listener.as_raw_fd(),
                0,
                reactor::epoll::Interest {
                    read: true,
                    write: false,
                    rdhup: false,
                },
            )?;
            ep
        };
        let mut ready = Vec::with_capacity(4);
        loop {
            if self.state.shutting_down() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.state.active.load(Ordering::Relaxed)
                        >= self.state.config.max_connections
                    {
                        refuse(&stream, &self.state.config);
                        continue;
                    }
                    // Count the slot before handing off; the worker (or a
                    // failed hand-off) releases it.
                    self.state.active.fetch_add(1, Ordering::Relaxed);
                    if !reactor.assign(stream) {
                        self.state.active.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    accept_poll.wait_ready(&mut ready, Some(self.state.config.poll_interval))?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Fd exhaustion (EMFILE/ENFILE) is load, not a server
                // defect: back off and retry instead of tearing down
                // every established connection. (No epoll wait here —
                // the pending connection keeps the listener readable,
                // which would spin.)
                Err(e) if matches!(e.raw_os_error(), Some(23 | 24)) => {
                    std::thread::sleep(self.state.config.poll_interval);
                }
                Err(e) => return Err(e.into()),
            }
        }
        self.state.begin_shutdown();
        // Drain order matters: workers first (they wait for in-flight
        // commit acks, flush write queues, close sockets), with the
        // committers and execute lane still live to produce those acks.
        reactor.join();
        ctx.execute_lane.join();
        ctx.join_feeders();
        // Now nothing can enqueue: closing the queues disconnects the
        // channels, each committer finishes whatever is still buffered
        // (mpsc delivers queued messages after disconnect) and exits.
        ctx.queues.close();
        for committer in committers {
            let _ = committer.join();
        }
        if let Some(path) = &self.state.config.snapshot_path {
            // With a WAL this is a checkpoint (durable snapshot, then log
            // rotation, per shard); without one it degrades to a plain
            // durable save.
            self.db.checkpoint(path)?;
        }
        Ok(self.state.served.load(Ordering::Relaxed))
    }
}

// -- group commit ---------------------------------------------------------

/// What one enqueued ingest frame carries.
enum CommitPayload {
    /// Raw `ADD ANNOTATION` statements (with source text, for the WAL).
    /// The single-shard route: the committer resolves and ingests them
    /// through [`Database::annotate_batch_sql`].
    Sql(Vec<SqlStatement>),
    /// Pre-resolved items already stamped by the router, every one
    /// owned by this queue's shard. The `shards > 1` route: sessions
    /// resolve and stamp before enqueueing.
    Stamped(Vec<StampedRowAnnotation>),
}

impl CommitPayload {
    fn len(&self) -> usize {
        match self {
            CommitPayload::Sql(v) => v.len(),
            CommitPayload::Stamped(v) => v.len(),
        }
    }
}

/// How a commit job's results get back to whoever is waiting: a
/// one-shot callback invoked **on the committer thread** after the
/// group's fsync, with one [`BatchItem`] per submitted item, in order.
/// In the reactor world "whoever is waiting" is a connection, and the
/// callback posts the encoded response back to its event loop.
type CommitReply = Box<dyn FnOnce(Vec<BatchItem>) + Send>;

/// One enqueued ingest frame plus its completion callback.
struct CommitJob {
    payload: CommitPayload,
    reply: CommitReply,
}

/// Every shard's commit queue plus the backlog gauges the reactor's
/// admission check reads. Queue channels are unbounded — depth is
/// enforced at *admission* ([`CommitQueues::all_ready`]): a connection
/// whose write lands on a saturated queue is parked by its event loop
/// and retried, instead of blocking an OS thread the way the old
/// bounded `sync_channel` did.
struct CommitQueues {
    txs: Mutex<Vec<mpsc::Sender<CommitJob>>>,
    backlog: Vec<Arc<AtomicUsize>>,
    depth: usize,
}

impl CommitQueues {
    /// Whether every shard's backlog is below the configured depth —
    /// the admission gate for new write frames.
    fn all_ready(&self) -> bool {
        self.backlog
            .iter()
            .all(|g| g.load(Ordering::Relaxed) < self.depth)
    }

    /// Enqueues one payload on `shard`'s queue. Infallible from the
    /// caller's view: if the queue is closed (shutdown) or the shard is
    /// unknown, `reply` is invoked immediately with per-item errors —
    /// every submitted reply runs exactly once, always.
    fn submit(&self, shard: usize, payload: CommitPayload, reply: CommitReply) {
        let n = payload.len();
        let tx = self.txs.lock().get(shard).cloned();
        let job = CommitJob { payload, reply };
        let failed = match tx {
            Some(tx) => {
                let gauge = self.backlog.get(shard);
                if let Some(g) = gauge {
                    g.fetch_add(1, Ordering::Relaxed);
                }
                match tx.send(job) {
                    Ok(()) => None,
                    Err(mpsc::SendError(job)) => {
                        if let Some(g) = gauge {
                            g.fetch_sub(1, Ordering::Relaxed);
                        }
                        Some(job)
                    }
                }
            }
            None => Some(job),
        };
        if let Some(job) = failed {
            let item = BatchItem::Err(WireError::from(&Error::Execution(
                "commit queue closed (server shutting down)".into(),
            )));
            (job.reply)(vec![item; n]);
        }
    }

    /// Drops every sender; committers drain what is buffered and exit.
    fn close(&self) {
        self.txs.lock().clear();
    }
}

/// Converts one engine result into its wire item, poisoning would-be
/// successes when the group's fsync failed (the ack's durability
/// promise could not be kept).
fn batch_item(r: Result<ExecOutcome>, sync_err: Option<&Error>) -> BatchItem {
    match (r, sync_err) {
        (Ok(_), Some(e)) => BatchItem::Err(WireError::from(&Error::Execution(format!(
            "write-ahead log sync failed; write not durable: {e}"
        )))),
        (Ok(outcome), None) => BatchItem::Ok(outcome.to_string()),
        (Err(e), _) => BatchItem::Err(WireError::from(&e)),
    }
}

/// One shard's dedicated committer thread: each wake-up drains every
/// job that has accumulated in its queue (capped at
/// [`wire::MAX_BATCH_ITEMS`] items per group) and ingests the combined
/// lists through **one** exclusive-lock acquisition on its shard —
/// [`Database::annotate_batch_sql`] for raw statements,
/// [`Database::annotate_rows_batch_stamped`] for router-stamped items —
/// then fsyncs that shard's WAL segment (the group-commit point;
/// readers may proceed during the fsync, which only needs the shared
/// lock) and fans the per-item results back to the waiting sessions. A
/// failed fsync poisons every would-be success in the group. Exits when
/// every sender is gone and the queue is empty, which is what makes
/// shutdown lossless. N shards run N of these: N independent lock
/// domains and N overlapping fsync pipelines.
///
/// A failed fsync also poisons the *committer itself* for the rest of
/// its lifetime (mirroring the engine-level `Wal` poisoning): every
/// later group on this shard is rejected without executing. Were
/// commits allowed to resume after a sync failure, a previously
/// compensated (error-acked) annotation could silently resurrect on the
/// next successful fsync — the DESIGN.md §12 residual risk this
/// closes. Recovery is an operator restart, which replays only the
/// durable prefix.
fn run_committer(
    rx: mpsc::Receiver<CommitJob>,
    db: &ShardedDatabase,
    shard: usize,
    state: &ServerState,
    backlog: &AtomicUsize,
) {
    let mut poisoned: Option<String> = None;
    while let Ok(first) = rx.recv() {
        backlog.fetch_sub(1, Ordering::Relaxed);
        let mut queued = first.payload.len();
        let mut jobs = vec![first];
        while queued < wire::MAX_BATCH_ITEMS {
            match rx.try_recv() {
                Ok(job) => {
                    backlog.fetch_sub(1, Ordering::Relaxed);
                    queued += job.payload.len();
                    jobs.push(job);
                }
                Err(_) => break,
            }
        }
        let mut sql = Vec::new();
        let mut stamped = Vec::new();
        // Per job: (is_sql, item count) — replies fan back out in order.
        let mut spans = Vec::with_capacity(jobs.len());
        let mut replies = Vec::with_capacity(jobs.len());
        for job in jobs {
            match job.payload {
                CommitPayload::Sql(mut v) => {
                    spans.push((true, v.len()));
                    sql.append(&mut v);
                }
                CommitPayload::Stamped(mut v) => {
                    spans.push((false, v.len()));
                    stamped.append(&mut v);
                }
            }
            replies.push(job.reply);
        }
        if let Some(why) = &poisoned {
            let item = BatchItem::Err(WireError::from(&Error::Execution(format!(
                "shard {shard} commits are disabled after an earlier write-ahead-log \
                 sync failure: {why}"
            ))));
            for ((_, n), reply) in spans.into_iter().zip(replies) {
                reply(vec![item.clone(); n]);
            }
            continue;
        }
        let handle = db.shard(shard);
        let (sql_results, stamped_results) = {
            let mut guard = handle.write();
            let sql_results = if sql.is_empty() {
                Vec::new()
            } else {
                guard.annotate_batch_sql(sql)
            };
            let stamped_results = if stamped.is_empty() {
                Vec::new()
            } else {
                guard.annotate_rows_batch_stamped(stamped)
            };
            (sql_results, stamped_results)
        };
        // Group-commit fsync *after* releasing the exclusive lock (sync
        // only needs `&self`), *before* releasing any reply.
        let sync_err = handle.read().wal_sync().err();
        if let Some(e) = &sync_err {
            poisoned = Some(e.to_string());
        } else {
            // The group is durable: move the committed watermark's
            // signal so caught-up replication feeds ship it now.
            state.notify_commit(shard);
        }
        let mut sql_results = sql_results.into_iter();
        let mut stamped_results = stamped_results.into_iter();
        for ((is_sql, n), reply) in spans.into_iter().zip(replies) {
            let items: Vec<BatchItem> = if is_sql {
                sql_results
                    .by_ref()
                    .take(n)
                    .map(|r| batch_item(r, sync_err.as_ref()))
                    .collect()
            } else {
                stamped_results
                    .by_ref()
                    .take(n)
                    .map(|r| batch_item(r, sync_err.as_ref()))
                    .collect()
            };
            // The callback posts to the connection's event loop; a dead
            // connection just drops its response, everyone else's still
            // goes out.
            reply(items);
        }
    }
}

/// Routes one frame's `ADD ANNOTATION` statements into the commit
/// queue(s). Single shard: the raw statements go to the one committer
/// (legacy group commit). `shards > 1`: the *session* resolves targets
/// and obtains router stamps (shard read guards acquired and dropped
/// inside [`ShardedDatabase::prepare_sql_annotations`], so no lock is
/// held across a queue send), then submits each owner shard's slice to
/// that shard's committer — all sends first, then all replies, so
/// disjoint shards commit and fsync in parallel. A multi-owner item
/// acks only once every owner shard has fsynced; any owner's failure
/// becomes the item's result — after the owners that did durably store
/// the replica are given a best-effort compensating delete
/// ([`ShardedDatabase::compensate_partial`]), so the reported failure
/// does not leave the annotation attached to a subset of its rows.
fn submit_annotations_async(
    db: &Arc<ShardedDatabase>,
    queues: &CommitQueues,
    stmts: Vec<SqlStatement>,
    done: CommitReply,
) {
    if !db.is_sharded() {
        queues.submit(0, CommitPayload::Sql(stmts), done);
        return;
    }
    let prepared = db.prepare_sql_annotations(&stmts);
    let mut slots: Vec<Option<BatchItem>> = Vec::new();
    slots.resize_with(prepared.len(), || None);
    let mut ids: Vec<Option<AnnotationId>> = vec![None; slots.len()];
    let mut per_shard: BTreeMap<usize, (Vec<usize>, Vec<StampedRowAnnotation>)> = BTreeMap::new();
    for (i, p) in prepared.into_iter().enumerate() {
        match p {
            Err(e) => {
                if let Some(slot) = slots.get_mut(i) {
                    *slot = Some(BatchItem::Err(WireError::from(&e)));
                }
            }
            Ok(routed) => {
                if let Some(id) = ids.get_mut(i) {
                    *id = Some(AnnotationId::new(routed.stamped.id));
                }
                for &k in &routed.shards {
                    let (indices, batch) = per_shard.entry(k).or_default();
                    indices.push(i);
                    batch.push(routed.stamped.clone());
                }
            }
        }
    }
    if per_shard.is_empty() {
        // Every item failed preparation; nothing to enqueue.
        done(finalize_slots(slots));
        return;
    }
    let combine = Arc::new(
        Mutex::new(Combine {
            slots,
            ids,
            ok_shards: Vec::new(),
            ok_from: Vec::new(),
            remaining: per_shard.len(),
            done: Some(done),
        })
        .with_class(lock_class::REACTOR),
    );
    {
        let mut g = combine.lock();
        let n = g.slots.len();
        g.ok_shards.resize_with(n, Vec::new);
        g.ok_from = vec![None; n];
    }
    for (k, (indices, batch)) in per_shard {
        let combine = Arc::clone(&combine);
        let db = Arc::clone(db);
        queues.submit(
            k,
            CommitPayload::Stamped(batch),
            Box::new(move |items| {
                let mut g = combine.lock();
                let Combine {
                    slots,
                    ok_shards,
                    ok_from,
                    ..
                } = &mut *g;
                merge_shard_results(slots, ok_shards, ok_from, k, &indices, items);
                g.remaining = g.remaining.saturating_sub(1);
                if g.remaining == 0 {
                    // Last owner shard in (running on its committer
                    // thread): take the accumulated state out and
                    // release the combine mutex *before* compensating —
                    // compensation acquires shard write locks, which
                    // rank before the combine mutex in locks.toml.
                    let slots = std::mem::take(&mut g.slots);
                    let ids = std::mem::take(&mut g.ids);
                    let ok_shards = std::mem::take(&mut g.ok_shards);
                    let done = g.done.take();
                    drop(g);
                    compensate_failures(&db, &slots, &ids, &ok_shards);
                    if let Some(done) = done {
                        done(finalize_slots(slots));
                    }
                }
            }),
        );
    }
}

/// Accumulated state of one multi-shard annotation batch: per-item
/// result slots merged as each owner shard's committer reports in (in
/// any order), plus the bookkeeping compensation needs.
struct Combine {
    slots: Vec<Option<BatchItem>>,
    ids: Vec<Option<AnnotationId>>,
    /// Which shards acked each item (candidates for compensation).
    ok_shards: Vec<Vec<usize>>,
    /// Which shard produced each slot's standing `Ok` (so the winning
    /// message is the lowest shard's, independent of arrival order —
    /// same answer the old sequential collection produced).
    ok_from: Vec<Option<usize>>,
    remaining: usize,
    done: Option<CommitReply>,
}

/// Folds one owner shard's per-item results into the combine slots.
/// Multi-owner rule: any shard's failure wins; among successes the
/// lowest shard's message stands.
fn merge_shard_results(
    slots: &mut [Option<BatchItem>],
    ok_shards: &mut [Vec<usize>],
    ok_from: &mut [Option<usize>],
    k: usize,
    indices: &[usize],
    items: Vec<BatchItem>,
) {
    for (&i, item) in indices.iter().zip(items) {
        let Some(slot) = slots.get_mut(i) else {
            continue;
        };
        if matches!(item, BatchItem::Ok(_)) {
            if let Some(oks) = ok_shards.get_mut(i) {
                oks.push(k);
            }
        }
        let standing_ok_from = ok_from.get(i).copied().flatten();
        let replace = match (&slot, &item) {
            (Some(BatchItem::Err(_)), _) => false,
            (Some(BatchItem::Ok(_)), BatchItem::Err(_)) => true,
            (Some(BatchItem::Ok(_)), BatchItem::Ok(_)) => standing_ok_from.is_none_or(|w| k < w),
            (None, _) => true,
        };
        if replace {
            if let Some(w) = ok_from.get_mut(i) {
                *w = matches!(item, BatchItem::Ok(_)).then_some(k);
            }
            *slot = Some(item);
        }
    }
}

/// A multi-owner item that committed (and fsynced) on some owners but
/// failed — or lost its group fsync — on another is repaired before
/// the error goes out: the successful owners' replicas are deleted so
/// the acked failure converges to "not written".
fn compensate_failures(
    db: &ShardedDatabase,
    slots: &[Option<BatchItem>],
    ids: &[Option<AnnotationId>],
    ok_shards: &[Vec<usize>],
) {
    for ((slot, id), oks) in slots.iter().zip(ids).zip(ok_shards) {
        if matches!(slot, Some(BatchItem::Err(_))) && !oks.is_empty() {
            if let Some(id) = id {
                db.compensate_partial(*id, oks);
            }
        }
    }
}

fn finalize_slots(slots: Vec<Option<BatchItem>>) -> Vec<BatchItem> {
    slots
        .into_iter()
        .map(|s| {
            s.unwrap_or_else(|| {
                BatchItem::Err(WireError::from(&Error::Execution(
                    "batch slot missing a committer result".into(),
                )))
            })
        })
        .collect()
}

/// Turns away a connection over the limit with a structured error frame,
/// written under the same [`ServerConfig::request_timeout`] every other
/// response honors.
/// Best-effort refusal for an over-limit connection. Runs on the
/// accept thread, so it must never block: the socket goes nonblocking
/// and gets exactly one `write` attempt — a peer whose buffers are
/// already full simply sees the close.
fn refuse(stream: &TcpStream, config: &ServerConfig) {
    let _ = stream.set_nonblocking(true);
    let frame = wire::frame_bytes(&Response::Error(WireError::from(&Error::Execution(
        format!(
            "connection limit ({}) reached; try again later",
            config.max_connections
        ),
    ))));
    let _ = (&*stream).write(&frame);
}

// -- replication feed -----------------------------------------------------

/// Idle poll ticks between replication heartbeats (empty `WalFrame`s
/// that both prove liveness and detect a dead subscriber).
const HEARTBEAT_TICKS: u32 = 20;

/// A feeder thread's handle to its subscriber connection on the
/// reactor. Frames are queued through the worker's message channel; the
/// sink paces itself against the connection's shared write gauge so a
/// slow subscriber throttles its feeder instead of ballooning the
/// worker's buffers.
struct FeedSink {
    reply: reactor::ReplyTo,
    shared: Arc<reactor::ConnShared>,
}

impl FeedSink {
    /// Queues one frame, waiting out write backpressure. `Err` means
    /// the subscriber (or its worker) is gone and the feed should end.
    fn send(&self, resp: &Response) -> Result<()> {
        loop {
            if self.shared.closed.load(Ordering::Acquire) {
                return Err(Error::Execution("subscriber disconnected".into()));
            }
            if self.shared.pending_write_bytes.load(Ordering::Acquire) < reactor::HIGH_WATERMARK {
                if self.reply.stream_frame(resp) {
                    return Ok(());
                }
                return Err(Error::Execution("subscriber worker exited".into()));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Serves one replication subscription until the stream breaks or the
/// server shuts down. Failures that are the subscriber's fault (bad
/// shard index, subscribing to a replica, WAL disabled) go out as a
/// structured error frame; delivery failures just end the feed — the
/// subscriber reconnects and resubscribes.
fn run_feed(
    sink: &FeedSink,
    db: &ShardedDatabase,
    state: &ServerState,
    shard: u32,
    epoch: u64,
    offset: u64,
) {
    if let Err(e) = try_run_feed(sink, db, state, shard, epoch, offset) {
        let _ = sink.send(&Response::Error(WireError::from(&e)));
    }
    sink.reply.end_stream();
}

fn try_run_feed(
    sink: &FeedSink,
    db: &ShardedDatabase,
    state: &ServerState,
    shard: u32,
    sub_epoch: u64,
    sub_offset: u64,
) -> Result<()> {
    if let Some(replica) = &state.config.replica {
        return Err(Error::Execution(format!(
            "this server is a replica; subscribe to the primary at {}",
            replica.primary
        )));
    }
    let shard_idx = usize::try_from(shard).unwrap_or(usize::MAX);
    if shard_idx >= db.shard_count() {
        return Err(Error::Execution(format!(
            "no shard {shard} on this primary ({} shard(s))",
            db.shard_count()
        )));
    }
    let handle = db.shard(shard_idx);
    let mut sub = (sub_epoch, sub_offset);
    'plan: loop {
        if state.shutting_down() {
            return Ok(());
        }
        // Decide how this subscriber joins: resume at its own position,
        // or snapshot-bootstrap it (also the path after an epoch
        // rotation mid-stream — the subscriber sees a fresh
        // SubscribeAck and discards its local shard state).
        let (epoch, mut cursor) = match feed::plan_feed(handle, sub.0, sub.1)? {
            FeedStart::Resume { epoch, offset } => {
                sink.send(&Response::SubscribeAck {
                    epoch,
                    offset,
                    snapshot: false,
                })?;
                (epoch, offset)
            }
            FeedStart::Bootstrap {
                epoch,
                offset,
                snapshot,
            } => {
                sink.send(&Response::SubscribeAck {
                    epoch,
                    offset,
                    snapshot: true,
                })?;
                let total = snapshot.len();
                let mut sent = 0usize;
                loop {
                    let end = (sent + feed::SNAPSHOT_CHUNK_BYTES).min(total);
                    let Some(chunk) = snapshot.get(sent..end) else {
                        break;
                    };
                    sink.send(&Response::SnapshotChunk {
                        data: chunk.to_vec(),
                        last: end == total,
                    })?;
                    sent = end;
                    if sent >= total {
                        break;
                    }
                }
                (epoch, offset)
            }
        };
        let mut idle = 0u32;
        loop {
            if state.shutting_down() {
                return Ok(());
            }
            // Snapshot the commit signal *before* reading the watermark:
            // a commit that lands between the read and the wait below
            // moves the sequence past `seen`, so the wait returns
            // immediately instead of losing the wakeup.
            let seen = state.commit_seq(shard_idx);
            match feed::read_committed(handle, epoch, cursor)? {
                // The shard's log left this epoch (checkpoint rotation):
                // re-plan, which bootstraps the subscriber afresh.
                None => {
                    sub = (epoch, cursor);
                    continue 'plan;
                }
                Some((_, data)) if data.is_empty() => {
                    state.wait_commit_past(shard_idx, seen, state.config.poll_interval);
                    idle += 1;
                    if idle >= HEARTBEAT_TICKS {
                        idle = 0;
                        sink.send(&Response::WalFrame {
                            epoch,
                            offset: cursor,
                            data: Vec::new(),
                        })?;
                    }
                }
                Some((end, data)) => {
                    idle = 0;
                    sink.send(&Response::WalFrame {
                        epoch,
                        offset: cursor,
                        data,
                    })?;
                    cursor = end;
                }
            }
        }
    }
}

/// Rejects a write-class request when this server is a replica.
fn reject_if_replica(state: &ServerState) -> Result<()> {
    if let Some(replica) = &state.config.replica {
        return Err(Error::ReadOnlyReplica(format!(
            "writes must go to the primary at {}",
            replica.primary
        )));
    }
    Ok(())
}

// -- request dispatch -----------------------------------------------------

/// A dedicated thread for `Execute` requests that write: they hold
/// shard write locks and fsync inline, which must never happen on a
/// reactor worker. One thread (not a pool) so two pipelined `Execute`s
/// from the same connection apply in submission order — the property
/// the serial-replay determinism test depends on.
/// A queued unit of work for the lane thread.
type ExecuteJob = Box<dyn FnOnce() + Send>;

struct ExecuteLane {
    tx: Mutex<Option<mpsc::Sender<ExecuteJob>>>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ExecuteLane {
    fn start() -> Self {
        let (tx, rx) = mpsc::channel::<ExecuteJob>();
        let thread = std::thread::Builder::new()
            .name("execute-lane".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    job();
                }
            })
            .ok();
        Self {
            tx: Mutex::new(thread.is_some().then_some(tx)).with_class(lock_class::REACTOR),
            thread: Mutex::new(thread).with_class(lock_class::REACTOR),
        }
    }

    /// Queues a job; false if the lane never started or already joined
    /// (the caller answers with an error instead).
    fn spawn(&self, job: ExecuteJob) -> bool {
        match &*self.tx.lock() {
            Some(tx) => tx.send(job).is_ok(),
            None => false,
        }
    }

    /// Disconnects the lane and waits for queued jobs to finish.
    fn join(&self) {
        self.tx.lock().take();
        // Bind the handle first: an `if let` scrutinee temporary would
        // keep the `thread` mutex locked across the join.
        let t = self.thread.lock().take();
        if let Some(t) = t {
            let _ = t.join();
        }
    }
}

/// Everything [`reactor::Ops::handle`] needs to dispatch a request:
/// the engine, shared server state, the per-shard commit queues, the
/// `Execute` write lane, and the replication feeder threads spawned for
/// `Subscribe` connections.
struct SessionCtx {
    db: Arc<ShardedDatabase>,
    state: Arc<ServerState>,
    queues: CommitQueues,
    execute_lane: ExecuteLane,
    feeders: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SessionCtx {
    /// Joins every replication feeder (they notice shutdown through the
    /// server state and the closed connection flags).
    fn join_feeders(&self) {
        let handles: Vec<_> = self.feeders.lock().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn error_response(e: &Error) -> Response {
    Response::Error(WireError::from(e))
}

fn respond_result(r: Result<Response>) -> reactor::Action {
    reactor::Action::Respond(r.unwrap_or_else(|e| error_response(&e)))
}

impl reactor::Ops for SessionCtx {
    fn handle(
        &self,
        reply: &reactor::ReplyTo,
        shared: &Arc<reactor::ConnShared>,
        req: Request,
    ) -> reactor::Action {
        use reactor::Action;
        // Ingest admission control runs before the request counts as
        // served: a parked (Busy) request is retried later, and must
        // not be counted twice. Replica-mode rejection stays *after*
        // the gate so the error path is identical either way.
        if matches!(
            req,
            Request::Annotate { .. } | Request::AnnotateBatch { .. }
        ) && reject_if_replica(&self.state).is_ok()
            && !self.queues.all_ready()
        {
            return Action::Busy(req);
        }
        self.state.served.fetch_add(1, Ordering::Relaxed);
        match req {
            Request::Ping => Action::Respond(Response::Pong {
                version: wire::WIRE_VERSION,
                served: self.state.served.load(Ordering::Relaxed),
            }),
            Request::Shutdown => {
                self.state.begin_shutdown();
                Action::RespondAndClose(Response::ShuttingDown)
            }
            Request::Query { sql } => respond_result(query_response(&self.db, &sql)),
            Request::ZoomIn { sql } => respond_result(zoom_response(&self.db, &sql)),
            Request::ReplicaState => respond_result(replica_state_response(&self.db, &self.state)),
            // Read-only: replicas answer from locally applied state.
            Request::History { annotation } => {
                respond_result(history_response(&self.db, annotation))
            }
            Request::Annotate { sql } => {
                if let Err(e) = reject_if_replica(&self.state) {
                    return Action::Respond(error_response(&e));
                }
                let stmt = match annotate_statement(&sql, "Annotate") {
                    Ok(stmt) => stmt,
                    Err(e) => return Action::Respond(error_response(&e)),
                };
                let reply = reply.clone();
                submit_annotations_async(
                    &self.db,
                    &self.queues,
                    vec![stmt],
                    Box::new(move |mut items| {
                        let resp = match items.pop() {
                            Some(BatchItem::Ok(message)) => Response::Ack {
                                messages: vec![message],
                            },
                            Some(BatchItem::Err(e)) => Response::Error(e),
                            None => error_response(&Error::Execution(
                                "committer returned no result".into(),
                            )),
                        };
                        reply.respond(&resp);
                    }),
                );
                Action::Pending
            }
            Request::AnnotateBatch { statements } => {
                if let Err(e) = reject_if_replica(&self.state) {
                    return Action::Respond(error_response(&e));
                }
                // Each item parses independently; the ones that don't
                // become per-item errors while the rest still
                // group-commit.
                let mut slots: Vec<Option<BatchItem>> = Vec::new();
                slots.resize_with(statements.len(), || None);
                let mut stmts = Vec::new();
                let mut indices = Vec::new();
                for (i, sql) in statements.iter().enumerate() {
                    match annotate_statement(sql, "AnnotateBatch") {
                        Ok(stmt) => {
                            indices.push(i);
                            stmts.push(stmt);
                        }
                        Err(e) => {
                            if let Some(slot) = slots.get_mut(i) {
                                *slot = Some(BatchItem::Err(WireError::from(&e)));
                            }
                        }
                    }
                }
                if stmts.is_empty() {
                    return Action::Respond(Response::BatchAck {
                        results: finalize_slots(slots),
                    });
                }
                let reply = reply.clone();
                submit_annotations_async(
                    &self.db,
                    &self.queues,
                    stmts,
                    Box::new(move |committed| {
                        for (i, item) in indices.into_iter().zip(committed) {
                            if let Some(slot) = slots.get_mut(i) {
                                *slot = Some(item);
                            }
                        }
                        reply.respond(&Response::BatchAck {
                            results: finalize_slots(slots),
                        });
                    }),
                );
                Action::Pending
            }
            Request::Execute { sql } => {
                let stmts = match parse(&sql) {
                    Ok(stmts) if stmts.is_empty() => {
                        return Action::Respond(error_response(&Error::Parse(
                            "empty statement".into(),
                        )))
                    }
                    Ok(stmts) => stmts,
                    Err(e) => return Action::Respond(error_response(&e)),
                };
                if stmts.iter().all(|s| s.class() == StatementClass::Read) {
                    // Pure reads run inline on the worker: shard read
                    // locks only, no fsync, nothing blocking.
                    return respond_result(execute_reads(&self.db, stmts));
                }
                if let Err(e) = reject_if_replica(&self.state) {
                    return Action::Respond(error_response(&e));
                }
                let db = Arc::clone(&self.db);
                let reply = reply.clone();
                let spawned = self.execute_lane.spawn(Box::new(move || {
                    let resp =
                        execute_write_script(&db, &sql).unwrap_or_else(|e| error_response(&e));
                    reply.respond(&resp);
                }));
                if spawned {
                    Action::Pending
                } else {
                    Action::Respond(error_response(&Error::Execution(
                        "execute lane unavailable (server shutting down)".into(),
                    )))
                }
            }
            Request::Subscribe {
                shard,
                epoch,
                offset,
            } => {
                // The connection becomes a one-way replication stream; a
                // dedicated feeder thread paces itself against the
                // subscriber's write gauge. Subscriber-fault errors
                // (bad shard, replica primary, no WAL) surface as an
                // error frame on the stream before it ends.
                let sink = FeedSink {
                    reply: reply.clone(),
                    shared: Arc::clone(shared),
                };
                let db = Arc::clone(&self.db);
                let state = Arc::clone(&self.state);
                let spawn = std::thread::Builder::new()
                    .name(format!("replica-feed-{shard}"))
                    .spawn(move || run_feed(&sink, &db, &state, shard, epoch, offset));
                match spawn {
                    Ok(handle) => {
                        let mut feeders = self.feeders.lock();
                        feeders.retain(|h| !h.is_finished());
                        feeders.push(handle);
                        Action::Stream
                    }
                    Err(e) => Action::Respond(error_response(&Error::Io(e))),
                }
            }
        }
    }

    fn shutting_down(&self) -> bool {
        self.state.shutting_down()
    }

    fn request_timeout(&self) -> Duration {
        self.state.config.request_timeout
    }

    fn poll_interval(&self) -> Duration {
        self.state.config.poll_interval
    }

    fn on_conn_gone(&self) {
        self.state.active.fetch_sub(1, Ordering::Relaxed);
    }
}

// -- read-path helpers ----------------------------------------------------

fn query_response(db: &ShardedDatabase, sql: &str) -> Result<Response> {
    let stmt = expect_single(sql, "Query")?;
    if !matches!(stmt, Statement::Select(_)) {
        return Err(Error::Execution(
            "Query frames carry exactly one SELECT; use Execute for other statements".into(),
        ));
    }
    match db.execute_read(stmt)? {
        ExecOutcome::Query(q) => {
            // Summary-instance names are replicated; shard 0's
            // registry renders them for the wire.
            let shard0 = db.shard(0).read();
            Ok(Response::Rows(rows_payload(&shard0, &q)))
        }
        _ => Err(Error::Execution(
            "SELECT produced a non-query outcome; engine/server protocol mismatch".into(),
        )),
    }
}

fn zoom_response(db: &ShardedDatabase, sql: &str) -> Result<Response> {
    let stmt = expect_single(sql, "ZoomIn")?;
    if !matches!(stmt, Statement::ZoomIn(_)) {
        return Err(Error::Execution(
            "ZoomIn frames carry exactly one ZOOMIN statement".into(),
        ));
    }
    match db.execute_read(stmt)? {
        ExecOutcome::ZoomIn(z) => Ok(Response::Zoomed(zoom_payload(z))),
        _ => Err(Error::Execution(
            "ZOOMIN produced a non-zoom-in outcome; engine/server protocol mismatch".into(),
        )),
    }
}

/// Runs an all-read `Execute` script inline (shard read locks only).
fn execute_reads(db: &ShardedDatabase, stmts: Vec<Statement>) -> Result<Response> {
    let messages = stmts
        .into_iter()
        .map(|s| Ok(db.execute_read(s)?.to_string()))
        .collect::<Result<Vec<_>>>()?;
    Ok(Response::Ack { messages })
}

/// Runs a write-bearing `Execute` script on the execute lane. The
/// script's source text goes through `execute_sql` so the WAL (when
/// attached) records it before execution — on every shard it touches;
/// the sync below is the per-request commit point, after which the
/// ack's durability promise holds.
fn execute_write_script(db: &ShardedDatabase, sql: &str) -> Result<Response> {
    let outcomes = db.execute_sql(sql)?;
    db.wal_sync_all()?;
    Ok(Response::Ack {
        messages: outcomes
            .iter()
            .map(std::string::ToString::to_string)
            .collect(),
    })
}

fn history_response(db: &ShardedDatabase, annotation: u64) -> Result<Response> {
    match db.execute_read(Statement::HistoryAnnotation { id: annotation })? {
        ExecOutcome::History { annotation, events } => Ok(Response::History(HistoryPayload {
            annotation: annotation.raw(),
            events: events
                .into_iter()
                .map(|e| WireLifecycleEvent {
                    kind: match e.kind {
                        LifecycleKind::Created => WireLifecycleKind::Created,
                        LifecycleKind::Flagged => WireLifecycleKind::Flagged,
                        LifecycleKind::Retracted => WireLifecycleKind::Retracted,
                        LifecycleKind::Corrected => WireLifecycleKind::Corrected,
                    },
                    at: e.at,
                    note: e.note,
                    successor: e.successor.map(insightnotes_common::AnnotationId::raw),
                })
                .collect(),
        })),
        _ => Err(Error::Execution(
            "HISTORY produced a non-history outcome; engine/server protocol mismatch".into(),
        )),
    }
}

fn replica_state_response(db: &ShardedDatabase, state: &ServerState) -> Result<Response> {
    if let Some(replica) = &state.config.replica {
        return Ok(Response::ReplicaState {
            shards: replica.positions.snapshot(),
        });
    }
    let mut shards = Vec::with_capacity(db.shard_count());
    for k in 0..db.shard_count() {
        let (epoch, offset) = db.shard(k).read().wal_committed().ok_or_else(|| {
            Error::Execution("replication state requires a write-ahead log (--wal-dir)".into())
        })?;
        shards.push(ShardPosition { epoch, offset });
    }
    Ok(Response::ReplicaState { shards })
}

fn expect_single(sql: &str, kind: &str) -> Result<Statement> {
    let mut stmts = parse(sql)?;
    if stmts.len() != 1 {
        return Err(Error::Execution(format!(
            "{kind} frames carry exactly one statement, found {}",
            stmts.len()
        )));
    }
    Ok(stmts.remove(0))
}

/// Parses one ingest item: exactly one `ADD ANNOTATION` statement,
/// returned with its source text so the committer can log it.
fn annotate_statement(sql: &str, kind: &str) -> Result<SqlStatement> {
    let stmt = expect_single(sql, kind)?;
    if !matches!(stmt, Statement::AddAnnotation { .. }) {
        return Err(Error::Execution(format!(
            "{kind} items carry exactly one ADD ANNOTATION statement"
        )));
    }
    Ok(SqlStatement {
        sql: sql.to_string(),
        stmt,
    })
}

fn wire_value(v: &Value) -> WireValue {
    match v {
        Value::Null => WireValue::Null,
        Value::Int(i) => WireValue::Int(*i),
        Value::Float(f) => WireValue::Float(*f),
        Value::Text(s) => WireValue::Text(s.clone()),
        Value::Bool(b) => WireValue::Bool(*b),
    }
}

/// Converts an engine result set into its wire representation. Summary
/// objects are shipped in the paper's rendered notation.
fn rows_payload(db: &Database, q: &QueryResult) -> RowsPayload {
    let columns = q
        .schema
        .columns()
        .iter()
        .map(Column::display_name)
        .collect();
    let rows = q
        .rows
        .iter()
        .map(|r| WireRow {
            values: r.row.values().iter().map(wire_value).collect(),
            summaries: r
                .summaries
                .iter()
                .map(|(inst, obj)| {
                    let name = db
                        .registry()
                        .instance(*inst)
                        .map_or_else(|_| inst.to_string(), |i| i.name().to_string());
                    format!("{name} {obj}")
                })
                .collect(),
        })
        .collect();
    RowsPayload {
        qid: q.qid.raw(),
        columns,
        rows,
    }
}

fn zoom_payload(z: ZoomInResult) -> ZoomPayload {
    ZoomPayload {
        annotations: z
            .annotations
            .into_iter()
            .map(|a| WireAnnotation {
                id: a.id.raw(),
                text: a.text,
                document: a.document,
                author: a.author,
            })
            .collect(),
        from_cache: z.from_cache,
        matched_rows: z.matched_rows as u64,
    }
}

// -- signal handling ------------------------------------------------------

static SIGNALED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been observed since
/// [`install_signal_handlers`] ran.
pub fn signal_requested() -> bool {
    SIGNALED.load(Ordering::Relaxed)
}

/// Installs SIGINT/SIGTERM handlers that flip an atomic flag; the accept
/// loop polls it and drains into the graceful-shutdown path (final
/// snapshot included). No-op on non-Unix targets.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALED.store(true, Ordering::Relaxed);
    }
    // std links libc; declaring the two symbols we need avoids an
    // external crate. BSD `signal` semantics (glibc default) are fine —
    // the accept loop never blocks, it polls.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as usize;
    // SAFETY: `signal` is async-signal-safe to install, the handler is a
    // real `extern "C" fn(i32)` whose body only performs an atomic store
    // (itself async-signal-safe), and the `usize` casts round-trip
    // function pointers on every supported Unix ABI.
    unsafe {
        signal(SIGINT, handler);
        signal(SIGTERM, handler);
    }
}

/// No-op fallback for non-Unix targets.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

#[cfg(test)]
mod tests {
    use super::*;

    // The whole session model hinges on the database being shareable
    // across session threads.
    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
        assert_send_sync::<ShardedDatabase>();
        assert_send_sync::<Server>();
    }

    #[test]
    fn classification_picks_the_expected_lock() {
        let read = parse("SELECT name FROM birds").unwrap();
        assert!(read.iter().all(|s| s.class() == StatementClass::Read));
        let write = parse("INSERT INTO birds VALUES (1)").unwrap();
        assert!(write.iter().all(|s| s.class() == StatementClass::Write));
        let mixed = parse("SELECT name FROM birds; DELETE FROM birds").unwrap();
        assert!(!mixed.iter().all(|s| s.class() == StatementClass::Read));
    }

    #[test]
    fn expect_single_rejects_batches() {
        assert!(expect_single("SELECT a FROM t; SELECT b FROM t", "Query").is_err());
        assert!(expect_single("SELECT a FROM t", "Query").is_ok());
    }
}
