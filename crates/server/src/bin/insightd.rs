//! `insightd` — the InsightNotes annotation-engine daemon.
//!
//! ```text
//! insightd [--addr 127.0.0.1:7433] [--snapshot db.indb] [--max-conns 10000]
//!          [--timeout-ms 10000] [--parallelism N] [--shards N]
//!          [--reactor-workers N] [--wal-dir DIR] [--sync always|batch|off]
//!          [--replica-of HOST:PORT --replica-dir DIR]
//! ```
//!
//! Serves the wire protocol (see `insightnotes_common::wire`) over TCP
//! on an epoll reactor: `--reactor-workers` event-loop threads (default
//! one per core) each multiplex thousands of nonblocking connections,
//! and pipelined (protocol v2) clients keep many requests in flight per
//! connection. At startup the soft `RLIMIT_NOFILE` is raised to the
//! hard limit so `--max-conns` (default 10 000) is reachable without an
//! external `ulimit` dance. With `--snapshot`, an existing file is
//! loaded at startup and a fresh snapshot is written on graceful shutdown
//! (SIGINT/SIGTERM or a client `.shutdown`). With `--wal-dir`, every
//! write is appended to a write-ahead log before it executes and acks
//! are released only after the log is durable (`--sync` picks the fsync
//! policy, default `batch` = one fsync per group-committed batch);
//! startup then runs full crash recovery — snapshot plus WAL-tail
//! replay — so a `kill -9` loses no acknowledged write. `--shards N`
//! partitions the engine into N hash-routed shards (default: the
//! machine's available cores), each with its own lock, WAL segment
//! under `<wal-dir>/shard-<k>/`, snapshot file (`<snapshot>.shard<k>`),
//! and committer thread; recovery then runs per shard and reports each
//! shard's epoch and replay count on stderr. `--addr` with port 0 picks
//! an ephemeral port; the bound address is printed on the first stdout
//! line (`insightd listening on HOST:PORT`) so scripts can scrape it.
//!
//! `--replica-of HOST:PORT` starts a **read replica** instead: local
//! state recovers from `--replica-dir` (snapshot-bootstrapped from the
//! primary when cold or inconsistent), per-shard tailer threads follow
//! the primary's committed WAL stream, reads serve locally, and writes
//! are rejected with a structured `read_only_replica` error naming the
//! primary. The replica inherits the primary's shard count; `--shards`,
//! `--wal-dir`, `--sync`, and `--snapshot` are primary-only flags and
//! conflict with replica mode.

use insightnotes_engine::{DbConfig, ShardedDatabase, SyncPolicy};
use insightnotes_replication::replica::{ReplicaConfig, Replicator};
use insightnotes_server::{install_signal_handlers, ReplicaServing, Server, ServerConfig};
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    match run() {
        Ok(served) => eprintln!("insightd: clean shutdown after {served} request(s)"),
        Err(e) => {
            eprintln!("insightd: {e}");
            std::process::exit(1);
        }
    }
}

fn run() -> insightnotes_common::Result<u64> {
    let opts = parse_args()?;
    // Raise the soft fd limit before anything opens sockets; report the
    // ceiling when it still undercuts the configured connection limit.
    let fd_limit = insightnotes_server::reactor::raise_fd_limit();
    if (fd_limit as usize) < opts.max_conns.saturating_add(64) {
        eprintln!(
            "insightd: warning: fd limit {fd_limit} may undercut --max-conns {}",
            opts.max_conns
        );
    }
    if let Some(primary) = opts.replica_of.clone() {
        return run_replica(&opts, primary);
    }

    let db_config = DbConfig {
        parallelism: opts.parallelism,
        wal_dir: opts.wal_dir.clone(),
        wal_sync: opts.sync,
        ..DbConfig::default()
    };
    // Recovery handles every startup shape uniformly: fresh database,
    // snapshot only, snapshot + WAL tail, torn tails, stale temp files —
    // per shard, cross-checked against the shard manifest at N > 1.
    let (db, report) = ShardedDatabase::recover(opts.snapshot.as_deref(), db_config, opts.shards)?;
    if db.is_sharded() {
        if report.did_work() || opts.wal_dir.is_some() {
            for (k, s) in report.shards.iter().enumerate() {
                eprintln!(
                    "insightd: recovery: shard {k}: epoch {}; {}",
                    s.epoch, s.report
                );
            }
            let tables = db.shard(0).read().catalog().table_names().len();
            eprintln!(
                "insightd: recovery: {} record(s) replayed across {} shard(s) \
                 ({tables} tables, {} annotations)",
                report.records_replayed(),
                db.shard_count(),
                db.annotation_count()
            );
        }
    } else if let Some(single) = report.shards.first() {
        // Single shard: byte-identical to the unsharded daemon's report.
        if single.report.snapshot_loaded
            || single.report.records_replayed > 0
            || opts.wal_dir.is_some()
        {
            let guard = db.shard(0).read();
            eprintln!(
                "insightd: recovery: {} ({} tables, {} annotations)",
                single.report,
                guard.catalog().table_names().len(),
                guard.store().stats().count
            );
        }
    }

    let config = ServerConfig {
        max_connections: opts.max_conns,
        request_timeout: Duration::from_millis(opts.timeout_ms),
        snapshot_path: opts.snapshot.clone(),
        reactor_workers: opts.reactor_workers,
        ..ServerConfig::default()
    };
    let server = Server::bind_sharded(opts.addr.as_str(), db, config)?;
    install_signal_handlers();

    // Scripts parse this exact line to discover ephemeral ports.
    println!("insightd listening on {}", server.local_addr()?);
    use std::io::Write;
    std::io::stdout().flush().ok();

    let served = server.run()?;
    if let Some(path) = &opts.snapshot {
        eprintln!("insightd: snapshot written to {}", path.display());
    }
    Ok(served)
}

/// Replica mode: recover/bootstrap local state, start the tailers, and
/// serve reads until shutdown.
fn run_replica(opts: &Opts, primary: String) -> insightnotes_common::Result<u64> {
    let bad = |m: &str| insightnotes_common::Error::Execution(m.into());
    let Some(dir) = opts.replica_dir.clone() else {
        return Err(bad("--replica-of needs --replica-dir for local state"));
    };
    if opts.wal_dir.is_some() || opts.snapshot.is_some() || opts.shards_set {
        return Err(bad(
            "--wal-dir/--snapshot/--shards are primary-only flags; a replica \
             mirrors the primary's layout into --replica-dir",
        ));
    }
    let boot = Replicator::start(&ReplicaConfig::new(primary.clone(), dir))?;
    for (k, resumed) in boot.resumed.iter().enumerate() {
        eprintln!(
            "insightd: replica: shard {k}: {}",
            if *resumed {
                "resuming from local state"
            } else {
                "cold, bootstrapping from primary"
            }
        );
    }
    let config = ServerConfig {
        max_connections: opts.max_conns,
        request_timeout: Duration::from_millis(opts.timeout_ms),
        snapshot_path: None,
        replica: Some(ReplicaServing {
            primary,
            positions: boot.replicator.positions(),
        }),
        reactor_workers: opts.reactor_workers,
        ..ServerConfig::default()
    };
    let server = Server::bind_sharded(opts.addr.as_str(), boot.db, config)?;
    install_signal_handlers();
    println!("insightd listening on {}", server.local_addr()?);
    use std::io::Write;
    std::io::stdout().flush().ok();
    let served = server.run()?;
    // Stop tailing only after the listener drained: reads served during
    // shutdown still see the freshest applied state.
    drop(boot.replicator);
    Ok(served)
}

struct Opts {
    addr: String,
    snapshot: Option<PathBuf>,
    max_conns: usize,
    timeout_ms: u64,
    parallelism: Option<usize>,
    shards: usize,
    /// Whether `--shards` was given explicitly (it conflicts with
    /// replica mode, whose shard count comes from the primary).
    shards_set: bool,
    wal_dir: Option<PathBuf>,
    sync: SyncPolicy,
    replica_of: Option<String>,
    replica_dir: Option<PathBuf>,
    /// Reactor event-loop threads; 0 = one per core.
    reactor_workers: usize,
}

fn parse_args() -> insightnotes_common::Result<Opts> {
    let mut opts = Opts {
        addr: "127.0.0.1:7433".into(),
        snapshot: None,
        max_conns: 10_000,
        timeout_ms: 10_000,
        parallelism: None,
        // Shard per core by default; a one-core box gets the legacy
        // single-lock engine and on-disk layout.
        shards: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        shards_set: false,
        wal_dir: None,
        sync: SyncPolicy::Batch,
        replica_of: None,
        replica_dir: None,
        reactor_workers: 0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let bad = |m: String| insightnotes_common::Error::Execution(m);
    while let Some(flag) = args.get(i).map(String::as_str) {
        if flag == "--help" || flag == "-h" {
            println!(
                "usage: insightd [--addr HOST:PORT] [--snapshot FILE] \
                 [--max-conns N] [--timeout-ms N] [--parallelism N] \
                 [--shards N] [--reactor-workers N] [--wal-dir DIR] \
                 [--sync always|batch|off] \
                 [--replica-of HOST:PORT --replica-dir DIR]"
            );
            std::process::exit(0);
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| bad(format!("{flag} needs a value")))?;
        match flag {
            "--addr" => opts.addr = value.clone(),
            "--snapshot" => opts.snapshot = Some(PathBuf::from(value)),
            "--max-conns" => {
                opts.max_conns = value
                    .parse()
                    .map_err(|_| bad(format!("bad count {value}")))?;
            }
            "--timeout-ms" => {
                opts.timeout_ms = value.parse().map_err(|_| bad(format!("bad ms {value}")))?;
            }
            "--parallelism" => {
                opts.parallelism = Some(
                    value
                        .parse()
                        .map_err(|_| bad(format!("bad count {value}")))?,
                );
            }
            "--shards" => {
                opts.shards = value
                    .parse()
                    .map_err(|_| bad(format!("bad count {value}")))?;
                if opts.shards == 0 {
                    return Err(bad("--shards must be at least 1".into()));
                }
                opts.shards_set = true;
            }
            "--reactor-workers" => {
                opts.reactor_workers = value
                    .parse()
                    .map_err(|_| bad(format!("bad count {value}")))?;
            }
            "--wal-dir" => opts.wal_dir = Some(PathBuf::from(value)),
            "--sync" => opts.sync = SyncPolicy::parse(value)?,
            "--replica-of" => opts.replica_of = Some(value.clone()),
            "--replica-dir" => opts.replica_dir = Some(PathBuf::from(value)),
            other => return Err(bad(format!("unknown flag {other}"))),
        }
        i += 2;
    }
    Ok(opts)
}
