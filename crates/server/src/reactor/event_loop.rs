//! The reactor worker: one thread, one epoll set, many connections.
//!
//! Each worker owns a set of [`Conn`] state machines and runs a
//! readiness loop: wait for events, drain cross-thread messages
//! (accepted sockets, responses produced off-loop by committers and
//! feeders), service readable/writable connections, retry requests
//! parked on commit-queue backpressure, and fire deadline evictions.
//!
//! **No blocking calls inside the loop** except [`Epoll::wait_ready`]
//! itself — the lock-across-io lint's reactor rule enforces this
//! textually, and the design enforces it structurally: anything that
//! might wait (fsync, replica feed pacing, write-heavy SQL) happens on
//! other threads and re-enters the loop through the [`Msg`] channel plus
//! an eventfd nudge. Dispatch is panic-free (the panic-path lint covers
//! this module): a malformed frame becomes an error *response*, never a
//! torn-down worker.

use super::conn::{Conn, ConnShared, Extracted, ReadOutcome, HIGH_WATERMARK, LOW_WATERMARK};
use super::epoll::{
    Epoll, EpollEvent, Interest, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use super::timer::TimerWheel;
use insightnotes_common::wire;
use insightnotes_common::Error;
use std::collections::HashMap;
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Epoll token reserved for the worker's wakeup eventfd.
pub(crate) const WAKE_TOKEN: u64 = u64::MAX;

/// How often the loop retries parked (commit-queue-saturated) requests.
const PARK_RETRY: Duration = Duration::from_millis(5);

/// Cross-thread mail for a worker. Senders must nudge the worker's
/// [`WakeFd`] after sending or the message sits until the next natural
/// wakeup.
pub(crate) enum Msg {
    /// A freshly accepted connection for this worker to own.
    Accept(TcpStream),
    /// Encoded frame bytes to queue on `conn`'s write side.
    Frames {
        /// Target connection token.
        conn: u64,
        /// Fully framed wire bytes.
        bytes: Vec<u8>,
        /// Whether this frame completes an in-flight request (true for
        /// committer/blocking-pool responses, false for replication
        /// stream frames).
        completes: bool,
    },
    /// A streaming feeder finished (or aborted): flush what is queued,
    /// then close `conn`.
    EndStream {
        /// Target connection token.
        conn: u64,
    },
}

/// Where a response should go: a connection on some worker, addressed
/// from any thread. Committer callbacks and feeder threads hold one of
/// these per pending request.
#[derive(Clone)]
pub(crate) struct ReplyTo {
    /// Connection token on the owning worker.
    pub conn: u64,
    /// The request's sequence id (`None` for serial v1 frames); every
    /// response — and every streaming frame — echoes it.
    pub seq: Option<u64>,
    tx: mpsc::Sender<Msg>,
    wake: Arc<WakeFd>,
}

impl ReplyTo {
    /// Sends the final response for an in-flight request.
    pub(crate) fn respond(&self, resp: &wire::Response) {
        self.post(encode_response(self.seq, resp), true);
    }

    /// Sends one streaming (replication feed) frame; returns false once
    /// the worker is gone and the feeder should stop.
    pub(crate) fn stream_frame(&self, resp: &wire::Response) -> bool {
        self.post(encode_response(self.seq, resp), false)
    }

    /// Tells the worker the stream is over: flush, then close.
    pub(crate) fn end_stream(&self) {
        if self.tx.send(Msg::EndStream { conn: self.conn }).is_ok() {
            self.wake.wake();
        }
    }

    fn post(&self, bytes: Vec<u8>, completes: bool) -> bool {
        let sent = self
            .tx
            .send(Msg::Frames {
                conn: self.conn,
                bytes,
                completes,
            })
            .is_ok();
        if sent {
            self.wake.wake();
        }
        sent
    }
}

/// Encodes a response in the protocol version the request arrived in:
/// v2 (seq echoed) when the request carried a sequence id, serial v1
/// otherwise.
pub(crate) fn encode_response(seq: Option<u64>, resp: &wire::Response) -> Vec<u8> {
    match seq {
        Some(s) => wire::frame_bytes_seq(s, resp),
        None => wire::frame_bytes(resp),
    }
}

/// What the request handler decided; the worker applies it to the
/// connection's state machine.
pub(crate) enum Action {
    /// The response is ready now; queue it.
    Respond(wire::Response),
    /// The request went to a committer / blocking pool; a `Msg::Frames
    /// {{ completes: true }}` will arrive later via the handler's
    /// [`ReplyTo`].
    Pending,
    /// Queue the response, then close once flushed (Shutdown ack).
    RespondAndClose(wire::Response),
    /// The connection became a replication stream: stop reading
    /// requests, frames arrive from a feeder thread.
    Stream,
    /// The commit queues are saturated; park the request and retry it
    /// shortly, preserving per-connection submission order.
    Busy(wire::Request),
}

/// The server side of the reactor boundary, implemented by session
/// dispatch in `lib.rs`. `handle` runs **on the worker thread** and must
/// not block: reads execute inline (engine work), writes enqueue and
/// return [`Action::Pending`].
pub(crate) trait Ops: Send + Sync + 'static {
    /// Dispatches one decoded request.
    fn handle(&self, reply: &ReplyTo, shared: &Arc<ConnShared>, req: wire::Request) -> Action;
    /// Whether shutdown has begun (workers then drain and exit).
    fn shutting_down(&self) -> bool;
    /// Deadline for a connection that owes progress.
    fn request_timeout(&self) -> Duration;
    /// Upper bound on how long a worker sleeps between shutdown checks.
    fn poll_interval(&self) -> Duration;
    /// A connection this worker owned is gone (releases its slot in the
    /// accept limiter).
    fn on_conn_gone(&self);
}

pub(crate) struct Worker {
    epoll: Epoll,
    wake: Arc<WakeFd>,
    rx: mpsc::Receiver<Msg>,
    tx: mpsc::Sender<Msg>,
    ops: Arc<dyn Ops>,
    conns: HashMap<u64, Conn>,
    timers: TimerWheel,
    next_conn: u64,
    /// Total parked requests across connections (fast-path gate for the
    /// retry scan).
    parked_total: usize,
    draining_since: Option<Instant>,
}

impl Worker {
    pub(crate) fn new(
        epoll: Epoll,
        wake: Arc<WakeFd>,
        rx: mpsc::Receiver<Msg>,
        tx: mpsc::Sender<Msg>,
        ops: Arc<dyn Ops>,
    ) -> Self {
        Self {
            epoll,
            wake,
            rx,
            tx,
            ops,
            conns: HashMap::new(),
            timers: TimerWheel::new(Instant::now()),
            next_conn: 0,
            parked_total: 0,
            draining_since: None,
        }
    }

    /// The worker event loop; returns when shutdown has drained every
    /// connection (or the epoll fd itself broke).
    pub(crate) fn run(mut self) {
        let mut events: Vec<EpollEvent> = Vec::with_capacity(1024);
        let mut ready: Vec<(u64, u32)> = Vec::new();
        loop {
            let timeout = self.tick_timeout();
            if self.epoll.wait_ready(&mut events, Some(timeout)).is_err() {
                break;
            }
            let now = Instant::now();
            ready.clear();
            ready.extend(events.iter().map(|e| (e.data, e.events)));
            if ready.iter().any(|&(t, _)| t == WAKE_TOKEN) {
                self.wake.drain();
            }
            self.drain_msgs(now);
            for &(token, bits) in &ready {
                if token != WAKE_TOKEN {
                    self.service(token, bits, now);
                }
            }
            self.retry_parked(now);
            self.fire_timers(now);
            if self.ops.shutting_down() && self.drain_tick(now) {
                break;
            }
        }
        // Dropping the conn map closes every remaining socket.
    }

    fn tick_timeout(&self) -> Duration {
        let mut t = self.ops.poll_interval();
        if let Some(w) = self.timers.next_wake() {
            t = t.min(w);
        }
        if self.parked_total > 0 || self.draining_since.is_some() {
            t = t.min(PARK_RETRY);
        }
        t
    }

    fn drain_msgs(&mut self, now: Instant) {
        loop {
            match self.rx.try_recv() {
                Ok(Msg::Accept(stream)) => self.register_conn(stream),
                Ok(Msg::Frames {
                    conn,
                    bytes,
                    completes,
                }) => {
                    // A late response for a connection that died is
                    // dropped on the floor — the client is gone.
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.queue(bytes);
                        if completes {
                            c.in_flight = c.in_flight.saturating_sub(1);
                        }
                    } else {
                        continue;
                    }
                    self.refresh(conn, now);
                }
                Ok(Msg::EndStream { conn }) => {
                    if let Some(c) = self.conns.get_mut(&conn) {
                        c.close_after_flush = true;
                    }
                    self.refresh(conn, now);
                }
                Err(_) => break,
            }
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        // The accept loop already counted this connection; every early
        // exit must release the slot.
        if self.ops.shutting_down() || stream.set_nonblocking(true).is_err() {
            self.ops.on_conn_gone();
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_conn;
        self.next_conn = self.next_conn.wrapping_add(1);
        if self.next_conn == WAKE_TOKEN {
            self.next_conn = 0;
        }
        let fd = stream.as_raw_fd();
        let conn = Conn::new(stream);
        let interest = Interest {
            read: true,
            write: false,
            rdhup: true,
        };
        if self.epoll.add(fd, token, interest).is_err() {
            self.ops.on_conn_gone();
            return;
        }
        self.conns.insert(token, conn);
    }

    fn service(&mut self, token: u64, bits: u32, now: Instant) {
        if !self.conns.contains_key(&token) {
            return;
        }
        if bits & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(token);
            return;
        }
        if bits & EPOLLOUT != 0 {
            let broken = self
                .conns
                .get_mut(&token)
                .is_some_and(|c| c.flush().is_err());
            if broken {
                self.close_conn(token);
                return;
            }
        }
        if bits & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.service_read(token);
        }
        self.refresh(token, now);
    }

    fn service_read(&mut self, token: u64) {
        let outcome = {
            let Some(c) = self.conns.get_mut(&token) else {
                return;
            };
            // Backpressure: when the loop doesn't want more requests the
            // bytes stay in the kernel buffer (and EPOLLIN is masked off
            // by the next refresh).
            if self.draining_since.is_some() || c.peer_eof || !c.wants_read() {
                return;
            }
            c.fill()
        };
        match outcome {
            ReadOutcome::Broken => {
                self.close_conn(token);
                return;
            }
            ReadOutcome::Eof => {
                if let Some(c) = self.conns.get_mut(&token) {
                    c.peer_eof = true;
                }
            }
            ReadOutcome::Open => {}
        }
        self.extract_and_dispatch(token);
    }

    fn extract_and_dispatch(&mut self, token: u64) {
        loop {
            let extracted = {
                let Some(c) = self.conns.get_mut(&token) else {
                    return;
                };
                if !c.wants_read() {
                    return;
                }
                c.extract()
            };
            match extracted {
                None => return,
                Some(Extracted::Frame(payload)) => self.dispatch_payload(token, payload),
                Some(Extracted::Oversized { declared, header }) => {
                    let seq = wire::peek_seq(&header);
                    let err = Error::Codec(format!(
                        "frame of {declared} bytes exceeds the {}-byte limit",
                        wire::MAX_FRAME_BYTES
                    ));
                    let resp = wire::Response::Error(wire::WireError::from(&err));
                    let bytes = encode_response(seq, &resp);
                    if let Some(c) = self.conns.get_mut(&token) {
                        c.queue(bytes);
                    }
                }
            }
        }
    }

    fn dispatch_payload(&mut self, token: u64, payload: Vec<u8>) {
        let (seq, req) = match wire::decode_frame_any::<wire::Request>(&payload) {
            Ok(decoded) => decoded,
            Err(e) => {
                // Well-delimited but undecodable: answer in kind (echoing
                // the seq if the header was intact) and stay usable.
                let seq = wire::peek_seq(&payload);
                let resp = wire::Response::Error(wire::WireError::from(&e));
                let bytes = encode_response(seq, &resp);
                if let Some(c) = self.conns.get_mut(&token) {
                    c.queue(bytes);
                }
                return;
            }
        };
        let Some(shared) = self.conns.get(&token).map(|c| Arc::clone(&c.shared)) else {
            return;
        };
        let reply = ReplyTo {
            conn: token,
            seq,
            tx: self.tx.clone(),
            wake: Arc::clone(&self.wake),
        };
        let action = self.ops.handle(&reply, &shared, req);
        self.apply_action(token, seq, action);
    }

    fn apply_action(&mut self, token: u64, seq: Option<u64>, action: Action) {
        let Some(c) = self.conns.get_mut(&token) else {
            return;
        };
        match action {
            Action::Respond(resp) => c.queue(encode_response(seq, &resp)),
            Action::Pending => c.in_flight += 1,
            Action::RespondAndClose(resp) => {
                c.queue(encode_response(seq, &resp));
                c.close_after_flush = true;
            }
            Action::Stream => c.streaming = true,
            Action::Busy(req) => {
                c.parked.push_back((seq, req));
                self.parked_total += 1;
            }
        }
    }

    /// Re-offers parked requests to the handler, oldest first per
    /// connection, stopping at the first that is still refused — this
    /// preserves per-connection write submission order.
    fn retry_parked(&mut self, now: Instant) {
        if self.parked_total == 0 {
            return;
        }
        let tokens: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| !c.parked.is_empty())
            .map(|(t, _)| *t)
            .collect();
        for token in tokens {
            while let Some((seq, req)) = self
                .conns
                .get_mut(&token)
                .and_then(|c| c.parked.pop_front())
            {
                self.parked_total = self.parked_total.saturating_sub(1);
                let Some(shared) = self.conns.get(&token).map(|c| Arc::clone(&c.shared)) else {
                    break;
                };
                let reply = ReplyTo {
                    conn: token,
                    seq,
                    tx: self.tx.clone(),
                    wake: Arc::clone(&self.wake),
                };
                match self.ops.handle(&reply, &shared, req) {
                    Action::Busy(req) => {
                        if let Some(c) = self.conns.get_mut(&token) {
                            c.parked.push_front((seq, req));
                            self.parked_total += 1;
                        }
                        break;
                    }
                    other => self.apply_action(token, seq, other),
                }
            }
            // Unparked fully: resume consuming frames buffered behind
            // the parked request.
            if self.conns.get(&token).is_some_and(|c| c.parked.is_empty()) {
                self.extract_and_dispatch(token);
            }
            self.refresh(token, now);
        }
    }

    fn fire_timers(&mut self, now: Instant) {
        if self.timers.next_wake().is_none() {
            return;
        }
        let timeout = self.ops.request_timeout();
        let mut due = Vec::new();
        self.timers.expired(now, &mut due);
        for e in due {
            let mut evict = false;
            if let Some(c) = self.conns.get_mut(&e.conn) {
                if !c.timer_armed || c.generation != e.generation {
                    continue;
                }
                match c.deadline(timeout) {
                    // Progress no longer owed; disarm.
                    None => {
                        c.timer_armed = false;
                        c.generation += 1;
                    }
                    // Really overdue: the peer sat mid-frame or refused
                    // to read its responses for a full timeout. Evict.
                    Some(d) if now >= d => evict = true,
                    // Progress happened since arming (or the deadline was
                    // horizon-clamped); re-arm at the true deadline.
                    Some(d) => self.timers.schedule(now, d, e.conn, e.generation),
                }
            }
            if evict {
                self.close_conn(e.conn);
            }
        }
    }

    /// Recomputes a connection's derived state after any activity:
    /// watermark hysteresis, resumed extraction, opportunistic flush,
    /// close-when-done, epoll interest, deadline arming.
    fn refresh(&mut self, token: u64, now: Instant) {
        let timeout = self.ops.request_timeout();
        let draining = self.draining_since.is_some();
        // Watermark hysteresis first: it gates both extraction resumption
        // and the read-interest computation below.
        if let Some(c) = self.conns.get_mut(&token) {
            if c.write_paused {
                if c.pending_write_bytes() < LOW_WATERMARK {
                    c.write_paused = false;
                }
            } else if c.pending_write_bytes() > HIGH_WATERMARK {
                c.write_paused = true;
            }
        } else {
            return;
        }
        // Frames already sitting in the reassembly buffer get no further
        // EPOLLIN; once the gate (in-flight cap, backpressure) lifts,
        // extraction must resume here.
        if !draining
            && self
                .conns
                .get(&token)
                .is_some_and(|c| c.wants_read() && c.mid_frame())
        {
            self.extract_and_dispatch(token);
        }
        let mut close = false;
        {
            let Some(c) = self.conns.get_mut(&token) else {
                return;
            };
            // Optimistic flush: most responses fit the socket buffer,
            // saving an epoll round-trip per response. The || keeps the
            // flush *before* the close-after-flush recheck — a full
            // flush is what makes the second clause true.
            if (c.has_pending_writes() && c.flush().is_err())
                || (c.close_after_flush && !c.has_pending_writes())
            {
                close = true;
            } else if c.peer_eof && c.quiescent() && !c.mid_frame() && !c.streaming {
                // Clean disconnect with nothing outstanding.
                close = true;
            } else {
                let want = Interest {
                    read: !draining && !c.peer_eof && c.wants_read(),
                    write: c.has_pending_writes(),
                    rdhup: !c.peer_eof,
                };
                if want.read != c.epoll_read
                    || want.write != c.epoll_write
                    || want.rdhup != c.epoll_rdhup
                {
                    if self
                        .epoll
                        .modify(c.stream.as_raw_fd(), token, want)
                        .is_err()
                    {
                        close = true;
                    } else {
                        c.epoll_read = want.read;
                        c.epoll_write = want.write;
                        c.epoll_rdhup = want.rdhup;
                    }
                }
                if !close {
                    match c.deadline(timeout) {
                        Some(d) => {
                            if !c.timer_armed {
                                c.timer_armed = true;
                                self.timers.schedule(now, d, token, c.generation);
                            }
                        }
                        None => {
                            if c.timer_armed {
                                c.timer_armed = false;
                                c.generation += 1;
                            }
                        }
                    }
                }
            }
        }
        if close {
            self.close_conn(token);
        }
    }

    fn close_conn(&mut self, token: u64) {
        let Some(c) = self.conns.remove(&token) else {
            return;
        };
        c.shared
            .closed
            .store(true, std::sync::atomic::Ordering::Relaxed);
        // Zero the gauge so a feeder blocked on backpressure re-checks
        // `closed` instead of spinning on stale bytes.
        c.shared
            .pending_write_bytes
            .store(0, std::sync::atomic::Ordering::Relaxed);
        let _ = self.epoll.delete(c.stream.as_raw_fd());
        self.parked_total = self.parked_total.saturating_sub(c.parked.len());
        self.ops.on_conn_gone();
        // Dropping `c` closes the socket (which also removes any
        // lingering epoll registration).
    }

    /// One shutdown-drain step. Returns true when every connection is
    /// gone: in-flight work was acked, write queues flushed, streams
    /// ended — or the drain deadline (one `request_timeout`) passed and
    /// stragglers were cut.
    fn drain_tick(&mut self, now: Instant) -> bool {
        if self.draining_since.is_none() {
            self.draining_since = Some(now);
            // Stop reading everywhere; parked + in-flight work still
            // completes and acks still flush.
            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            for t in tokens {
                self.refresh(t, now);
            }
        }
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.quiescent() && !c.streaming)
            .map(|(t, _)| *t)
            .collect();
        for t in idle {
            self.close_conn(t);
        }
        // Streaming connections close via their feeder's EndStream
        // (feeders watch the shutdown flag).
        let expired = self
            .draining_since
            .is_some_and(|s| now.saturating_duration_since(s) > self.ops.request_timeout());
        if expired {
            let all: Vec<u64> = self.conns.keys().copied().collect();
            for t in all {
                self.close_conn(t);
            }
        }
        self.conns.is_empty()
    }
}
