//! Readiness-based networking for `insightd`: a hand-rolled epoll
//! reactor replacing thread-per-connection.
//!
//! Layout:
//! - [`epoll`] — the SAFETY-documented syscall shim (epoll, eventfd,
//!   `RLIMIT_NOFILE`). The only `unsafe` in the reactor lives here.
//! - [`conn`] — per-connection state machine: frame reassembly,
//!   oversized-frame recovery, buffered writes with backpressure
//!   accounting, progress-based deadline state.
//! - [`timer`] — coarse hashed wheel enforcing deadlines that
//!   `set_read_timeout`/`set_write_timeout` silently stopped providing
//!   the moment sockets went nonblocking.
//! - [`event_loop`] — the worker: readiness dispatch, pipelined request
//!   handling, parked-request retry, shutdown drain.
//!
//! [`Reactor`] glues it together: N workers (one epoll set + one thread
//! each), round-robin connection placement from the accept loop, and an
//! eventfd per worker so off-loop producers (committers, replica
//! feeders) can hand results back without the loop polling for them.

pub(crate) mod conn;
pub(crate) mod epoll;
pub(crate) mod event_loop;
pub(crate) mod timer;

pub(crate) use conn::{ConnShared, HIGH_WATERMARK};
pub use epoll::raise_fd_limit;
pub(crate) use event_loop::{Action, Ops, ReplyTo};

use epoll::{Epoll, Interest, WakeFd};
use event_loop::{Msg, Worker, WAKE_TOKEN};
use insightnotes_common::{Error, Result};
use std::net::TcpStream;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

struct WorkerSlot {
    tx: mpsc::Sender<Msg>,
    wake: Arc<WakeFd>,
    thread: Option<JoinHandle<()>>,
}

/// A running fleet of reactor workers.
pub(crate) struct Reactor {
    workers: Vec<WorkerSlot>,
    next: usize,
}

impl Reactor {
    /// Spawns `n` worker event loops (at least one) dispatching into
    /// `ops`.
    pub(crate) fn start(n: usize, ops: Arc<dyn Ops>) -> Result<Self> {
        let n = n.max(1);
        let mut workers = Vec::with_capacity(n);
        for i in 0..n {
            let (tx, rx) = mpsc::channel();
            let wake = Arc::new(WakeFd::new()?);
            let epoll = Epoll::new()?;
            epoll.add(
                wake.raw(),
                WAKE_TOKEN,
                Interest {
                    read: true,
                    write: false,
                    rdhup: false,
                },
            )?;
            let worker = Worker::new(epoll, Arc::clone(&wake), rx, tx.clone(), Arc::clone(&ops));
            let thread = std::thread::Builder::new()
                .name(format!("reactor-{i}"))
                .spawn(move || worker.run())
                .map_err(Error::Io)?;
            workers.push(WorkerSlot {
                tx,
                wake,
                thread: Some(thread),
            });
        }
        Ok(Self { workers, next: 0 })
    }

    /// Hands a freshly accepted connection to the next worker
    /// (round-robin). Returns false if the worker is gone — the caller
    /// should release the connection slot.
    pub(crate) fn assign(&mut self, stream: TcpStream) -> bool {
        let len = self.workers.len();
        if len == 0 {
            return false;
        }
        let Some(slot) = self.workers.get(self.next % len) else {
            return false;
        };
        self.next = self.next.wrapping_add(1);
        if slot.tx.send(Msg::Accept(stream)).is_ok() {
            slot.wake.wake();
            true
        } else {
            false
        }
    }

    /// Nudges every worker (used when the shutdown flag flips so they
    /// notice without waiting out a poll interval).
    pub(crate) fn wake_all(&self) {
        for slot in &self.workers {
            slot.wake.wake();
        }
    }

    /// Wakes and joins every worker; each drains its connections first
    /// (bounded by the request timeout).
    pub(crate) fn join(mut self) {
        self.wake_all();
        for slot in &mut self.workers {
            if let Some(t) = slot.thread.take() {
                let _ = t.join();
            }
        }
    }
}
