//! Per-connection state machine: length-prefixed frame reassembly on
//! the read side, a buffered write queue with backpressure accounting
//! on the write side, and the deadline/generation state the timer wheel
//! keys off.
//!
//! The struct is pure bookkeeping over a nonblocking `TcpStream`; it
//! never blocks and never panics (the panic-path lint covers this whole
//! module). Frame *decoding* is the event loop's job — this layer only
//! delimits payloads, including the recovery path for oversized frames:
//! the declared length is consumed and discarded in bounded chunks while
//! the first header bytes are kept so the eventual error response can
//! still echo the request's sequence id.

use insightnotes_common::wire;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Most requests one connection may have in flight (dispatched, response
/// not yet queued) before the loop stops reading from it. Bounds the
/// per-connection memory of a client that floods requests faster than
/// commits drain.
pub(crate) const MAX_IN_FLIGHT: usize = 128;

/// Write-queue high watermark: above this many pending response bytes
/// the loop stops reading the connection (and streaming feeders stop
/// producing) until the peer drains below [`LOW_WATERMARK`].
pub(crate) const HIGH_WATERMARK: usize = 4 << 20;

/// Write-queue low watermark: reads resume below this.
pub(crate) const LOW_WATERMARK: usize = 1 << 20;

/// Bytes read from the socket per readiness service, bounding how long
/// one flooding connection can hold the loop (level-triggered epoll
/// re-reports whatever is left).
const READ_BUDGET: usize = 256 << 10;

const CHUNK: usize = 64 << 10;

/// State shared with off-loop producers (committer callbacks, feeder
/// threads): they check `closed` before producing and use
/// `pending_write_bytes` for backpressure.
#[derive(Debug, Default)]
pub(crate) struct ConnShared {
    /// Set (once) by the event loop when the connection is torn down.
    pub closed: AtomicBool,
    /// Bytes queued for write but not yet accepted by the socket.
    pub pending_write_bytes: AtomicUsize,
}

/// What one service of the read side produced.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ReadOutcome {
    /// More may arrive later; nothing abnormal.
    Open,
    /// The peer closed its write side (clean EOF after any buffered
    /// frames are processed).
    Eof,
    /// The socket errored; tear the connection down.
    Broken,
}

/// One delimited unit extracted from the read buffer.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Extracted {
    /// A complete frame payload (the bytes after the length prefix).
    Frame(Vec<u8>),
    /// An oversized frame was fully consumed and discarded. `header`
    /// holds up to [`wire::V2_HEADER_BYTES`] leading payload bytes so
    /// the error response can echo the frame's seq id.
    Oversized { declared: usize, header: Vec<u8> },
}

/// Oversized-frame discard progress.
#[derive(Debug)]
struct Discard {
    declared: usize,
    remaining: usize,
    header: Vec<u8>,
}

#[derive(Debug)]
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub shared: Arc<ConnShared>,
    /// Reassembly buffer: bytes received but not yet extracted.
    buf: Vec<u8>,
    discard: Option<Discard>,
    write_q: VecDeque<Vec<u8>>,
    /// Bytes of the front write-queue entry already written.
    write_off: usize,
    /// Requests dispatched whose responses have not yet been queued.
    pub in_flight: usize,
    /// Requests parked because the commit queues were saturated; the
    /// loop retries them in arrival order before reading more frames.
    pub parked: VecDeque<(Option<u64>, insightnotes_common::wire::Request)>,
    /// Reads are paused while the write queue is above the high
    /// watermark (cleared once it drains below the low watermark).
    pub write_paused: bool,
    /// The connection switched into replication streaming; no further
    /// requests are read.
    pub streaming: bool,
    /// Close once the write queue is flushed (Shutdown response sent,
    /// or peer EOF with no work outstanding).
    pub close_after_flush: bool,
    /// The peer half-closed; finish in-flight work, flush, then close.
    pub peer_eof: bool,
    /// Mirror of the read interest currently registered in epoll, so the
    /// loop only issues `epoll_ctl` when the desired set changes.
    pub epoll_read: bool,
    /// Mirror of the registered write interest.
    pub epoll_write: bool,
    /// Mirror of the registered peer-half-close (RDHUP) interest.
    pub epoll_rdhup: bool,
    /// Last moment the socket made byte-level progress in either
    /// direction. The enforced deadline is `last_progress + timeout`
    /// whenever the connection owes progress (mid-frame read or
    /// unflushed writes) — a healthy pipelining peer keeps moving it
    /// forward, a slowloris does not.
    pub last_progress: Instant,
    /// Whether a wheel entry is currently armed for this connection.
    pub timer_armed: bool,
    /// Bumped on disarm; stale wheel entries whose generation
    /// mismatches are ignored (lazy cancellation).
    pub generation: u64,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            shared: Arc::new(ConnShared::default()),
            buf: Vec::new(),
            discard: None,
            write_q: VecDeque::new(),
            write_off: 0,
            in_flight: 0,
            parked: VecDeque::new(),
            write_paused: false,
            streaming: false,
            close_after_flush: false,
            peer_eof: false,
            epoll_read: true,
            epoll_write: false,
            epoll_rdhup: true,
            last_progress: Instant::now(),
            timer_armed: false,
            generation: 0,
        }
    }

    /// Reads whatever the socket has (bounded by [`READ_BUDGET`]) into
    /// the reassembly buffer.
    pub(crate) fn fill(&mut self) -> ReadOutcome {
        let mut taken = 0usize;
        let mut scratch = [0u8; CHUNK];
        while taken < READ_BUDGET {
            match self.stream.read(&mut scratch) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => {
                    let Some(got) = scratch.get(..n) else {
                        return ReadOutcome::Broken;
                    };
                    self.buf.extend_from_slice(got);
                    taken += n;
                    self.last_progress = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Broken,
            }
        }
        ReadOutcome::Open
    }

    /// Extracts the next delimited unit from the reassembly buffer, if a
    /// complete one is buffered. Advances oversized-frame discard state
    /// as a side effect.
    pub(crate) fn extract(&mut self) -> Option<Extracted> {
        if let Some(done) = self.advance_discard() {
            return Some(done);
        }
        let len_bytes: [u8; 4] = self.buf.get(..4)?.try_into().ok()?;
        let declared = u32::from_le_bytes(len_bytes) as usize;
        if declared > wire::MAX_FRAME_BYTES {
            // Enter discard mode: consume `declared` bytes as they
            // stream in, keeping only the header prefix for seq
            // recovery, then answer with a structured error. The stream
            // stays in sync and the connection stays usable.
            self.buf.drain(..4);
            self.discard = Some(Discard {
                declared,
                remaining: declared,
                header: Vec::new(),
            });
            return self.advance_discard();
        }
        if self.buf.len() < 4 + declared {
            return None;
        }
        let payload: Vec<u8> = self.buf.get(4..4 + declared)?.to_vec();
        self.buf.drain(..4 + declared);
        Some(Extracted::Frame(payload))
    }

    /// Consumes buffered bytes into the active discard, returning the
    /// `Oversized` record once the whole declared length has passed.
    fn advance_discard(&mut self) -> Option<Extracted> {
        let d = self.discard.as_mut()?;
        let take = d.remaining.min(self.buf.len());
        if d.header.len() < wire::V2_HEADER_BYTES {
            let want = (wire::V2_HEADER_BYTES - d.header.len()).min(take);
            if let Some(prefix) = self.buf.get(..want) {
                d.header.extend_from_slice(prefix);
            }
        }
        self.buf.drain(..take);
        d.remaining -= take;
        if d.remaining == 0 {
            let d = self.discard.take()?;
            return Some(Extracted::Oversized {
                declared: d.declared,
                header: d.header,
            });
        }
        None
    }

    /// Whether the reassembly buffer holds a partial frame (the
    /// condition that arms the slowloris read deadline).
    pub(crate) fn mid_frame(&self) -> bool {
        !self.buf.is_empty() || self.discard.is_some()
    }

    /// Queues response bytes for writing and bumps the backpressure
    /// gauge shared with off-loop producers.
    pub(crate) fn queue(&mut self, bytes: Vec<u8>) {
        if bytes.is_empty() {
            return;
        }
        self.shared
            .pending_write_bytes
            .fetch_add(bytes.len(), Ordering::Relaxed);
        self.write_q.push_back(bytes);
    }

    /// Writes queued bytes until the socket blocks or the queue drains.
    /// `Ok(true)` means fully flushed.
    pub(crate) fn flush(&mut self) -> std::io::Result<bool> {
        while let Some(front) = self.write_q.front() {
            let Some(rest) = front.get(self.write_off..) else {
                self.write_q.pop_front();
                self.write_off = 0;
                continue;
            };
            if rest.is_empty() {
                self.write_q.pop_front();
                self.write_off = 0;
                continue;
            }
            match self.stream.write(rest) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.write_off += n;
                    self.shared
                        .pending_write_bytes
                        .fetch_sub(n, Ordering::Relaxed);
                    self.last_progress = Instant::now();
                    if self.write_off >= front.len() {
                        self.write_q.pop_front();
                        self.write_off = 0;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// Whether unwritten response bytes remain.
    pub(crate) fn has_pending_writes(&self) -> bool {
        !self.write_q.is_empty()
    }

    /// Pending (unwritten) response bytes.
    pub(crate) fn pending_write_bytes(&self) -> usize {
        self.shared.pending_write_bytes.load(Ordering::Relaxed)
    }

    /// Whether the loop should read/extract from this connection now.
    pub(crate) fn wants_read(&self) -> bool {
        !self.streaming
            && !self.close_after_flush
            && !self.write_paused
            && self.parked.is_empty()
            && self.in_flight < MAX_IN_FLIGHT
    }

    /// No outstanding work: nothing in flight, nothing parked, nothing
    /// buffered to write.
    pub(crate) fn quiescent(&self) -> bool {
        self.in_flight == 0 && self.parked.is_empty() && !self.has_pending_writes()
    }

    /// Whether the connection currently owes the peer (or us) progress:
    /// a partially received frame or unflushed response bytes. This is
    /// the condition that keeps a deadline armed; purely idle
    /// connections stay up indefinitely, as before.
    pub(crate) fn owes_progress(&self) -> bool {
        self.mid_frame() || self.has_pending_writes()
    }

    /// The deadline the wheel should enforce, if any: `last_progress +
    /// timeout` while progress is owed. A healthy peer keeps moving
    /// `last_progress` forward (so the fired wheel entry is re-armed at
    /// the new time); a slowloris or stalled reader does not and is
    /// evicted.
    pub(crate) fn deadline(&self, timeout: std::time::Duration) -> Option<Instant> {
        if self.owes_progress() {
            Some(self.last_progress + timeout)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_common::wire::Request;
    use std::net::{TcpListener, TcpStream};

    /// A connected socket pair (loopback); the server end nonblocking,
    /// as the reactor would have it.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    impl Conn {
        /// Test-only: bytes "arrive" directly in the reassembly buffer,
        /// making split-point coverage deterministic (the socket path is
        /// exercised by `fill` in the integration tests).
        fn ingest(&mut self, bytes: &[u8]) {
            self.buf.extend_from_slice(bytes);
        }
    }

    #[test]
    fn frames_reassemble_across_arbitrary_splits() {
        let (_client, server) = pair();
        let mut conn = Conn::new(server);
        let f1 = wire::frame_bytes_seq(11, &Request::Ping);
        let f2 = wire::frame_bytes_seq(
            12,
            &Request::Query {
                sql: "SELECT x FROM t".into(),
            },
        );
        let all: Vec<u8> = f1.iter().chain(f2.iter()).copied().collect();

        // Dribble one byte at a time; frames must pop out exactly when
        // complete and never before.
        let mut extracted = Vec::new();
        for b in &all {
            conn.ingest(&[*b]);
            while let Some(e) = conn.extract() {
                extracted.push(e);
            }
        }
        assert_eq!(
            extracted,
            vec![
                Extracted::Frame(f1[4..].to_vec()),
                Extracted::Frame(f2[4..].to_vec()),
            ]
        );
        assert!(!conn.mid_frame());
    }

    #[test]
    fn oversized_frames_discard_but_keep_the_seq_header() {
        let (_client, server) = pair();
        let mut conn = Conn::new(server);

        // Hand-build a frame that declares an oversized length, arriving
        // as header bytes first, then the body in chunks.
        let declared = wire::MAX_FRAME_BYTES + 64;
        let mut head = (declared as u32).to_le_bytes().to_vec();
        head.extend_from_slice(&wire::WIRE_MAGIC);
        head.extend_from_slice(&2u16.to_le_bytes());
        head.extend_from_slice(&777u64.to_le_bytes());

        conn.ingest(&head);
        // Header consumed into discard state; not yet complete.
        assert!(conn.extract().is_none());
        assert!(conn.mid_frame());

        let mut remaining = declared - (head.len() - 4);
        let junk = vec![0xAB_u8; 1 << 20];
        let mut got = None;
        while remaining > 0 {
            let n = remaining.min(junk.len());
            conn.ingest(&junk[..n]);
            remaining -= n;
            if let Some(e) = conn.extract() {
                got = Some(e);
            }
        }
        match got {
            Some(Extracted::Oversized {
                declared: d,
                header,
            }) => {
                assert_eq!(d, declared);
                assert_eq!(wire::peek_seq(&header), Some(777));
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert!(!conn.mid_frame());

        // The stream is back in sync: a normal frame still parses.
        let f = wire::frame_bytes_seq(9, &Request::Ping);
        conn.ingest(&f);
        assert_eq!(conn.extract(), Some(Extracted::Frame(f[4..].to_vec())));
    }

    #[test]
    fn oversized_discard_interleaves_with_a_following_frame() {
        // The bytes after the oversized body belong to the next frame;
        // discard must consume exactly the declared length.
        let (_client, server) = pair();
        let mut conn = Conn::new(server);
        let declared = wire::MAX_FRAME_BYTES + 1;
        let mut bytes = (declared as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&vec![0x55_u8; declared]);
        let next = wire::frame_bytes_seq(3, &Request::Ping);
        bytes.extend_from_slice(&next);

        conn.ingest(&bytes);
        let first = conn.extract();
        assert!(
            matches!(first, Some(Extracted::Oversized { declared: d, .. }) if d == declared),
            "{first:?}"
        );
        assert_eq!(conn.extract(), Some(Extracted::Frame(next[4..].to_vec())));
        assert_eq!(conn.extract(), None);
    }

    #[test]
    fn write_queue_tracks_backpressure_gauge() {
        let (_client, server) = pair();
        let mut conn = Conn::new(server);
        conn.queue(vec![1; 1000]);
        conn.queue(vec![2; 500]);
        assert_eq!(conn.pending_write_bytes(), 1500);
        assert!(conn.has_pending_writes());
        assert!(conn.flush().unwrap());
        assert_eq!(conn.pending_write_bytes(), 0);
        assert!(!conn.has_pending_writes());
    }

    #[test]
    fn deadline_tracks_owed_progress() {
        let (_client, server) = pair();
        let mut conn = Conn::new(server);
        let t = std::time::Duration::from_secs(1);

        // Idle: no deadline.
        assert!(!conn.owes_progress());
        assert_eq!(conn.deadline(t), None);

        // Half a frame: deadline = last_progress + timeout.
        let frame = wire::frame_bytes_seq(1, &Request::Ping);
        conn.ingest(&frame[..6]);
        assert!(conn.extract().is_none());
        assert!(conn.owes_progress());
        assert_eq!(conn.deadline(t), Some(conn.last_progress + t));

        // Rest arrives: frame extracted, nothing owed, deadline gone.
        conn.ingest(&frame[6..]);
        assert!(matches!(conn.extract(), Some(Extracted::Frame(_))));
        assert!(!conn.owes_progress());
        assert_eq!(conn.deadline(t), None);
    }
}
