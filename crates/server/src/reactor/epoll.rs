//! Thin, SAFETY-documented syscall shim over Linux `epoll(7)` and
//! `eventfd(2)`, plus the `RLIMIT_NOFILE` raiser the 10k-connection
//! target needs.
//!
//! The shim-only-deps policy forbids `mio`/`tokio`/`libc` as crates, but
//! std already links the C library — declaring the handful of symbols we
//! need (the same trick [`crate::install_signal_handlers`] uses for
//! `signal`) costs nothing and keeps every `unsafe` block small enough
//! to audit in one read. Everything here is a direct, one-call wrapper:
//! no state machines, no callbacks — those live in
//! [`super::event_loop`] in safe code.

use insightnotes_common::{Error, Result};
use std::os::fd::RawFd;
use std::time::Duration;

// Values from the Linux UAPI headers (stable ABI, identical on every
// supported arch).
const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
pub(crate) const EPOLLIN: u32 = 0x001;
pub(crate) const EPOLLOUT: u32 = 0x004;
pub(crate) const EPOLLERR: u32 = 0x008;
pub(crate) const EPOLLHUP: u32 = 0x010;
pub(crate) const EPOLLRDHUP: u32 = 0x2000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;
const RLIMIT_NOFILE: i32 = 7;

/// `struct epoll_event` from the kernel UAPI. Packed on x86 (the kernel
/// ABI really is unaligned there); naturally aligned everywhere else.
#[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
#[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
#[derive(Clone, Copy)]
pub(crate) struct EpollEvent {
    /// Readiness bit set (`EPOLLIN` | `EPOLLOUT` | …).
    pub events: u32,
    /// Caller-chosen token, returned verbatim with each event.
    pub data: u64,
}

/// `struct rlimit` (64-bit `rlim_t` on every 64-bit Linux ABI).
#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
}

fn os_err(what: &str) -> Error {
    Error::Io(std::io::Error::new(
        std::io::Error::last_os_error().kind(),
        format!("{what}: {}", std::io::Error::last_os_error()),
    ))
}

/// Which readiness classes a registered fd should report.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct Interest {
    /// Report when the fd is readable.
    pub read: bool,
    /// Report when the fd is writable.
    pub write: bool,
    /// Report when the peer shuts down its write side. Wanted even when
    /// reads are paused for backpressure (so a vanished peer can be
    /// reaped), but must be dropped once the half-close has been
    /// observed — level-triggered RDHUP reports forever.
    pub rdhup: bool,
}

impl Interest {
    fn mask(self) -> u32 {
        let mut m = 0;
        if self.read {
            m |= EPOLLIN;
        }
        if self.write {
            m |= EPOLLOUT;
        }
        if self.rdhup {
            m |= EPOLLRDHUP;
        }
        m
    }
}

/// An owned epoll instance. Level-triggered throughout — the event loop
/// re-arms nothing and simply services whatever is still ready.
#[derive(Debug)]
pub(crate) struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a new epoll instance (close-on-exec).
    pub(crate) fn new() -> Result<Self> {
        // SAFETY: `epoll_create1` takes no pointers; the flag value is
        // the kernel's own constant. A negative return is checked and
        // surfaced as an error before the fd is used anywhere.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(os_err("epoll_create1"));
        }
        Ok(Self { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Option<Interest>) -> Result<()> {
        let mut ev = EpollEvent {
            events: interest.map_or(0, Interest::mask),
            data: token,
        };
        // SAFETY: `self.fd` is a live epoll fd (owned, closed only in
        // Drop), `ev` is a properly laid-out `epoll_event` that outlives
        // the call, and DEL ignores the event pointer entirely. The
        // return code is checked.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(os_err("epoll_ctl"));
        }
        Ok(())
    }

    /// Registers `fd` with `token` under `interest`.
    pub(crate) fn add(&self, fd: RawFd, token: u64, interest: Interest) -> Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, Some(interest))
    }

    /// Changes an already-registered fd's interest set.
    pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, Some(interest))
    }

    /// Deregisters `fd`. Harmless to call on an fd the kernel already
    /// dropped (closing an fd removes it from every epoll set).
    pub(crate) fn delete(&self, fd: RawFd) -> Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, None)
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses, filling `events` with the ready set. This is the **one
    /// sanctioned blocking call inside a reactor worker** (the
    /// lock-across-io lint's reactor rule allows exactly this name).
    pub(crate) fn wait_ready(
        &self,
        events: &mut Vec<EpollEvent>,
        timeout: Option<Duration>,
    ) -> Result<usize> {
        // A zero-capacity Vec has a dangling (non-allocated) pointer;
        // the kernel needs at least one real slot to write into.
        if events.capacity() == 0 {
            events.reserve(1);
        }
        let cap = events.capacity();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => i32::try_from(d.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX),
        };
        events.clear();
        // SAFETY: the spare capacity of `events` is `cap` contiguous,
        // properly aligned `EpollEvent` slots; the kernel writes at most
        // `cap` of them and reports how many via the return value, which
        // is bounds-checked before `set_len` exposes exactly the
        // initialized prefix. EINTR is retried by the caller's loop.
        let n = unsafe { epoll_wait(self.fd, events.as_mut_ptr(), cap as i32, timeout_ms) };
        if n < 0 {
            let e = std::io::Error::last_os_error();
            if e.kind() == std::io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(os_err("epoll_wait"));
        }
        let n = (n as usize).min(cap);
        // SAFETY: the kernel initialized the first `n` elements (n ≤ cap
        // enforced above), so exposing them is sound.
        unsafe { events.set_len(n) };
        Ok(n)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is owned by this instance and closed exactly
        // once, here.
        unsafe {
            close(self.fd);
        }
    }
}

/// A cross-thread wakeup handle: an `eventfd` registered in a worker's
/// epoll set. Any thread may [`WakeFd::wake`] it; the owning worker
/// [`WakeFd::drain`]s it when its token reports readable.
#[derive(Debug)]
pub(crate) struct WakeFd {
    fd: RawFd,
}

// SAFETY: the wrapped fd is just an integer; `write(2)`/`read(2)` on an
// eventfd are thread-safe kernel entry points, so sharing the handle
// across threads is sound.
unsafe impl Send for WakeFd {}
// SAFETY: as above — concurrent wake()/drain() calls race only inside
// the kernel, which serializes eventfd counter updates.
unsafe impl Sync for WakeFd {}

impl WakeFd {
    /// Creates a nonblocking, close-on-exec eventfd.
    pub(crate) fn new() -> Result<Self> {
        // SAFETY: `eventfd` takes no pointers; flags are kernel
        // constants; the return code is checked before use.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(os_err("eventfd"));
        }
        Ok(Self { fd })
    }

    /// The raw fd, for registration in an epoll set.
    pub(crate) fn raw(&self) -> RawFd {
        self.fd
    }

    /// Nudges the owning worker: adds 1 to the eventfd counter. Failure
    /// is ignored — the worst case (counter saturated at `u64::MAX - 1`)
    /// still leaves the fd readable, which is all a wakeup needs.
    pub(crate) fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: `one` is 8 live, initialized bytes and an eventfd
        // write reads exactly 8; the fd outlives the call (owned, closed
        // only in Drop).
        unsafe {
            write(self.fd, std::ptr::addr_of!(one).cast::<u8>(), 8);
        }
    }

    /// Clears the counter so the (level-triggered) fd stops reporting
    /// readable until the next [`WakeFd::wake`].
    pub(crate) fn drain(&self) {
        let mut count: u64 = 0;
        // SAFETY: `count` is 8 writable bytes and an eventfd read writes
        // exactly 8; nonblocking, so EAGAIN (already drained) just
        // returns an ignored -1.
        unsafe {
            read(self.fd, std::ptr::addr_of_mut!(count).cast::<u8>(), 8);
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is owned by this instance and closed exactly
        // once, here.
        unsafe {
            close(self.fd);
        }
    }
}

/// Raises `RLIMIT_NOFILE`'s soft limit to its hard limit (the most an
/// unprivileged process may grant itself) and returns the resulting
/// soft limit. Best-effort: on failure the current (unchanged) limit is
/// returned. `insightd` and the `net_concurrency` bench harness call
/// this before opening their connection fleets — the stock soft limit
/// of 1024 fds caps a server well short of the 10k-connection target.
pub fn raise_fd_limit() -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a properly laid-out `struct rlimit` that the
    // kernel fills; the return code is checked before the values are
    // trusted.
    let rc = unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) };
    if rc != 0 {
        return 0;
    }
    if lim.cur >= lim.max {
        return lim.cur;
    }
    let want = RLimit {
        cur: lim.max,
        max: lim.max,
    };
    // SAFETY: `want` is a live, initialized `struct rlimit`; setrlimit
    // only reads it. Failure leaves the old limit in place, which the
    // re-read below reports faithfully.
    let rc = unsafe { setrlimit(RLIMIT_NOFILE, &want) };
    if rc != 0 {
        return lim.cur;
    }
    want.cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wakefd_round_trips_through_epoll() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        ep.add(
            wake.raw(),
            42,
            Interest {
                read: true,
                write: false,
                rdhup: false,
            },
        )
        .unwrap();

        let mut events = Vec::with_capacity(8);
        // Nothing pending: a zero timeout returns empty.
        let n = ep
            .wait_ready(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0);

        wake.wake();
        let n = ep
            .wait_ready(&mut events, Some(Duration::from_millis(1000)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.first().copied().unwrap();
        // Copy out of the (packed on x86) struct before asserting.
        let (data, bits) = ({ ev.data }, { ev.events });
        assert_eq!(data, 42);
        assert_ne!(bits & EPOLLIN, 0);

        // Drained, the level-triggered fd goes quiet again.
        wake.drain();
        let n = ep
            .wait_ready(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn modify_and_delete_are_accepted() {
        let ep = Epoll::new().unwrap();
        let wake = WakeFd::new().unwrap();
        let both = Interest {
            read: true,
            write: true,
            rdhup: false,
        };
        ep.add(wake.raw(), 7, both).unwrap();
        ep.modify(
            wake.raw(),
            7,
            Interest {
                read: false,
                write: true,
                rdhup: false,
            },
        )
        .unwrap();
        ep.delete(wake.raw()).unwrap();
        // Deleting twice is the caller's bug; the kernel reports ENOENT.
        assert!(ep.delete(wake.raw()).is_err());
    }

    #[test]
    fn fd_limit_raise_reports_a_usable_limit() {
        let lim = raise_fd_limit();
        assert!(lim > 0, "soft NOFILE limit should be readable");
    }
}
