//! A coarse hashed timer wheel for connection deadlines.
//!
//! `set_read_timeout`/`set_write_timeout` are silent no-ops on
//! nonblocking sockets, so the reactor enforces its deadlines here
//! instead: a connection that is mid-frame (slowloris) or has unflushed
//! response bytes (slow reader) arms a deadline; the wheel reports it
//! when due and the event loop evicts the connection.
//!
//! Precision is deliberately coarse — [`GRANULARITY`] per slot — because
//! the deadlines being enforced are request timeouts measured in
//! hundreds of milliseconds to seconds. Cancellation is **lazy**: a
//! connection that makes progress bumps its `generation` and simply
//! abandons the stale wheel entry; when the entry fires, the event loop
//! compares generations and ignores it. Deadlines past the wheel's
//! horizon clamp to the furthest slot and are re-armed on expiry (the
//! loop re-checks the real deadline before evicting), so arbitrarily
//! long timeouts still work.

use std::time::{Duration, Instant};

/// Wheel slot width. Evictions land within one slot of their deadline.
pub(crate) const GRANULARITY: Duration = Duration::from_millis(16);

/// Slot count: horizon = 512 × 16ms ≈ 8.2s per revolution.
const SLOTS: usize = 512;

/// One armed deadline: the connection it belongs to and the generation
/// the connection's timer state had when armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct TimerEntry {
    /// Connection token.
    pub conn: u64,
    /// Generation for lazy cancellation.
    pub generation: u64,
    /// Absolute tick the entry is due at (entries whose due tick has
    /// wrapped past the cursor stay in their slot for another turn).
    due_tick: u64,
}

#[derive(Debug)]
pub(crate) struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    base: Instant,
    /// Next tick number to collect (everything before it already fired).
    next_tick: u64,
    /// Live entries across all slots (stale generations included).
    armed: usize,
}

impl TimerWheel {
    pub(crate) fn new(now: Instant) -> Self {
        let mut slots = Vec::with_capacity(SLOTS);
        slots.resize_with(SLOTS, Vec::new);
        Self {
            slots,
            base: now,
            next_tick: 0,
            armed: 0,
        }
    }

    fn tick_of(&self, t: Instant) -> u64 {
        let elapsed = t.saturating_duration_since(self.base);
        (elapsed.as_millis() / GRANULARITY.as_millis().max(1)) as u64
    }

    /// Arms a deadline for `conn`. Deadlines beyond the wheel horizon
    /// are clamped to the furthest slot; the caller re-checks the real
    /// deadline when the entry fires and re-arms the remainder.
    pub(crate) fn schedule(&mut self, now: Instant, deadline: Instant, conn: u64, generation: u64) {
        // Always at least one tick out, so an already-due deadline still
        // fires on the *next* collection rather than being skipped.
        let due = self.tick_of(deadline).max(self.next_tick) + 1;
        let horizon = self.tick_of(now) + SLOTS as u64 - 1;
        let due_tick = due.min(horizon.max(self.next_tick + 1));
        let slot = (due_tick as usize) % SLOTS;
        if let Some(bucket) = self.slots.get_mut(slot) {
            bucket.push(TimerEntry {
                conn,
                generation,
                due_tick,
            });
            self.armed += 1;
        }
    }

    /// Collects every entry due at or before `now` into `out`. Entries
    /// sharing a slot but due a later revolution stay put.
    pub(crate) fn expired(&mut self, now: Instant, out: &mut Vec<TimerEntry>) {
        let current = self.tick_of(now);
        // Bound the walk to one full revolution per call; an event loop
        // stalled longer than the horizon still collects everything due
        // because each slot is filtered by due_tick, not position.
        let first = self.next_tick;
        let last = current.min(first + SLOTS as u64);
        for tick in first..=last {
            let slot = (tick as usize) % SLOTS;
            let Some(bucket) = self.slots.get_mut(slot) else {
                continue;
            };
            let before = bucket.len();
            bucket.retain(|e| {
                if e.due_tick <= current {
                    out.push(*e);
                    false
                } else {
                    true
                }
            });
            self.armed = self.armed.saturating_sub(before - bucket.len());
        }
        self.next_tick = current + 1;
    }

    /// How long the event loop may sleep without missing a deadline:
    /// `None` when nothing is armed (sleep as long as you like), one
    /// granularity otherwise. Coarse but constant-time — the wheel is
    /// polled, not alarm-driven.
    pub(crate) fn next_wake(&self) -> Option<Duration> {
        if self.armed == 0 {
            None
        } else {
            Some(GRANULARITY)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimerWheel, at: Instant) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        wheel.expired(at, &mut out);
        out.into_iter().map(|e| (e.conn, e.generation)).collect()
    }

    #[test]
    fn deadlines_fire_after_their_slot_and_not_before() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.schedule(t0, t0 + Duration::from_millis(100), 1, 0);
        assert_eq!(wheel.next_wake(), Some(GRANULARITY));

        // Well before the deadline: nothing.
        assert!(drain(&mut wheel, t0 + Duration::from_millis(40)).is_empty());
        // Past the deadline (plus one slot of slack): fires exactly once.
        let fired = drain(&mut wheel, t0 + Duration::from_millis(200));
        assert_eq!(fired, vec![(1, 0)]);
        assert!(drain(&mut wheel, t0 + Duration::from_millis(400)).is_empty());
        assert_eq!(wheel.next_wake(), None);
    }

    #[test]
    fn entries_in_one_slot_with_different_revolutions_do_not_collide() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        let one_rev = GRANULARITY * (SLOTS as u32);
        wheel.schedule(t0, t0 + Duration::from_millis(50), 7, 3);
        // Far deadline clamps to the horizon; firing it early is fine
        // because the loop re-checks the real deadline and re-arms.
        wheel.schedule(t0, t0 + one_rev * 4, 8, 9);

        let fired = drain(&mut wheel, t0 + Duration::from_millis(120));
        assert_eq!(fired, vec![(7, 3)]);

        // The clamped far entry fires by the end of the first revolution.
        let fired = drain(&mut wheel, t0 + one_rev + GRANULARITY * 2);
        assert_eq!(fired, vec![(8, 9)]);
    }

    #[test]
    fn stale_generations_are_the_callers_problem_but_still_delivered() {
        // The wheel itself delivers every armed entry; generation
        // filtering happens in the event loop. Two generations of the
        // same conn both come out.
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        wheel.schedule(t0, t0 + Duration::from_millis(30), 5, 0);
        wheel.schedule(t0, t0 + Duration::from_millis(30), 5, 1);
        let mut fired = drain(&mut wheel, t0 + Duration::from_millis(100));
        fired.sort_unstable();
        assert_eq!(fired, vec![(5, 0), (5, 1)]);
    }

    #[test]
    fn a_stalled_loop_still_collects_everything_due() {
        let t0 = Instant::now();
        let mut wheel = TimerWheel::new(t0);
        for conn in 0..20u64 {
            wheel.schedule(t0, t0 + Duration::from_millis(10 * conn), conn, 0);
        }
        // Simulate a loop that slept three revolutions.
        let late = t0 + GRANULARITY * (SLOTS as u32) * 3;
        let fired = drain(&mut wheel, late);
        assert_eq!(fired.len(), 20);
        assert_eq!(wheel.next_wake(), None);
    }
}
