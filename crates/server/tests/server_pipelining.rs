//! Pipelined (wire v2) sessions against an in-process reactor server.
//!
//! The property test keeps a deep window of interleaved reads, writes,
//! and batches in flight on one connection and checks the protocol's
//! actual contract:
//!
//! - every response carries the sequence id of exactly one submitted
//!   request, and its *content* matches that request (a read returns
//!   the row it asked for, a batch ack has one slot per statement);
//! - reads may overtake writes, but writes targeting the same row ack
//!   in submission order (per-shard commit queues are FIFO) — and at a
//!   single shard, *all* writes ack in submission order;
//! - the final engine state is byte-identical to replaying the same
//!   write statements serially on a fresh server, at 1 and at 4 shards
//!   (ids and logical ticks are stamped at the router in submission
//!   order, so pipelining must not reorder them).
//!
//! The slowloris test half-sends a frame and checks the reactor's
//! deadline wheel evicts the connection at `request_timeout` — the
//! regression guard for the silent `set_read_timeout` no-op the wheel
//! replaced.

#![cfg(unix)]

use insightnotes_client::{Client, PipelinedClient};
use insightnotes_common::wire::{Request, Response, WireValue};
use insightnotes_engine::{DbConfig, ShardedDatabase};
use insightnotes_server::{Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const ROWS: u64 = 40;
const REQUESTS: usize = 240;
const WINDOW: usize = 16;

struct Running {
    addr: SocketAddr,
    db: Arc<ShardedDatabase>,
    handle: ServerHandle,
    thread: Option<JoinHandle<()>>,
}

fn start(shards: usize, config: ServerConfig) -> Running {
    let db = ShardedDatabase::create(DbConfig::default(), shards).unwrap();
    let server = Server::bind_sharded("127.0.0.1:0", db, config).unwrap();
    let addr = server.local_addr().unwrap();
    let db = server.sharded_database();
    let handle = server.handle();
    let thread = std::thread::spawn(move || {
        server.run().unwrap();
    });
    Running {
        addr,
        db,
        handle,
        thread: Some(thread),
    }
}

impl Running {
    /// Graceful shutdown (drains the reactor and every commit queue),
    /// then hands back the engine for state inspection.
    fn stop(mut self) -> Arc<ShardedDatabase> {
        self.handle.shutdown();
        self.thread.take().unwrap().join().unwrap();
        self.db
    }
}

/// Seeds both servers identically: one table, `ROWS` uniquely named
/// rows, all through the serial protocol before any pipelining starts.
fn seed(addr: SocketAddr) {
    let mut c = Client::connect(addr).unwrap();
    c.execute("CREATE TABLE birds (id INT, name TEXT)").unwrap();
    for id in 1..=ROWS {
        c.execute(&format!("INSERT INTO birds VALUES ({id}, 'bird-{id}')"))
            .unwrap();
    }
}

/// Deterministic xorshift64* so the request mix is reproducible.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn row(&mut self) -> u64 {
        self.next() % ROWS + 1
    }
}

/// One scripted request: what goes on the wire plus what the response
/// must look like.
enum Scripted {
    /// `Query` for one row; the response must contain that row's name.
    Read { row: u64 },
    /// Single-statement `Annotate` on one row.
    Write { row: u64, sql: String },
    /// `AnnotateBatch`; one result slot per statement expected back.
    Batch { stmts: Vec<String> },
}

fn annotation_sql(tag: &str, i: usize, row: u64) -> String {
    format!(
        "ADD ANNOTATION 'note {tag} {i}' AUTHOR 'a{}' ON birds WHERE id = {row}",
        i % 3
    )
}

fn script() -> Vec<Scripted> {
    let mut prng = Prng(0x1516_8740_dead_beef);
    (0..REQUESTS)
        .map(|i| match i % 4 {
            0 | 1 => {
                let row = prng.row();
                Scripted::Write {
                    row,
                    sql: annotation_sql("solo", i, row),
                }
            }
            2 => Scripted::Read { row: prng.row() },
            _ => {
                let stmts = (0..3)
                    .map(|j| {
                        let row = prng.row();
                        annotation_sql("batch", i * 8 + j, row)
                    })
                    .collect();
                Scripted::Batch { stmts }
            }
        })
        .collect()
}

fn request_for(s: &Scripted) -> Request {
    match s {
        Scripted::Read { row } => Request::Query {
            sql: format!("SELECT name FROM birds WHERE id = {row}"),
        },
        Scripted::Write { sql, .. } => Request::Annotate { sql: sql.clone() },
        Scripted::Batch { stmts, .. } => Request::AnnotateBatch {
            statements: stmts.clone(),
        },
    }
}

/// Checks one response against the request its sequence id maps to.
fn check_response(s: &Scripted, resp: &Response) {
    match (s, resp) {
        (Scripted::Read { row }, Response::Rows(rows)) => {
            assert_eq!(rows.rows.len(), 1, "point read of row {row}");
            assert_eq!(
                rows.rows[0].values.first(),
                Some(&WireValue::Text(format!("bird-{row}"))),
                "read answered with a different request's rows"
            );
        }
        (Scripted::Write { .. }, Response::Ack { messages }) => {
            assert_eq!(messages.len(), 1);
        }
        (Scripted::Batch { stmts, .. }, Response::BatchAck { results }) => {
            assert_eq!(results.len(), stmts.len(), "one result slot per statement");
            for r in results {
                assert!(
                    matches!(r, insightnotes_common::wire::BatchItem::Ok(_)),
                    "batch item failed: {r:?}"
                );
            }
        }
        (_, other) => panic!("response kind does not match its request: {other:?}"),
    }
}

/// Drives the whole script through one pipelined connection with up to
/// `WINDOW` requests in flight, interleaving submits and receives (not
/// windowed batches — the point is arbitrary interleave). Returns the
/// arrival order of sequence ids.
fn drive_interleaved(client: &mut PipelinedClient, script: &[Scripted]) -> Vec<u64> {
    let mut arrivals = Vec::with_capacity(script.len());
    let mut seq_of = Vec::with_capacity(script.len());
    for s in script {
        while client.in_flight() >= WINDOW {
            let (seq, resp) = client.recv_any().unwrap();
            check_response(&script[seq as usize], &resp);
            arrivals.push(seq);
        }
        let seq = client.submit(&request_for(s)).unwrap();
        // Seqs are assigned 0.. in submission order on a fresh session;
        // the script index doubles as the expected seq.
        assert_eq!(seq as usize, seq_of.len(), "sequence ids are dense");
        seq_of.push(seq);
    }
    for (seq, resp) in client.drain().unwrap() {
        check_response(&script[seq as usize], &resp);
        arrivals.push(seq);
    }
    arrivals
}

/// Every submitted seq came back exactly once.
fn assert_complete(arrivals: &[u64]) {
    let mut seen = vec![false; REQUESTS];
    for &seq in arrivals {
        assert!(!seen[seq as usize], "seq {seq} answered twice");
        seen[seq as usize] = true;
    }
    assert!(seen.iter().all(|&s| s), "every request answered");
}

/// Writes targeting a common row must ack in submission order; at a
/// single shard every write (solo or batch) shares the one commit
/// queue, so the whole write sub-sequence must be ordered.
fn assert_write_order(script: &[Scripted], arrivals: &[u64], shards: usize) {
    let write_arrivals: Vec<u64> = arrivals
        .iter()
        .copied()
        .filter(|&seq| !matches!(script[seq as usize], Scripted::Read { .. }))
        .collect();
    if shards == 1 {
        let mut sorted = write_arrivals.clone();
        sorted.sort_unstable();
        assert_eq!(
            write_arrivals, sorted,
            "single-shard write acks arrived out of commit order"
        );
    }
    // Per row: solo writes only (a cross-shard batch acks on its
    // *last* shard's commit, so its ack may trail a later solo write
    // that shares just one of its rows).
    for row in 1..=ROWS {
        let per_row: Vec<u64> = write_arrivals
            .iter()
            .copied()
            .filter(
                |&seq| matches!(&script[seq as usize], Scripted::Write { row: r, .. } if *r == row),
            )
            .collect();
        let mut sorted = per_row.clone();
        sorted.sort_unstable();
        assert_eq!(
            per_row, sorted,
            "row {row}: same-row write acks arrived out of submission order"
        );
    }
}

/// Replays the script's writes serially (one request, one response) on
/// a fresh server, in submission order.
fn replay_serial(addr: SocketAddr, script: &[Scripted]) {
    let mut c = Client::connect(addr).unwrap();
    for s in script {
        match s {
            Scripted::Read { .. } => {}
            Scripted::Write { sql, .. } => {
                c.annotate(sql).unwrap();
            }
            Scripted::Batch { stmts, .. } => {
                for r in c.annotate_batch(stmts.clone()).unwrap() {
                    r.unwrap();
                }
            }
        }
    }
}

fn pipelined_matches_serial_replay(shards: usize) {
    let script = script();

    let pipelined = start(shards, ServerConfig::default());
    seed(pipelined.addr);
    let mut client = PipelinedClient::connect(pipelined.addr).unwrap();
    let arrivals = drive_interleaved(&mut client, &script);
    assert_complete(&arrivals);
    assert_write_order(&script, &arrivals, shards);
    drop(client);

    let serial = start(shards, ServerConfig::default());
    seed(serial.addr);
    replay_serial(serial.addr, &script);

    let a = pipelined.stop();
    let b = serial.stop();
    assert_eq!(a.shard_count(), b.shard_count());
    for k in 0..a.shard_count() {
        let left = a.shard(k).read().snapshot_bytes();
        let right = b.shard(k).read().snapshot_bytes();
        assert!(
            left == right,
            "shard {k}: pipelined final state diverged from serial replay \
             ({} vs {} snapshot bytes)",
            left.len(),
            right.len()
        );
    }
}

#[test]
fn pipelined_interleave_matches_serial_replay_single_shard() {
    pipelined_matches_serial_replay(1);
}

#[test]
fn pipelined_interleave_matches_serial_replay_four_shards() {
    pipelined_matches_serial_replay(4);
}

/// A slowloris connection — frame length declared, body withheld — must
/// be evicted at `request_timeout` by the reactor's deadline wheel, not
/// trusted forever. A well-behaved pipelined session on the same server
/// stays up throughout (idle connections owe no progress and have no
/// deadline).
#[test]
fn half_sent_frame_is_evicted_at_the_deadline() {
    let config = ServerConfig {
        request_timeout: Duration::from_millis(200),
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let server = start(1, config);

    let mut healthy = PipelinedClient::connect(server.addr).unwrap();

    let mut slow = TcpStream::connect(server.addr).unwrap();
    slow.set_read_timeout(Some(Duration::from_millis(100)))
        .unwrap();
    // A real v2 Ping frame, cut off mid-body: length prefix plus half
    // the payload, then silence.
    let frame = insightnotes_common::wire::frame_bytes_seq(7, &Request::Ping);
    slow.write_all(&frame[..frame.len() / 2]).unwrap();
    slow.flush().unwrap();

    // The server must close the connection once the deadline passes.
    // EOF (`Ok(0)`) or a reset both count; what must NOT happen is the
    // read still hanging open several deadlines later.
    let start_wait = Instant::now();
    let mut buf = [0u8; 64];
    let evicted = loop {
        match slow.read(&mut buf) {
            Ok(0) => break true,
            Ok(_) => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if start_wait.elapsed() > Duration::from_secs(5) {
                    break false;
                }
            }
            Err(_) => break true,
        }
    };
    assert!(
        evicted,
        "half-sent frame survived {:?} against a 200ms request_timeout",
        start_wait.elapsed()
    );
    // Eviction is surgical: the healthy session (idle through all of
    // this, well past the deadline) still answers.
    let seq = healthy.submit(&Request::Ping).unwrap();
    match healthy.recv(seq).unwrap() {
        Response::Pong { .. } => {}
        other => panic!("healthy connection broken after eviction: {other:?}"),
    }
    server.stop();
}
