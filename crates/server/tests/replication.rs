//! End-to-end WAL-shipping replication: a replica bootstrapped from a
//! live primary under concurrent batched writes must converge to a
//! byte-identical logical snapshot (checked at shards ∈ {1, 4} over
//! several write mixes), serve reads locally with read-your-writes via
//! `wait_for_offset`, and reject every write path with a structured
//! `read_only_replica` error. The daemon tests then SIGKILL a replica
//! process mid-tail and mid-bootstrap (via `INSIGHTNOTES_CRASH_POINT`)
//! and verify it resubscribes from its last applied offset without
//! diverging from the primary.

#![cfg(unix)]

use insightnotes_client::Client;
use insightnotes_common::wire::ShardPosition;
use insightnotes_common::Error;
use insightnotes_engine::{DbConfig, ShardedDatabase, SyncPolicy};
use insightnotes_replication::replica::{ReplicaConfig, Replicator};
use insightnotes_replication::PositionTable;
use insightnotes_server::{ReplicaServing, Server, ServerConfig, ServerHandle};
use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("insightnotes-repl-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Nine rows so batches spread across a 4-shard hash layout.
const SCHEMA: &str = "CREATE TABLE t (p INT, q TEXT); \
     INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three'), \
       (4, 'four'), (5, 'five'), (6, 'six'), (7, 'seven'), \
       (8, 'eight'), (9, 'nine'); \
     CREATE SUMMARY INSTANCE K TYPE CLUSTER THRESHOLD 0.5; \
     LINK SUMMARY K TO t";

fn annotation_sql(text: &str, row: u64) -> String {
    format!("ADD ANNOTATION '{text}' AUTHOR 'repl' ON t WHERE p = {row}")
}

// ---------------------------------------------------------------- in-process

struct Running {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

fn serve(db: ShardedDatabase, config: ServerConfig) -> Running {
    let server = Server::bind_sharded("127.0.0.1:0", db, config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let thread = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    Running {
        addr,
        handle,
        thread: Some(thread),
    }
}

impl Running {
    fn client(&self) -> Client {
        Client::connect_timeout(&self.addr, Duration::from_secs(10)).expect("connect")
    }
}

impl Drop for Running {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread");
        }
    }
}

/// Waits until the replica's applied position vector covers `target`.
fn wait_applied(positions: &PositionTable, target: &[ShardPosition]) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let applied = positions.snapshot();
        if applied.len() == target.len() && applied.iter().zip(target).all(|(a, t)| a >= t) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "replica stalled: applied {applied:?}, wanted {target:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One convergence round: a WAL-backed primary takes concurrent batched
/// writes from several connections while a cold replica bootstraps
/// mid-stream and tails to the end; every shard's checkpoint bytes must
/// then equal a fresh recovery of the primary's on-disk state.
fn converge_round(shards: usize, writers: usize, rounds: usize, seed: u64) {
    let dir = scratch(&format!("conv-{shards}-{writers}-{seed}"));
    let config = DbConfig {
        wal_dir: Some(dir.join("wal")),
        wal_sync: SyncPolicy::Batch,
        ..DbConfig::default()
    };
    let (db, _) = ShardedDatabase::recover(None, config.clone(), shards).expect("primary recover");
    let primary = serve(db, ServerConfig::default());
    let mut c = primary.client();
    c.execute(SCHEMA).expect("schema");

    let boot_cell = std::sync::Mutex::new(None);
    std::thread::scope(|scope| {
        for w in 0..writers {
            let addr = primary.addr;
            scope.spawn(move || {
                let mut wc =
                    Client::connect_timeout(&addr, Duration::from_secs(10)).expect("writer");
                for round in 0..rounds {
                    let batch: Vec<String> = (0..8)
                        .map(|i| {
                            // Cheap deterministic mix of rows and texts.
                            let row = (seed + w as u64 * 31 + round as u64 * 7 + i) % 9 + 1;
                            annotation_sql(&format!("s{seed} w{w} r{round} i{i}"), row)
                        })
                        .collect();
                    for item in wc.annotate_batch(batch).expect("batch frame") {
                        item.expect("batch item acked");
                    }
                }
            });
        }
        // Start the replica while the writers are mid-stream, so the
        // snapshot bootstrap races live group commits.
        std::thread::sleep(Duration::from_millis(30));
        let boot = Replicator::start(&ReplicaConfig::new(
            primary.addr.to_string(),
            dir.join("replica"),
        ))
        .expect("replica start");
        assert!(boot.resumed.iter().all(|r| !r), "cold dir must bootstrap");
        *boot_cell.lock().unwrap() = Some(boot);
    });
    let boot = boot_cell.into_inner().unwrap().unwrap();

    // Everything acked is committed; the wire target is the primary's
    // fsynced position vector after the last writer finished.
    let target = c.replica_state().expect("primary positions");
    assert_eq!(target.len(), shards);
    wait_applied(&boot.replicator.positions(), &target);
    drop(boot.replicator); // stop tailing before the primary goes away
    drop(primary);

    // Byte-identical convergence: the replica's applied state equals a
    // from-disk recovery of the primary's own snapshot+WAL, per shard.
    let (disk, _) = ShardedDatabase::recover(None, config, shards).expect("disk recover");
    for k in 0..shards {
        assert_eq!(
            disk.shard(k).read().snapshot_bytes(),
            boot.db.shard(k).read().snapshot_bytes(),
            "shard {k} of {shards} diverged (seed {seed})"
        );
    }
}

#[test]
fn replica_converges_byte_identically_single_shard() {
    for seed in [0xA11CE, 0xB0B] {
        converge_round(1, 2, 3, seed);
    }
}

#[test]
fn replica_converges_byte_identically_four_shards() {
    for seed in [0xC0FFEE, 0xD00D] {
        converge_round(4, 4, 3, seed);
    }
}

#[test]
fn replica_serves_reads_locally_and_rejects_writes() {
    let dir = scratch("ryw");
    let config = DbConfig {
        wal_dir: Some(dir.join("wal")),
        wal_sync: SyncPolicy::Batch,
        ..DbConfig::default()
    };
    let (db, _) = ShardedDatabase::recover(None, config, 2).expect("primary recover");
    let primary = serve(db, ServerConfig::default());
    let mut pc = primary.client();
    pc.execute(SCHEMA).expect("schema");

    let boot = Replicator::start(&ReplicaConfig::new(
        primary.addr.to_string(),
        dir.join("replica"),
    ))
    .expect("replica start");
    let replica = serve(
        boot.db,
        ServerConfig {
            replica: Some(ReplicaServing {
                primary: primary.addr.to_string(),
                positions: boot.replicator.positions(),
            }),
            ..ServerConfig::default()
        },
    );
    let mut rc = replica.client();

    // Read-your-writes: write on the primary, wait for the replica to
    // cover the primary's committed vector, then read it back there.
    pc.annotate(&annotation_sql("fresh observation", 1))
        .expect("primary annotate");
    let target = pc.replica_state().expect("primary positions");
    rc.wait_for_offset(&target, Duration::from_secs(10))
        .expect("replica catches up");
    let rows = rc
        .query("SELECT p, q FROM t WHERE p = 1")
        .expect("replica read");
    assert_eq!(rows.rows.len(), 1);
    assert!(
        rows.rows[0].summaries.iter().any(|s| !s.is_empty()),
        "replica row should carry the propagated summary: {rows:?}"
    );
    let zoom = rc
        .zoom_in(&format!("ZOOMIN REFERENCE QID {} ON K INDEX 1", rows.qid))
        .expect("replica zoom-in");
    assert!(
        zoom.annotations
            .iter()
            .any(|a| a.text == "fresh observation"),
        "zoom-in on the replica should surface the annotation: {zoom:?}"
    );

    // Every write path is rejected with the structured class, naming
    // the primary so clients know where to go.
    let primary_name = primary.addr.to_string();
    let single = rc.annotate(&annotation_sql("rejected", 2)).unwrap_err();
    assert!(
        matches!(&single, Error::ReadOnlyReplica(m) if m.contains(&primary_name)),
        "annotate on a replica must fail read_only_replica, got: {single}"
    );
    let batch = rc
        .annotate_batch(vec![annotation_sql("rejected batch", 2)])
        .unwrap_err();
    assert!(matches!(batch, Error::ReadOnlyReplica(_)), "got: {batch}");
    let ddl = rc.execute("INSERT INTO t VALUES (10, 'ten')").unwrap_err();
    assert!(matches!(ddl, Error::ReadOnlyReplica(_)), "got: {ddl}");

    // The connection survives rejections and keeps serving reads.
    let again = rc
        .query("SELECT p FROM t WHERE p = 2")
        .expect("read after reject");
    assert_eq!(again.rows.len(), 1);
    drop(replica);
    drop(boot.replicator);
}

// ------------------------------------------------------------------ daemons

struct Daemon {
    child: Child,
    addr: SocketAddr,
}

fn spawn_insightd(args: &[String], envs: &[(&str, &str)]) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_insightd"));
    cmd.args(args).stdout(Stdio::piped()).stderr(Stdio::piped());
    cmd.env_remove("INSIGHTNOTES_CRASH_POINT");
    cmd.env_remove("INSIGHTNOTES_SYNC_FAIL_AFTER");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.spawn().expect("spawn insightd")
}

fn scrape_addr(child: &mut Child) -> SocketAddr {
    let mut line = String::new();
    BufReader::new(child.stdout.as_mut().expect("piped stdout"))
        .read_line(&mut line)
        .expect("read listen line");
    line.trim()
        .strip_prefix("insightd listening on ")
        .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
        .parse()
        .expect("parse bound address")
}

impl Daemon {
    fn primary(dir: &Path, shards: usize) -> Daemon {
        let mut args: Vec<String> = ["--addr", "127.0.0.1:0", "--sync", "batch"]
            .map(String::from)
            .to_vec();
        args.extend(["--shards".into(), shards.to_string()]);
        args.extend(["--wal-dir".into(), dir.display().to_string()]);
        let mut child = spawn_insightd(&args, &[]);
        let addr = scrape_addr(&mut child);
        Daemon { child, addr }
    }

    fn replica(primary: SocketAddr, dir: &Path, crash_point: Option<&str>) -> Daemon {
        let mut child = Self::replica_raw(primary, dir, crash_point);
        let addr = scrape_addr(&mut child);
        Daemon { child, addr }
    }

    /// Spawns without scraping the listen line — for crash points that
    /// may abort the process before (or while) it binds.
    fn replica_raw(primary: SocketAddr, dir: &Path, crash_point: Option<&str>) -> Child {
        let args: Vec<String> = [
            "--addr",
            "127.0.0.1:0",
            "--replica-of",
            &primary.to_string(),
            "--replica-dir",
            &dir.display().to_string(),
        ]
        .map(String::from)
        .to_vec();
        let envs: Vec<(&str, &str)> = match crash_point {
            Some(point) => vec![("INSIGHTNOTES_CRASH_POINT", point)],
            None => vec![],
        };
        spawn_insightd(&args, &envs)
    }

    fn client(&self) -> Client {
        Client::connect_timeout(&self.addr, Duration::from_secs(10)).expect("connect")
    }

    fn kill_nine(mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
    }

    /// Waits for the process to die on its own (injected abort).
    fn wait_dead(mut self) {
        let status = self.child.wait().expect("reap");
        assert!(!status.success(), "process was expected to abort");
    }

    /// Graceful stop; returns captured stderr.
    fn shutdown(mut self) -> String {
        self.client().shutdown_server().expect("shutdown request");
        self.child.wait().expect("reap");
        let mut err = String::new();
        self.child
            .stderr
            .take()
            .expect("piped stderr")
            .read_to_string(&mut err)
            .expect("read stderr");
        err
    }
}

/// The full visible state of `t` through one connection: every row with
/// its rendered summaries, plus the raw annotations behind the first
/// cluster group. Two byte-identical servers render these identically.
fn observed_state(c: &mut Client) -> (Vec<String>, Vec<(String, String, String)>) {
    let rows = c.query("SELECT p, q FROM t").expect("scan");
    let rendered: Vec<String> = rows
        .rows
        .iter()
        .map(|r| {
            let values: Vec<String> = r.values.iter().map(ToString::to_string).collect();
            format!("{} | {}", values.join(","), r.summaries.join(" ; "))
        })
        .collect();
    let zoom = c
        .zoom_in(&format!("ZOOMIN REFERENCE QID {} ON K INDEX 1", rows.qid))
        .expect("zoom");
    let mut anns: Vec<(String, String, String)> = zoom
        .annotations
        .iter()
        .map(|a| (a.id.to_string(), a.author.clone(), a.text.clone()))
        .collect();
    anns.sort();
    (rendered, anns)
}

/// Kill a replica mid-tail (abort injected after a frame is mirrored
/// durably but before it applies), restart it, and verify it resumes
/// from its last applied offset — the mirrored frame replays from local
/// disk, the subscription continues from there, and the replica ends up
/// indistinguishable from the primary.
#[test]
fn replica_killed_mid_tail_resubscribes_from_last_applied_offset() {
    let dir = scratch("kill-tail");
    let rdir = dir.join("replica");
    let primary = Daemon::primary(&dir.join("wal"), 2);
    let mut pc = primary.client();
    pc.execute(SCHEMA).expect("schema");
    for item in pc
        .annotate_batch(
            (0..6)
                .map(|i| annotation_sql(&format!("pre {i}"), i + 1))
                .collect(),
        )
        .expect("batch A")
    {
        item.expect("acked");
    }
    let target_a = pc.replica_state().expect("positions after A");

    // Life 1: bootstrap completes (the replica covers batch A), then
    // the first live frame trips the abort after its durable mirror.
    let replica = Daemon::replica(primary.addr, &rdir, Some("replica.apply.after_mirror"));
    replica
        .client()
        .wait_for_offset(&target_a, Duration::from_secs(20))
        .expect("bootstrap covers batch A");
    for item in pc
        .annotate_batch(
            (0..4)
                .map(|i| annotation_sql(&format!("mid {i}"), i + 2))
                .collect(),
        )
        .expect("batch B")
    {
        item.expect("acked");
    }
    let target_b = pc.replica_state().expect("positions after B");
    replica.wait_dead();

    // Life 2: local recovery replays the mirrored frame — the applied
    // vector covers batch B *before* any new frame could arrive, which
    // is only possible if the replica resumed instead of re-bootstrapping.
    let replica = Daemon::replica(primary.addr, &rdir, None);
    let mut rc = replica.client();
    rc.wait_for_offset(&target_b, Duration::from_secs(20))
        .expect("resumed replica covers the mirrored batch");
    for item in pc
        .annotate_batch(
            (0..4)
                .map(|i| annotation_sql(&format!("post {i}"), i + 3))
                .collect(),
        )
        .expect("batch C")
    {
        item.expect("acked");
    }
    let target_c = pc.replica_state().expect("positions after C");
    rc.wait_for_offset(&target_c, Duration::from_secs(20))
        .expect("replica tails batch C");

    assert_eq!(observed_state(&mut pc), observed_state(&mut rc));
    let stderr = replica.shutdown();
    assert!(
        stderr.contains("resuming from local state"),
        "restart must resume, not re-bootstrap; stderr: {stderr}"
    );
    primary.kill_nine();
}

/// Kill a replica mid-bootstrap (abort injected after the snapshot is
/// received but before any local state is installed): the half-dead
/// shard classifies as cold, and a restart re-bootstraps from scratch
/// and still converges.
#[test]
fn replica_killed_mid_bootstrap_rebootstraps_cleanly() {
    let dir = scratch("kill-boot");
    let rdir = dir.join("replica");
    let primary = Daemon::primary(&dir.join("wal"), 2);
    let mut pc = primary.client();
    pc.execute(SCHEMA).expect("schema");
    for item in pc
        .annotate_batch(
            (0..6)
                .map(|i| annotation_sql(&format!("seed {i}"), i + 1))
                .collect(),
        )
        .expect("seed batch")
    {
        item.expect("acked");
    }

    // Life 1 aborts inside the bootstrap; no meta may be left behind.
    let doomed = Daemon::replica_raw(
        primary.addr,
        &rdir,
        Some("replica.bootstrap.before_install"),
    );
    let status = doomed.wait_with_output().expect("reap");
    assert!(!status.status.success(), "bootstrap abort expected");
    assert!(
        !rdir.join("shard-0").join("meta").exists(),
        "an aborted bootstrap must not leave a meta commit point"
    );

    // Life 2 starts cold again, bootstraps, and converges.
    let replica = Daemon::replica(primary.addr, &rdir, None);
    let mut rc = replica.client();
    pc.annotate(&annotation_sql("after restart", 4))
        .expect("live write");
    let target = pc.replica_state().expect("positions");
    rc.wait_for_offset(&target, Duration::from_secs(20))
        .expect("rebootstrapped replica converges");
    assert_eq!(observed_state(&mut pc), observed_state(&mut rc));

    let stderr = replica.shutdown();
    assert!(
        stderr.contains("cold, bootstrapping from primary"),
        "life 2 must report a cold bootstrap; stderr: {stderr}"
    );
    primary.kill_nine();
}
