//! End-to-end crash recovery through the real `insightd` binary: a
//! server running with `--wal-dir` is killed with SIGKILL (no shutdown
//! handler, no snapshot, no destructors) and restarted, and every
//! annotation whose ack a client received before the kill must be
//! queryable again. A second test aborts the server *inside* the
//! group-commit fsync via `INSIGHTNOTES_CRASH_POINT` — the client sees
//! a dead connection instead of an ack, and recovery must preserve
//! exactly the previously-acked prefix.

#![cfg(unix)]

use insightnotes_client::Client;
use insightnotes_engine::shard::shard_snapshot_path;
use insightnotes_engine::Database;
use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "insightnotes-crashrec-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Daemon {
    /// Spawns `insightd` on an ephemeral port with a WAL and snapshot
    /// in `dir`, scraping the bound address off the first stdout line.
    /// `shards` is pinned explicitly so the layout under test doesn't
    /// depend on the machine's core count.
    fn spawn(dir: &Path, shards: usize, crash_point: Option<&str>) -> Daemon {
        Daemon::spawn_with(dir, shards, crash_point, &[])
    }

    /// Like [`Daemon::spawn`], with extra fault-injection environment
    /// variables (e.g. `INSIGHTNOTES_SYNC_FAIL_AFTER`) set on the child.
    fn spawn_with(
        dir: &Path,
        shards: usize,
        crash_point: Option<&str>,
        envs: &[(&str, &str)],
    ) -> Daemon {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_insightd"));
        cmd.args(["--addr", "127.0.0.1:0", "--sync", "batch"])
            .args(["--shards", &shards.to_string()])
            .arg("--wal-dir")
            .arg(dir)
            .arg("--snapshot")
            .arg(dir.join("db.indb"))
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        match crash_point {
            Some(point) => cmd.env("INSIGHTNOTES_CRASH_POINT", point),
            None => cmd.env_remove("INSIGHTNOTES_CRASH_POINT"),
        };
        cmd.env_remove("INSIGHTNOTES_SYNC_FAIL_AFTER");
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn insightd");
        let mut line = String::new();
        BufReader::new(child.stdout.as_mut().expect("piped stdout"))
            .read_line(&mut line)
            .expect("read listen line");
        let addr = line
            .trim()
            .strip_prefix("insightd listening on ")
            .unwrap_or_else(|| panic!("unexpected first line: {line:?}"))
            .parse()
            .expect("parse bound address");
        Daemon { child, addr }
    }

    fn client(&self) -> Client {
        Client::connect_timeout(&self.addr, Duration::from_secs(10)).expect("connect")
    }

    /// SIGKILL — the crash under test. Nothing on the server gets a
    /// chance to run: no snapshot, no flush, no Drop.
    fn kill_nine(mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
    }

    /// Graceful stop via the wire protocol; returns the server's
    /// captured stderr (recovery reports land there).
    fn shutdown(mut self) -> String {
        self.client().shutdown_server().expect("shutdown request");
        self.child.wait().expect("reap");
        let mut err = String::new();
        self.child
            .stderr
            .take()
            .expect("piped stderr")
            .read_to_string(&mut err)
            .expect("read stderr");
        err
    }

    /// Waits for the process to die on its own (injected abort).
    fn wait_dead(mut self) {
        let status = self.child.wait().expect("reap");
        assert!(!status.success(), "server was expected to abort");
    }
}

const SCHEMA: &str = "CREATE TABLE t (p INT, q TEXT); \
     INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three'); \
     CREATE SUMMARY INSTANCE K TYPE CLUSTER THRESHOLD 0.5; \
     LINK SUMMARY K TO t";

fn annotation_sql(text: &str, row: u64) -> String {
    format!("ADD ANNOTATION '{text}' AUTHOR 'crash' ON t WHERE p = {row}")
}

/// All annotation texts across a sharded layout's per-shard snapshot
/// files (`<path>.shard<k>`), sorted. Annotations are partitioned, so
/// the union over shards is the full logical store.
fn texts_in_sharded_snapshots(path: &Path, shards: usize) -> Vec<String> {
    let mut texts = Vec::new();
    for k in 0..shards {
        let db = Database::open(shard_snapshot_path(path, k)).expect("open shard snapshot");
        let count = db.store().stats().count;
        let before = texts.len();
        // Annotation ids are global; each shard holds a subset.
        for raw in 1..=1024u64 {
            if let Ok(a) = db.store().get(insightnotes_common::AnnotationId::new(raw)) {
                texts.push(a.body.text.clone());
            }
        }
        assert_eq!(
            texts.len() - before,
            count,
            "id scan missed shard {k} annotations"
        );
    }
    texts.sort();
    texts
}

/// All annotation texts in a snapshot file, sorted.
fn texts_in_snapshot(path: &Path) -> Vec<String> {
    let db = Database::open(path).expect("open snapshot");
    let count = db.store().stats().count as u64;
    let mut texts: Vec<String> = (1..=count + 16) // ids may be sparse after restarts
        .filter_map(|raw| {
            db.store()
                .get(insightnotes_common::AnnotationId::new(raw))
                .ok()
                .map(|a| a.body.text.clone())
        })
        .collect();
    assert_eq!(
        texts.len() as u64,
        count,
        "dense-id scan missed annotations"
    );
    texts.sort();
    texts
}

#[test]
fn kill_nine_loses_no_acked_annotations() {
    let dir = scratch("kill9");

    // First life: schema plus a group-committed batch, all acked.
    let daemon = Daemon::spawn(&dir, 1, None);
    let mut c = daemon.client();
    c.execute(SCHEMA).expect("schema");
    let batch: Vec<String> = (0..8)
        .map(|i| annotation_sql(&format!("survivor {i}"), i % 3 + 1))
        .collect();
    for item in c.annotate_batch(batch).expect("batch frame") {
        item.expect("batch item acked");
    }
    daemon.kill_nine();

    // Second life: recovery replays the log; the server keeps working.
    let daemon = Daemon::spawn(&dir, 1, None);
    let mut c = daemon.client();
    c.annotate(&annotation_sql("post-restart", 2))
        .expect("annotate after recovery");
    let stderr = daemon.shutdown();
    assert!(
        stderr.contains("recovery:"),
        "restarted server should report recovery, stderr: {stderr}"
    );

    let mut expected: Vec<String> = (0..8).map(|i| format!("survivor {i}")).collect();
    expected.push("post-restart".into());
    expected.sort();
    assert_eq!(texts_in_snapshot(&dir.join("db.indb")), expected);
}

/// The sharded daemon under the same SIGKILL: acked writes are spread
/// across four shard WAL segments with independent committers, and a
/// restart must replay every segment — no acked annotation may be lost
/// on any shard, and the per-shard recovery report must land on stderr.
#[test]
fn sharded_kill_nine_loses_no_acked_annotations() {
    const SHARDS: usize = 4;
    let dir = scratch("kill9-sharded");

    // First life: widen to nine rows so the batch lands on several
    // shards, then ack a group-committed batch.
    let daemon = Daemon::spawn(&dir, SHARDS, None);
    let mut c = daemon.client();
    c.execute(SCHEMA).expect("schema");
    c.execute(
        "INSERT INTO t VALUES (4, 'four'), (5, 'five'), (6, 'six'), \
         (7, 'seven'), (8, 'eight'), (9, 'nine')",
    )
    .expect("widen table");
    let batch: Vec<String> = (0..12)
        .map(|i| annotation_sql(&format!("shard survivor {i}"), i % 9 + 1))
        .collect();
    for item in c.annotate_batch(batch).expect("batch frame") {
        item.expect("batch item acked");
    }
    daemon.kill_nine();

    // Second life: per-shard recovery replays each segment; the server
    // keeps accepting writes.
    let daemon = Daemon::spawn(&dir, SHARDS, None);
    let mut c = daemon.client();
    c.annotate(&annotation_sql("post-restart", 5))
        .expect("annotate after recovery");
    let stderr = daemon.shutdown();
    assert!(
        stderr.contains("recovery: shard 0:") && stderr.contains("recovery: shard 3:"),
        "restart should report per-shard recovery, stderr: {stderr}"
    );
    assert!(
        stderr.contains(&format!("across {SHARDS} shard(s)")),
        "restart should summarise the shard count, stderr: {stderr}"
    );

    let mut expected: Vec<String> = (0..12).map(|i| format!("shard survivor {i}")).collect();
    expected.push("post-restart".into());
    expected.sort();
    assert_eq!(
        texts_in_sharded_snapshots(&dir.join("db.indb"), SHARDS),
        expected
    );
}

#[test]
fn aborted_group_commit_preserves_exactly_the_acked_prefix() {
    let dir = scratch("abort-commit");

    // Ack a baseline, stop cleanly (checkpoints snapshot + rotates WAL).
    let daemon = Daemon::spawn(&dir, 1, None);
    let mut c = daemon.client();
    c.execute(SCHEMA).expect("schema");
    c.annotate(&annotation_sql("acked before crash", 1))
        .expect("baseline annotate");
    daemon.shutdown();

    // Second life dies inside the committer's fsync: the batch is never
    // acked — the client sees the connection drop instead.
    let daemon = Daemon::spawn(&dir, 1, Some("wal.sync.before"));
    let mut c = daemon.client();
    let unacked: Vec<String> = (0..4)
        .map(|i| annotation_sql(&format!("never acked {i}"), 1))
        .collect();
    let outcome = c.annotate_batch(unacked);
    assert!(
        outcome.is_err() || outcome.unwrap().iter().all(std::result::Result::is_err),
        "no item of the aborted batch may carry an Ok ack"
    );
    daemon.wait_dead();

    // Third life: everything acked is back; nothing partial. The
    // unacked batch is one atomic log record that never reached an
    // fsync — with the abort landing before the sync it may only
    // survive if the OS flushed it anyway, in which case it must be
    // complete (all 4) — never a partial group.
    let daemon = Daemon::spawn(&dir, 1, None);
    let mut c = daemon.client();
    c.annotate(&annotation_sql("after recovery", 3))
        .expect("annotate after recovery");
    daemon.shutdown();

    let texts = texts_in_snapshot(&dir.join("db.indb"));
    assert!(texts.contains(&"acked before crash".to_string()));
    assert!(texts.contains(&"after recovery".to_string()));
    let ghosts = texts
        .iter()
        .filter(|t| t.starts_with("never acked"))
        .count();
    assert!(
        ghosts == 0 || ghosts == 4,
        "unacked group must recover atomically, found {ghosts}/4"
    );
}

/// DESIGN.md §12 residual, closed: once a shard's fsync fails, that
/// shard's commits stay disabled for the committer's whole lifetime.
/// The first write after the failure reports the fsync error; every
/// later write is rejected up front (its record never reaches the log),
/// so no annotation whose durability was compensated with an error can
/// silently resurrect. A restart recovers the durable prefix and serves
/// writes again.
#[test]
fn fsync_poisoned_shard_stays_poisoned_for_the_committer_lifetime() {
    let dir = scratch("poisoned");

    // Allow exactly two fsyncs (schema, then one acked annotation);
    // the third fails and must poison the shard.
    let daemon = Daemon::spawn_with(&dir, 1, None, &[("INSIGHTNOTES_SYNC_FAIL_AFTER", "2")]);
    let mut c = daemon.client();
    c.execute(SCHEMA).expect("schema (fsync 1)");
    c.annotate(&annotation_sql("durable before poison", 1))
        .expect("acked annotation (fsync 2)");
    let poisoning = c
        .annotate(&annotation_sql("failed the fsync", 2))
        .unwrap_err();
    assert!(
        poisoning.to_string().contains("injected fsync failure"),
        "first failure should surface the fsync error, got: {poisoning}"
    );
    // Sticky: later, unrelated groups are rejected without ever touching
    // the log — no retry can succeed until the process restarts.
    for i in 0..3 {
        let rejected = c
            .annotate(&annotation_sql(&format!("after poison {i}"), 3))
            .unwrap_err();
        assert!(
            rejected.to_string().contains("commits are disabled"),
            "write {i} after poisoning must be rejected up front, got: {rejected}"
        );
    }
    daemon.kill_nine();

    // Restart without the fault: the acked prefix is intact, writes
    // work again, and nothing rejected after the poisoning resurrects.
    let daemon = Daemon::spawn(&dir, 1, None);
    let mut c = daemon.client();
    c.annotate(&annotation_sql("post-restart", 1))
        .expect("annotate after recovery");
    daemon.shutdown();

    let texts = texts_in_snapshot(&dir.join("db.indb"));
    assert!(texts.contains(&"durable before poison".to_string()));
    assert!(texts.contains(&"post-restart".to_string()));
    assert!(
        !texts.iter().any(|t| t.starts_with("after poison")),
        "poisoned-shard rejections must never reach the log: {texts:?}"
    );
}
