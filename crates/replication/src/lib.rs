#![warn(missing_docs)]
//! # insightnotes-replication
//!
//! WAL-shipping replication: read replicas that tail the primary's
//! per-shard write-ahead logs over the wire.
//!
//! PR 4's epoch-stamped, CRC-framed logical WAL and PR 6's per-shard
//! segments are already a replication stream in disguise — every
//! committed write exists as a self-delimiting record frame in exactly
//! the shard log(s) that executed it. This crate turns those frames
//! into a distribution layer:
//!
//! - **Primary side** ([`feed`]): helpers the server's session loop uses
//!   to answer [`Request::Subscribe`] — plan a subscription (resume at
//!   the subscriber's position, or snapshot-bootstrap it), and read
//!   committed byte ranges out of a shard's log file without holding
//!   engine locks across file I/O. Only the *committed* watermark
//!   ([`Wal::committed_len`]) is ever shipped: a replica sees a record
//!   no earlier than the client that wrote it got its fsynced ack.
//! - **Replica side** ([`replica`]): a [`replica::Replicator`] owns one
//!   tailer thread per primary shard. Each tailer bootstraps from a
//!   streamed snapshot when it has no usable local state, mirrors the
//!   shipped frame bytes into a local log segment (durable *before*
//!   apply), and replays each record through
//!   [`Database::apply_wal_record`] — the same front-door replay
//!   recovery uses, so ids, logical-clock ticks, and cluster-vocabulary
//!   interning reproduce byte-identically. After `kill -9`, the replica
//!   recovers from its own snapshot + mirrored log and resubscribes at
//!   its last applied offset.
//! - **Positions** ([`position::PositionTable`]): the applied
//!   epoch/offset vector a replica server exposes through
//!   [`Request::ReplicaState`], which is what
//!   `Client::wait_for_offset` polls for read-your-writes.
//!
//! [`Request::Subscribe`]: insightnotes_common::wire::Request::Subscribe
//! [`Request::ReplicaState`]: insightnotes_common::wire::Request::ReplicaState
//! [`Wal::committed_len`]: insightnotes_engine::wal::Wal::committed_len
//! [`Database::apply_wal_record`]: insightnotes_engine::Database::apply_wal_record

pub mod feed;
pub mod position;
pub mod replica;

pub use feed::{plan_feed, read_committed, FeedStart, SNAPSHOT_CHUNK_BYTES};
pub use position::PositionTable;
pub use replica::{ReplicaBoot, ReplicaConfig, Replicator};
