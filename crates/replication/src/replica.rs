//! Replica-side runtime: per-shard tailer threads that bootstrap,
//! mirror, and apply the primary's committed log stream.
//!
//! ## On-disk layout
//!
//! A replica owns a directory with one subdirectory per primary shard:
//!
//! ```text
//! <dir>/shard-<k>/meta                  # shard count, epoch, base offset
//! <dir>/shard-<k>/snapshot              # bootstrap state (checkpoint bytes)
//! <dir>/shard-<k>/wal/insightnotes.wal  # mirrored committed frames
//! ```
//!
//! The mirrored log stores the primary's frame *bytes* verbatim behind
//! a `base` offset: local offset `HEADER_BYTES + i` holds the byte the
//! primary has at `base + i`. Frames are made durable locally *before*
//! they are applied to the in-memory engine, so after `kill -9` the
//! shard recovers to exactly its applied prefix (snapshot + mirrored
//! records) and resubscribes from there.
//!
//! The `meta` file is the commit point of a bootstrap: it is removed
//! first and rewritten last when state is reset, so a crash mid-reset
//! always leaves a shard that classifies as cold (wiped and
//! re-bootstrapped) rather than a stale meta over new files.

use std::fs::File;
use std::io::Read;
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use insightnotes_common::wire::{self, Request, Response, ShardPosition};
use insightnotes_common::{Error, Result};
use insightnotes_engine::wal::{self, SyncPolicy, Wal};
use insightnotes_engine::{Database, DbConfig, ShardedDatabase};
use parking_lot::RwLock;

use crate::position::PositionTable;

const META_FILE: &str = "meta";
const SNAPSHOT_FILE: &str = "snapshot";
const WAL_SUBDIR: &str = "wal";
const META_HEADER: &str = "insightnotes-replica-shard v1";

/// How a replica finds and follows its primary.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Primary server address (`host:port`).
    pub primary: String,
    /// Replica state directory (created on demand).
    pub dir: PathBuf,
    /// Delay between reconnect attempts after a broken stream.
    pub reconnect_backoff: Duration,
    /// Socket read-poll tick; also the latency floor for noticing
    /// a stop request while idle.
    pub poll_interval: Duration,
    /// Connect/write timeout, and the stall bound for one in-flight
    /// frame: a frame that starts arriving must finish within this.
    pub io_timeout: Duration,
}

impl ReplicaConfig {
    /// Defaults tuned for same-datacenter replication.
    pub fn new(primary: impl Into<String>, dir: impl Into<PathBuf>) -> Self {
        Self {
            primary: primary.into(),
            dir: dir.into(),
            reconnect_backoff: Duration::from_millis(200),
            poll_interval: Duration::from_millis(25),
            io_timeout: Duration::from_secs(10),
        }
    }
}

/// A running replica: the tailer threads and their applied positions.
///
/// Dropping (or [`Replicator::stop`]) signals the tailers and joins
/// them; the associated engine keeps serving whatever was applied.
#[derive(Debug)]
pub struct Replicator {
    positions: Arc<PositionTable>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

/// Everything [`Replicator::start`] assembles: a queryable engine plus
/// the replication runtime feeding it.
#[derive(Debug)]
pub struct ReplicaBoot {
    /// The local engine, shard layout matching the primary. Reads only —
    /// tailer threads own all mutation.
    pub db: ShardedDatabase,
    /// The running tailer threads.
    pub replicator: Replicator,
    /// Per shard: whether local state survived restart (`true` =
    /// resumed from disk, `false` = cold, will snapshot-bootstrap).
    pub resumed: Vec<bool>,
}

impl Replicator {
    /// Recover local replica state (wiping anything inconsistent),
    /// assemble the engine, and launch one tailer thread per shard.
    ///
    /// The shard count comes from local `meta` files when present,
    /// otherwise from asking the primary, so a cold replica needs the
    /// primary reachable once at startup.
    pub fn start(config: &ReplicaConfig) -> Result<ReplicaBoot> {
        let shards = discover_shards(config)?;
        let mut dbs = Vec::with_capacity(shards);
        let mut tails = Vec::with_capacity(shards);
        let mut resumed = Vec::with_capacity(shards);
        for k in 0..shards {
            let local = recover_shard(&config.dir, k, shards)?;
            resumed.push(local.tail.wal.is_some());
            dbs.push(local.db);
            tails.push(local.tail);
        }
        let db = ShardedDatabase::from_shards(&DbConfig::default(), dbs)?;
        let positions = Arc::new(PositionTable::new(shards));
        for (k, tail) in tails.iter().enumerate() {
            positions.set(k, tail.position());
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::with_capacity(shards);
        for (k, tail) in tails.into_iter().enumerate() {
            let shard = Arc::clone(db.shard(k));
            let positions = Arc::clone(&positions);
            let stop = Arc::clone(&stop);
            let cfg = config.clone();
            threads.push(std::thread::spawn(move || {
                run_tailer(&cfg, k, shards, &shard, tail, &positions, &stop);
            }));
        }
        Ok(ReplicaBoot {
            db,
            replicator: Replicator {
                positions,
                stop,
                threads,
            },
            resumed,
        })
    }

    /// Shared handle to the applied-position table (what a replica
    /// server reports for `ReplicaState`).
    #[must_use]
    pub fn positions(&self) -> Arc<PositionTable> {
        Arc::clone(&self.positions)
    }

    /// Signal every tailer to stop and join them.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Replicator {
    fn drop(&mut self) {
        self.stop();
    }
}

// -- local state ------------------------------------------------------------

/// One shard's replication cursor plus its mirrored log (if any).
#[derive(Debug)]
struct ShardTail {
    epoch: u64,
    /// Primary offset the local log's `HEADER_BYTES` corresponds to.
    base: u64,
    /// `None` = cold: no usable local state, must bootstrap.
    wal: Option<Wal>,
}

impl ShardTail {
    fn position(&self) -> ShardPosition {
        match &self.wal {
            Some(w) => ShardPosition {
                epoch: self.epoch,
                offset: self.base + (w.len() - wal::HEADER_BYTES),
            },
            None => ShardPosition {
                epoch: 0,
                offset: 0,
            },
        }
    }
}

struct LocalShard {
    db: Database,
    tail: ShardTail,
}

fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}"))
}

fn fresh_db() -> Result<Database> {
    Database::with_config(DbConfig::default())
}

/// Recover one shard from disk, wiping it back to cold on any
/// inconsistency (missing/torn files, epoch disagreement, a different
/// shard count) — the stream from the primary re-creates everything.
fn recover_shard(dir: &Path, shard: usize, expect_shards: usize) -> Result<LocalShard> {
    let sdir = shard_dir(dir, shard);
    if let Ok(Some(local)) = try_recover_shard(&sdir, expect_shards) {
        return Ok(local);
    }
    wipe_dir(&sdir)?;
    Ok(LocalShard {
        db: fresh_db()?,
        tail: ShardTail {
            epoch: 0,
            base: 0,
            wal: None,
        },
    })
}

fn try_recover_shard(sdir: &Path, expect_shards: usize) -> Result<Option<LocalShard>> {
    let Some((shards, epoch, base)) = read_meta(&sdir.join(META_FILE))? else {
        return Ok(None);
    };
    if shards != expect_shards {
        return Ok(None);
    }
    let snapshot = match std::fs::read(sdir.join(SNAPSHOT_FILE)) {
        Ok(bytes) => bytes,
        Err(_) => return Ok(None),
    };
    let Some(scan) = Wal::open(&sdir.join(WAL_SUBDIR), SyncPolicy::Batch)? else {
        return Ok(None);
    };
    if scan.wal.epoch() != epoch {
        return Ok(None);
    }
    let mut db = fresh_db()?;
    // lint:allow(wal-bypass) — replica-side replay: durability lives in
    // the mirrored log these records were decoded from, not in re-logging.
    db.install_replica_state(&snapshot)?;
    for record in &scan.records {
        // lint:allow(wal-bypass) — same: replaying the mirrored log.
        db.apply_wal_record(record)?;
    }
    Ok(Some(LocalShard {
        db,
        tail: ShardTail {
            epoch,
            base,
            wal: Some(scan.wal),
        },
    }))
}

fn wipe_dir(dir: &Path) -> Result<()> {
    match std::fs::remove_dir_all(dir) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(e.into()),
    }
}

/// Install a fresh bootstrap on disk: tear down the old generation
/// (meta first), lay down the snapshot and an empty mirrored log for
/// `epoch`, then commit with a new meta (written last).
fn reset_shard_disk(
    sdir: &Path,
    shards: usize,
    epoch: u64,
    base: u64,
    snapshot: &[u8],
) -> Result<Wal> {
    let meta = sdir.join(META_FILE);
    if meta.exists() {
        std::fs::remove_file(&meta)?;
        wal::sync_dir(sdir)?;
    }
    let wal_dir = sdir.join(WAL_SUBDIR);
    if wal_dir.exists() {
        std::fs::remove_dir_all(&wal_dir)?;
    }
    write_durable(&sdir.join(SNAPSHOT_FILE), snapshot)?;
    let mirror = Wal::create(&wal_dir, epoch, SyncPolicy::Batch)?;
    write_meta(&meta, shards, epoch, base)?;
    Ok(mirror)
}

fn write_meta(path: &Path, shards: usize, epoch: u64, base: u64) -> Result<()> {
    let text = format!("{META_HEADER}\nshards {shards}\nepoch {epoch}\nbase {base}\n");
    write_durable(path, text.as_bytes())
}

/// Parse a shard meta file. `Ok(None)` = absent or unparseable (the
/// caller treats both as cold).
fn read_meta(path: &Path) -> Result<Option<(usize, u64, u64)>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut lines = text.lines();
    if lines.next() != Some(META_HEADER) {
        return Ok(None);
    }
    let mut field = |name: &str| -> Option<u64> {
        let line = lines.next()?;
        let value = line.strip_prefix(name)?.strip_prefix(' ')?;
        value.parse().ok()
    };
    let (Some(shards), Some(epoch), Some(base)) = (field("shards"), field("epoch"), field("base"))
    else {
        return Ok(None);
    };
    let Ok(shards) = usize::try_from(shards) else {
        return Ok(None);
    };
    Ok(Some((shards, epoch, base)))
}

/// Write `bytes` to `path` atomically and durably: temp file, fsync,
/// rename, directory fsync.
fn write_durable(path: &Path, bytes: &[u8]) -> Result<()> {
    let Some(parent) = path.parent() else {
        return Err(Error::Execution(format!(
            "replica file path {} has no parent directory",
            path.display()
        )));
    };
    std::fs::create_dir_all(parent)?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        std::io::Write::write_all(&mut f, bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    wal::sync_dir(parent)
}

// -- primary discovery ------------------------------------------------------

fn discover_shards(config: &ReplicaConfig) -> Result<usize> {
    if let Some((shards, _, _)) = read_meta(&shard_dir(&config.dir, 0).join(META_FILE))? {
        if shards > 0 {
            return Ok(shards);
        }
    }
    let state = primary_state(config)?;
    if state.is_empty() {
        return Err(Error::Execution(format!(
            "primary at {} reported zero shards",
            config.primary
        )));
    }
    Ok(state.len())
}

/// One blocking `ReplicaState` round trip against the primary.
fn primary_state(config: &ReplicaConfig) -> Result<Vec<ShardPosition>> {
    let mut stream = connect(config)?;
    stream.set_read_timeout(Some(config.io_timeout))?;
    wire::write_frame(&mut stream, &Request::ReplicaState)?;
    match wire::read_frame::<Response>(&mut stream)? {
        Some(Response::ReplicaState { shards }) => Ok(shards),
        Some(Response::Error(e)) => Err(e.into_error()),
        Some(_) => Err(Error::Execution(
            "primary sent an unexpected reply to ReplicaState".into(),
        )),
        None => Err(Error::Execution(format!(
            "primary at {} closed the connection during discovery",
            config.primary
        ))),
    }
}

fn connect(config: &ReplicaConfig) -> Result<TcpStream> {
    let mut last = None;
    for addr in config.primary.to_socket_addrs()? {
        match TcpStream::connect_timeout(&addr, config.io_timeout) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_write_timeout(Some(config.io_timeout))?;
                stream.set_read_timeout(Some(config.poll_interval))?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    match last {
        Some(e) => Err(e.into()),
        None => Err(Error::Execution(format!(
            "primary address {} resolves to nothing",
            config.primary
        ))),
    }
}

// -- frame polling ----------------------------------------------------------

enum Polled {
    Frame(Response),
    Stopped,
    Closed,
}

fn blocked(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read one response frame, polling so a stop request is noticed while
/// the stream is idle. Once a frame starts arriving it must complete
/// within `stall`.
fn poll_frame(stream: &mut TcpStream, stop: &AtomicBool, stall: Duration) -> Result<Polled> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0usize;
    while filled == 0 {
        if stop.load(Ordering::Relaxed) {
            return Ok(Polled::Stopped);
        }
        match stream.read(&mut len_buf) {
            Ok(0) => return Ok(Polled::Closed),
            Ok(n) => filled = n,
            Err(e) if blocked(&e) || e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let deadline = Instant::now() + stall;
    fill(stream, &mut len_buf, filled, deadline)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > wire::MAX_FRAME_BYTES {
        return Err(Error::Codec(format!(
            "replication frame of {len} bytes exceeds the {}-byte limit",
            wire::MAX_FRAME_BYTES
        )));
    }
    let mut payload = vec![0u8; len];
    fill(stream, &mut payload, 0, deadline)?;
    Ok(Polled::Frame(wire::decode_frame::<Response>(&payload)?))
}

fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    mut filled: usize,
    deadline: Instant,
) -> Result<()> {
    while filled < buf.len() {
        let Some(rest) = buf.get_mut(filled..) else {
            break;
        };
        match stream.read(rest) {
            Ok(0) => {
                return Err(Error::Execution(
                    "replication stream closed mid-frame".into(),
                ))
            }
            Ok(n) => filled += n,
            Err(e) if blocked(&e) || e.kind() == std::io::ErrorKind::Interrupted => {
                if Instant::now() >= deadline {
                    return Err(Error::Execution(
                        "replication stream stalled mid-frame".into(),
                    ));
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

// -- the tailer -------------------------------------------------------------

fn run_tailer(
    cfg: &ReplicaConfig,
    shard: usize,
    shards: usize,
    handle: &Arc<RwLock<Database>>,
    mut tail: ShardTail,
    positions: &PositionTable,
    stop: &AtomicBool,
) {
    while !stop.load(Ordering::Relaxed) {
        // Transient errors (primary down, broken stream, protocol
        // hiccup) all heal the same way: back off, reconnect, and
        // resubscribe from the last applied position.
        let _ = stream_once(cfg, shard, shards, handle, &mut tail, positions, stop);
        if stop.load(Ordering::Relaxed) {
            return;
        }
        std::thread::sleep(cfg.reconnect_backoff);
    }
}

fn stream_once(
    cfg: &ReplicaConfig,
    shard: usize,
    shards: usize,
    handle: &Arc<RwLock<Database>>,
    tail: &mut ShardTail,
    positions: &PositionTable,
    stop: &AtomicBool,
) -> Result<()> {
    let mut stream = connect(cfg)?;
    let pos = tail.position();
    let Ok(shard_u32) = u32::try_from(shard) else {
        return Err(Error::Execution(format!(
            "shard index {shard} overflows u32"
        )));
    };
    wire::write_frame(
        &mut stream,
        &Request::Subscribe {
            shard: shard_u32,
            epoch: pos.epoch,
            offset: pos.offset,
        },
    )?;
    loop {
        match poll_frame(&mut stream, stop, cfg.io_timeout)? {
            Polled::Stopped => return Ok(()),
            Polled::Closed => {
                return Err(Error::Execution(
                    "primary closed the replication stream".into(),
                ))
            }
            Polled::Frame(Response::SubscribeAck {
                epoch,
                offset,
                snapshot,
            }) => {
                if snapshot {
                    let Some(bytes) = receive_snapshot(&mut stream, stop, cfg.io_timeout)? else {
                        return Ok(());
                    };
                    wal::crash_point("replica.bootstrap.before_install");
                    let mirror = reset_shard_disk(
                        &shard_dir(&cfg.dir, shard),
                        shards,
                        epoch,
                        offset,
                        &bytes,
                    )?;
                    // lint:allow(wal-bypass) — bootstrap install: the
                    // snapshot was made durable by reset_shard_disk above.
                    handle.write().install_replica_state(&bytes)?;
                    tail.epoch = epoch;
                    tail.base = offset;
                    tail.wal = Some(mirror);
                    positions.set(shard, tail.position());
                    wal::crash_point("replica.bootstrap.after_install");
                } else if (ShardPosition { epoch, offset }) != tail.position() {
                    return Err(Error::Execution(format!(
                        "primary acknowledged resume at {epoch}/{offset} but shard {shard} \
                         subscribed at {}/{}",
                        tail.position().epoch,
                        tail.position().offset
                    )));
                }
            }
            Polled::Frame(Response::WalFrame {
                epoch,
                offset,
                data,
            }) => {
                apply_frame(handle, tail, shard, epoch, offset, &data)?;
                positions.set(shard, tail.position());
            }
            Polled::Frame(Response::Error(e)) => return Err(e.into_error()),
            Polled::Frame(_) => {
                return Err(Error::Execution(
                    "unexpected frame on the replication stream".into(),
                ))
            }
        }
    }
}

/// Mirror one shipped byte range durably, then replay its records into
/// the engine. Empty `data` is a heartbeat.
fn apply_frame(
    handle: &Arc<RwLock<Database>>,
    tail: &mut ShardTail,
    shard: usize,
    epoch: u64,
    offset: u64,
    data: &[u8],
) -> Result<()> {
    let Some(mirror) = tail.wal.as_mut() else {
        return Err(Error::Execution(format!(
            "primary streamed shard {shard} data before any bootstrap"
        )));
    };
    if epoch != tail.epoch {
        return Err(Error::Execution(format!(
            "shard {shard} stream jumped from epoch {} to {epoch} without a bootstrap",
            tail.epoch
        )));
    }
    if data.is_empty() {
        return Ok(());
    }
    let expected = tail.base + (mirror.len() - wal::HEADER_BYTES);
    if offset != expected {
        return Err(Error::Execution(format!(
            "shard {shard} stream sent offset {offset} where {expected} was expected"
        )));
    }
    // Durable before applied: a crash from here on recovers these
    // records from the local mirror instead of losing the tail.
    mirror.append_raw(data)?;
    mirror.sync()?;
    wal::crash_point("replica.apply.after_mirror");
    let mut cursor = 0usize;
    let mut guard = handle.write();
    while let Some(chunk) = data.get(cursor..) {
        if chunk.is_empty() {
            break;
        }
        let Some((record, used)) = wal::decode_frame(chunk) else {
            return Err(Error::Codec(format!(
                "mirrored shard {shard} bytes hold a torn frame at offset {cursor}"
            )));
        };
        // lint:allow(wal-bypass) — the frame was appended and fsynced to
        // the local mirror before this apply; a crash here replays it.
        guard.apply_wal_record(&record)?;
        cursor += used;
    }
    Ok(())
}

/// Collect a chunked snapshot stream. `Ok(None)` = stop requested.
fn receive_snapshot(
    stream: &mut TcpStream,
    stop: &AtomicBool,
    stall: Duration,
) -> Result<Option<Vec<u8>>> {
    let mut bytes = Vec::new();
    loop {
        match poll_frame(stream, stop, stall)? {
            Polled::Stopped => return Ok(None),
            Polled::Closed => {
                return Err(Error::Execution(
                    "primary closed the stream mid-snapshot".into(),
                ))
            }
            Polled::Frame(Response::SnapshotChunk { data, last }) => {
                bytes.extend_from_slice(&data);
                if last {
                    return Ok(Some(bytes));
                }
            }
            Polled::Frame(Response::Error(e)) => return Err(e.into_error()),
            Polled::Frame(_) => {
                return Err(Error::Execution(
                    "unexpected frame inside a snapshot stream".into(),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "insightnotes-replica-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn meta_round_trips_and_rejects_garbage() {
        let dir = temp_dir("meta");
        let path = dir.join(META_FILE);
        write_meta(&path, 4, 7, 1234).expect("write");
        assert_eq!(read_meta(&path).expect("read"), Some((4, 7, 1234)));
        std::fs::write(&path, "not a meta file\n").expect("clobber");
        assert_eq!(read_meta(&path).expect("read"), None);
        assert_eq!(read_meta(&dir.join("absent")).expect("read"), None);
    }

    #[test]
    fn inconsistent_shard_state_is_wiped_back_to_cold() {
        let dir = temp_dir("wipe");
        // A meta with no snapshot behind it is inconsistent.
        let sdir = shard_dir(&dir, 0);
        write_meta(&sdir.join(META_FILE), 1, 3, 99).expect("write");
        let local = recover_shard(&dir, 0, 1).expect("recover");
        assert!(local.tail.wal.is_none());
        assert_eq!(
            local.tail.position(),
            ShardPosition {
                epoch: 0,
                offset: 0
            }
        );
        assert!(
            !sdir.join(META_FILE).exists(),
            "wipe removes the stale meta"
        );
    }

    #[test]
    fn bootstrap_reset_then_recover_resumes_at_base() {
        let dir = temp_dir("reset");
        let sdir = shard_dir(&dir, 0);
        let snapshot = Database::new().snapshot_bytes();
        let mirror = reset_shard_disk(&sdir, 1, 2, 500, &snapshot).expect("reset");
        assert_eq!(mirror.epoch(), 2);
        drop(mirror);
        let local = recover_shard(&dir, 0, 1).expect("recover");
        assert!(local.tail.wal.is_some());
        assert_eq!(
            local.tail.position(),
            ShardPosition {
                epoch: 2,
                offset: 500
            }
        );
        // A different shard count invalidates the state.
        let local = recover_shard(&dir, 0, 2).expect("recover");
        assert!(local.tail.wal.is_none());
    }
}
