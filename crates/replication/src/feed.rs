//! Primary-side feed planning: deciding how a subscriber joins a
//! shard's stream and reading committed log ranges for shipment.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::sync::Arc;

use insightnotes_common::{Error, Result};
use insightnotes_engine::{wal, Database};
use parking_lot::RwLock;

/// Snapshot payloads are streamed in chunks of at most this many bytes
/// so a bootstrap never needs a single frame anywhere near
/// `MAX_FRAME_BYTES`, and the replica can observe progress.
pub const SNAPSHOT_CHUNK_BYTES: usize = 1 << 20;

/// How a subscription to one shard starts.
#[derive(Debug)]
pub enum FeedStart {
    /// The subscriber's position is a committed prefix of the current
    /// epoch's log: tail from there, no state transfer needed.
    Resume {
        /// Epoch being tailed.
        epoch: u64,
        /// Byte offset tailing starts from.
        offset: u64,
    },
    /// The subscriber needs a full state transfer: install `snapshot`,
    /// then tail `epoch` from `offset`.
    Bootstrap {
        /// Epoch the snapshot belongs to.
        epoch: u64,
        /// Log offset the snapshot covers up to (tailing starts here).
        offset: u64,
        /// Serialized engine state (same bytes as a checkpoint file).
        snapshot: Vec<u8>,
    },
}

fn wal_required() -> Error {
    Error::Execution(
        "replication requires the primary to run with a write-ahead log (--wal-dir)".into(),
    )
}

/// Decide how a subscriber at (`epoch`, `offset`) joins `shard`'s feed.
///
/// A subscriber resumes when it sits on a committed prefix of the
/// current epoch; anything else (cold start, epoch from before a
/// checkpoint rotation, an offset the log has never committed) gets a
/// snapshot bootstrap. The bootstrap capture runs entirely under the
/// shard's read guard: readers exclude writers, so forcing the log
/// durable and serializing state observe the same logical instant, and
/// the captured `offset` is exactly the log length that snapshot covers.
pub fn plan_feed(shard: &Arc<RwLock<Database>>, epoch: u64, offset: u64) -> Result<FeedStart> {
    let guard = shard.read();
    let Some((current_epoch, committed)) = guard.wal_committed() else {
        return Err(wal_required());
    };
    if epoch == current_epoch && offset >= wal::HEADER_BYTES && offset <= committed {
        return Ok(FeedStart::Resume { epoch, offset });
    }
    guard.wal_sync()?;
    let Some((snap_epoch, snap_offset)) = guard.wal_committed() else {
        return Err(wal_required());
    };
    Ok(FeedStart::Bootstrap {
        epoch: snap_epoch,
        offset: snap_offset,
        snapshot: guard.snapshot_bytes(),
    })
}

/// Read the committed byte range `[from, committed_len)` of `shard`'s
/// log for epoch `epoch`.
///
/// Returns `Ok(None)` when the shard's log is no longer on `epoch`
/// (checkpoint rotation truncated it) — the caller should re-plan the
/// feed. Returns `Ok(Some((from, [])))` when the subscriber is already
/// caught up. The file read itself happens on an independent handle
/// with no engine lock held: the log is append-only within an epoch, so
/// a committed prefix is immutable, and the epoch is re-checked after
/// reading to reject bytes that raced a rotation.
pub fn read_committed(
    shard: &Arc<RwLock<Database>>,
    epoch: u64,
    from: u64,
) -> Result<Option<(u64, Vec<u8>)>> {
    let (path, committed) = {
        let guard = shard.read();
        let Some((current_epoch, committed)) = guard.wal_committed() else {
            return Err(wal_required());
        };
        if current_epoch != epoch {
            return Ok(None);
        }
        let Some(path) = guard.wal_path() else {
            return Err(wal_required());
        };
        (path, committed)
    };
    if committed < from {
        return Ok(None);
    }
    if committed == from {
        return Ok(Some((from, Vec::new())));
    }
    let want = usize::try_from(committed - from)
        .map_err(|_| Error::Execution("committed log range exceeds addressable memory".into()))?;
    let mut file = File::open(&path)?;
    file.seek(SeekFrom::Start(from))?;
    let mut data = vec![0u8; want];
    let mut filled = 0usize;
    while filled < want {
        let Some(buf) = data.get_mut(filled..) else {
            break;
        };
        match file.read(buf) {
            // Shorter than the committed length we captured: the file
            // was truncated by a rotation mid-read. Re-plan.
            Ok(0) => return Ok(None),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    // Rotation truncates the file in place; bytes read across one are
    // garbage even if the length matched. Re-check before shipping.
    {
        let guard = shard.read();
        match guard.wal_committed() {
            Some((current_epoch, _)) if current_epoch == epoch => {}
            _ => return Ok(None),
        }
    }
    Ok(Some((committed, data)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_engine::{wal::SyncPolicy, Database, DbConfig};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "insightnotes-feed-test-{}-{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn wal_db(dir: &std::path::Path) -> Arc<RwLock<Database>> {
        let config = DbConfig {
            wal_dir: Some(dir.to_path_buf()),
            wal_sync: SyncPolicy::Batch,
            ..DbConfig::default()
        };
        let db = Database::with_config(config).expect("open");
        Arc::new(RwLock::new(db))
    }

    fn run(db: &Arc<RwLock<Database>>, sql: &str) {
        db.write().execute_sql(sql).expect("execute");
    }

    #[test]
    fn cold_subscriber_gets_bootstrap_and_resume_reads_committed_bytes() {
        let dir = temp_dir("bootstrap-resume");
        let db = wal_db(&dir);
        run(&db, "CREATE TABLE genes (id INT, name TEXT)");
        run(&db, "INSERT INTO genes VALUES (1, 'brca1')");

        let FeedStart::Bootstrap {
            epoch,
            offset,
            snapshot,
        } = plan_feed(&db, 0, 0).expect("plan")
        else {
            panic!("cold subscriber must bootstrap");
        };
        assert!(offset > wal::HEADER_BYTES);
        assert!(!snapshot.is_empty());

        // At the snapshot position the subscriber resumes, and is
        // initially caught up.
        let FeedStart::Resume { .. } = plan_feed(&db, epoch, offset).expect("plan resume") else {
            panic!("snapshot position must resume");
        };
        let (end, bytes) = read_committed(&db, epoch, offset)
            .expect("read")
            .expect("same epoch");
        assert_eq!((end, bytes.len()), (offset, 0));

        // New committed writes become readable frame bytes.
        run(&db, "INSERT INTO genes VALUES (2, 'tp53')");
        db.read().wal_sync().expect("sync");
        let (end, bytes) = read_committed(&db, epoch, offset)
            .expect("read")
            .expect("same epoch");
        assert!(end > offset);
        assert_eq!(bytes.len() as u64, end - offset);
        let (record, used) = wal::decode_frame(&bytes).expect("frame decodes");
        assert_eq!(used, bytes.len());
        drop(record);

        // A subscriber from a different epoch is told to re-plan.
        assert!(read_committed(&db, epoch + 1, offset)
            .expect("read")
            .is_none());
        let FeedStart::Bootstrap { .. } = plan_feed(&db, epoch + 1, offset).expect("plan") else {
            panic!("foreign epoch must bootstrap");
        };
    }

    #[test]
    fn wal_less_primary_refuses_to_feed() {
        let db = Arc::new(RwLock::new(Database::new()));
        assert!(plan_feed(&db, 0, 0).is_err());
        assert!(read_committed(&db, 0, 0).is_err());
    }
}
