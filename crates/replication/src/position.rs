//! Applied-position tracking shared between tailer threads and the
//! serving layer.

use insightnotes_common::wire::ShardPosition;
use parking_lot::witness::class as lock_class;
use parking_lot::Mutex;

/// Per-shard applied (epoch, offset) vector.
///
/// Each tailer thread publishes its shard's position *after* the
/// corresponding records have been applied to the local engine, so any
/// position read from this table is backed by locally queryable state —
/// that ordering is what makes `Client::wait_for_offset` deliver
/// read-your-writes. A single mutex over the whole vector (rather than
/// per-shard atomics) keeps every `snapshot` internally consistent:
/// no torn (epoch, offset) pairs.
#[derive(Debug)]
pub struct PositionTable {
    slots: Mutex<Vec<ShardPosition>>,
}

impl PositionTable {
    /// A table for `shards` shards, all starting at the cold position
    /// (epoch 0, offset 0), which the primary never uses for live data
    /// (live offsets start past the log header).
    #[must_use]
    pub fn new(shards: usize) -> Self {
        Self {
            slots: Mutex::new(vec![
                ShardPosition {
                    epoch: 0,
                    offset: 0
                };
                shards
            ])
            .with_class(lock_class::REACTOR),
        }
    }

    /// Number of shards tracked.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.slots.lock().len()
    }

    /// The applied position of one shard, or `None` for an out-of-range
    /// index.
    #[must_use]
    pub fn get(&self, shard: usize) -> Option<ShardPosition> {
        self.slots.lock().get(shard).copied()
    }

    /// Publish a new applied position for one shard. Out-of-range
    /// indexes are ignored (the table's width is fixed at startup).
    pub fn set(&self, shard: usize, pos: ShardPosition) {
        if let Some(slot) = self.slots.lock().get_mut(shard) {
            *slot = pos;
        }
    }

    /// A consistent copy of the whole vector.
    #[must_use]
    pub fn snapshot(&self) -> Vec<ShardPosition> {
        self.slots.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_cold_and_tracks_sets() {
        let table = PositionTable::new(3);
        assert_eq!(table.shard_count(), 3);
        assert_eq!(
            table.get(1),
            Some(ShardPosition {
                epoch: 0,
                offset: 0
            })
        );
        table.set(
            1,
            ShardPosition {
                epoch: 2,
                offset: 99,
            },
        );
        assert_eq!(
            table.get(1),
            Some(ShardPosition {
                epoch: 2,
                offset: 99
            })
        );
        assert_eq!(table.get(7), None);
        table.set(
            7,
            ShardPosition {
                epoch: 1,
                offset: 1,
            },
        );
        assert_eq!(table.snapshot().len(), 3);
    }
}
