//! The row store.
//!
//! A table holds rows under stable [`RowId`]s: ids are assigned
//! monotonically on insert and never reused after deletion. Annotations and
//! summary objects reference rows by id, so id reuse would silently
//! re-attach old metadata to new data — the one storage bug class this
//! design rules out by construction.
//!
//! Tables also support **hash indexes** on single columns: point
//! predicates (`col = const`) then resolve to row ids without a scan —
//! the access path `ADD ANNOTATION … WHERE id = k` and point queries
//! lean on once tables grow.

use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use insightnotes_common::{codec, Error, Result, RowId, TableId};
use std::collections::{BTreeMap, HashMap};

/// A named relation with stable row ids and optional hash indexes.
#[derive(Debug, Clone)]
pub struct Table {
    id: TableId,
    name: String,
    schema: Schema,
    rows: BTreeMap<RowId, Row>,
    next_row: u64,
    /// Hash indexes keyed by column ordinal: value group-key → row ids
    /// (in insertion order). NULLs are not indexed (a NULL key never
    /// matches an equality predicate).
    indexes: BTreeMap<u16, HashMap<Vec<u8>, Vec<RowId>>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: TableId, name: impl Into<String>, schema: Schema) -> Self {
        Self {
            id,
            name: name.into().to_ascii_lowercase(),
            schema,
            rows: BTreeMap::new(),
            next_row: 1,
            indexes: BTreeMap::new(),
        }
    }

    /// Builds a hash index on a column (idempotent).
    pub fn create_index(&mut self, col: u16) -> Result<()> {
        if col as usize >= self.schema.arity() {
            return Err(Error::Catalog(format!(
                "no column ordinal {col} in table `{}`",
                self.name
            )));
        }
        if self.indexes.contains_key(&col) {
            return Ok(());
        }
        let mut index: HashMap<Vec<u8>, Vec<RowId>> = HashMap::new();
        for (rid, row) in &self.rows {
            if let Some(key) = index_key(&row[col as usize]) {
                index.entry(key).or_default().push(*rid);
            }
        }
        self.indexes.insert(col, index);
        Ok(())
    }

    /// Drops the index on a column, returning whether one existed.
    pub fn drop_index(&mut self, col: u16) -> bool {
        self.indexes.remove(&col).is_some()
    }

    /// Ordinals of the indexed columns.
    pub fn indexed_columns(&self) -> Vec<u16> {
        self.indexes.keys().copied().collect()
    }

    /// True when `col` carries a hash index.
    pub fn has_index(&self, col: u16) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Row ids whose `col` equals `value`, via the index.
    ///
    /// Returns `None` when the column is not indexed (caller falls back
    /// to a scan); NULL probes return an empty slice (SQL equality never
    /// matches NULL).
    pub fn index_lookup(&self, col: u16, value: &Value) -> Option<&[RowId]> {
        let index = self.indexes.get(&col)?;
        let Some(key) = index_key(value) else {
            return Some(&[]);
        };
        Some(index.get(&key).map_or(&[], Vec::as_slice))
    }

    /// Table id.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Table name (lowercase).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row after validating arity and per-column type
    /// assignability. Returns the new row's id.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        if row.arity() != self.schema.arity() {
            return Err(Error::Execution(format!(
                "table `{}` expects {} values, got {}",
                self.name,
                self.schema.arity(),
                row.arity()
            )));
        }
        for (i, v) in row.values().iter().enumerate() {
            let col = self.schema.column(i).expect("arity checked");
            if !v.assignable_to(col.dtype) {
                return Err(Error::Type(format!(
                    "column `{}` of table `{}` is {}, got {v:?}",
                    col.name, self.name, col.dtype
                )));
            }
        }
        let rid = RowId::new(self.next_row);
        self.next_row += 1;
        for (&col, index) in &mut self.indexes {
            if let Some(key) = index_key(&row[col as usize]) {
                index.entry(key).or_default().push(rid);
            }
        }
        self.rows.insert(rid, row);
        Ok(rid)
    }

    /// Fetches a row by id.
    pub fn get(&self, rid: RowId) -> Option<&Row> {
        self.rows.get(&rid)
    }

    /// Deletes a row, returning it if it existed. The id is retired.
    pub fn delete(&mut self, rid: RowId) -> Option<Row> {
        let row = self.rows.remove(&rid)?;
        for (&col, index) in &mut self.indexes {
            if let Some(key) = index_key(&row[col as usize]) {
                if let Some(ids) = index.get_mut(&key) {
                    ids.retain(|&r| r != rid);
                    if ids.is_empty() {
                        index.remove(&key);
                    }
                }
            }
        }
        Some(row)
    }

    /// Iterates `(RowId, &Row)` in id order.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        self.rows.iter().map(|(&rid, row)| (rid, row))
    }

    /// All live row ids in order.
    pub fn row_ids(&self) -> impl Iterator<Item = RowId> + '_ {
        self.rows.keys().copied()
    }
}

/// Index key of a value: its group key, or `None` for NULL (never
/// indexed — equality never matches NULL).
fn index_key(value: &Value) -> Option<Vec<u8>> {
    if value.is_null() {
        return None;
    }
    let mut key = Vec::with_capacity(10);
    value.group_key(&mut key);
    Some(key)
}

impl codec::Encodable for Table {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.u32(self.id.raw());
        enc.str(&self.name);
        self.schema.encode(enc);
        enc.varint(self.next_row);
        enc.seq(&self.indexed_columns(), |e, &c| e.varint(c as u64));
        enc.varint(self.rows.len() as u64);
        for (rid, row) in &self.rows {
            enc.varint(rid.raw());
            row.encode(enc);
        }
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        let id = TableId::new(dec.u32()?);
        let name = dec.str()?;
        let schema = crate::schema::Schema::decode(dec)?;
        let next_row = dec.varint()?;
        let indexed: Vec<u16> = dec.seq(|d| Ok(d.varint()? as u16))?;
        let n = dec.varint()? as usize;
        let mut rows = BTreeMap::new();
        for _ in 0..n {
            let rid = RowId::new(dec.varint()?);
            if rid.raw() >= next_row {
                return Err(Error::Codec(format!(
                    "row id {rid} not below next_row {next_row}"
                )));
            }
            rows.insert(rid, Row::decode(dec)?);
        }
        let mut table = Table {
            id,
            name,
            schema,
            rows,
            next_row,
            indexes: BTreeMap::new(),
        };
        // Index content is rebuilt, not persisted.
        for col in indexed {
            table.create_index(col)?;
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::{DataType, Value};

    fn birds() -> Table {
        Table::new(
            TableId::new(1),
            "Birds",
            Schema::new(vec![
                Column::new("name", DataType::Text),
                Column::new("weight", DataType::Float),
            ]),
        )
    }

    #[test]
    fn insert_assigns_monotonic_ids() {
        let mut t = birds();
        let a = t
            .insert(Row::new(vec!["swan".into(), Value::Float(3.0)]))
            .unwrap();
        let b = t
            .insert(Row::new(vec!["goose".into(), Value::Float(2.5)]))
            .unwrap();
        assert!(b > a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(), "birds");
    }

    #[test]
    fn deleted_ids_are_never_reused() {
        let mut t = birds();
        let a = t
            .insert(Row::new(vec!["swan".into(), Value::Float(3.0)]))
            .unwrap();
        t.delete(a).unwrap();
        let b = t
            .insert(Row::new(vec!["goose".into(), Value::Float(2.5)]))
            .unwrap();
        assert_ne!(a, b);
        assert!(t.get(a).is_none());
        assert!(t.get(b).is_some());
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut t = birds();
        assert!(t.insert(Row::new(vec!["swan".into()])).is_err());
        assert!(t
            .insert(Row::new(vec![Value::Int(1), Value::Float(3.0)]))
            .is_err());
        // Int widens into a Float column.
        assert!(t
            .insert(Row::new(vec!["swan".into(), Value::Int(3)]))
            .is_ok());
        // NULL goes anywhere.
        assert!(t.insert(Row::new(vec![Value::Null, Value::Null])).is_ok());
    }

    #[test]
    fn scan_yields_rows_in_id_order() {
        let mut t = birds();
        for i in 0..5 {
            t.insert(Row::new(vec![
                Value::Text(format!("b{i}")),
                Value::Float(i as f64),
            ]))
            .unwrap();
        }
        let ids: Vec<u64> = t.scan().map(|(rid, _)| rid.raw()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }
}

#[cfg(test)]
mod index_tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn table_with_rows() -> Table {
        let mut t = Table::new(
            TableId::new(1),
            "t",
            Schema::new(vec![
                Column::new("x", DataType::Int),
                Column::new("s", DataType::Text),
            ]),
        );
        for (x, s) in [(1, "a"), (2, "b"), (1, "c"), (3, "d")] {
            t.insert(Row::new(vec![Value::Int(x), Value::Text(s.into())]))
                .unwrap();
        }
        t
    }

    #[test]
    fn index_lookup_finds_all_matches() {
        let mut t = table_with_rows();
        t.create_index(0).unwrap();
        assert!(t.has_index(0));
        let hits = t.index_lookup(0, &Value::Int(1)).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(t.index_lookup(0, &Value::Int(9)).unwrap().is_empty());
        // Unindexed column → None (fall back to scan).
        assert!(t.index_lookup(1, &Value::Text("a".into())).is_none());
    }

    #[test]
    fn index_stays_consistent_under_insert_and_delete() {
        let mut t = table_with_rows();
        t.create_index(0).unwrap();
        let rid = t
            .insert(Row::new(vec![Value::Int(1), Value::Text("e".into())]))
            .unwrap();
        assert_eq!(t.index_lookup(0, &Value::Int(1)).unwrap().len(), 3);
        t.delete(rid);
        assert_eq!(t.index_lookup(0, &Value::Int(1)).unwrap().len(), 2);
    }

    #[test]
    fn nulls_are_not_indexed_and_never_match() {
        let mut t = table_with_rows();
        t.insert(Row::new(vec![Value::Null, Value::Text("n".into())]))
            .unwrap();
        t.create_index(0).unwrap();
        assert!(t.index_lookup(0, &Value::Null).unwrap().is_empty());
    }

    #[test]
    fn cross_type_numeric_probes_match() {
        let mut t = table_with_rows();
        t.create_index(0).unwrap();
        // 1 and 1.0 share a group key.
        assert_eq!(t.index_lookup(0, &Value::Float(1.0)).unwrap().len(), 2);
    }

    #[test]
    fn create_index_is_idempotent_and_droppable() {
        let mut t = table_with_rows();
        t.create_index(0).unwrap();
        t.create_index(0).unwrap();
        assert_eq!(t.indexed_columns(), vec![0]);
        assert!(t.drop_index(0));
        assert!(!t.drop_index(0));
        assert!(t.create_index(99).is_err());
    }

    #[test]
    fn indexes_rebuild_through_codec() {
        use insightnotes_common::codec::Encodable;
        let mut t = table_with_rows();
        t.create_index(0).unwrap();
        let back = Table::from_bytes(&t.to_bytes()).unwrap();
        assert!(back.has_index(0));
        assert_eq!(back.index_lookup(0, &Value::Int(1)).unwrap().len(), 2);
    }
}
