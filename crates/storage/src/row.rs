//! Rows.
//!
//! A row is an ordered vector of values. Rows are passed through the
//! executor by value (operators transform them), and serialized by the
//! result cache, so they implement the binary codec.

use crate::value::Value;
use insightnotes_common::{codec, Result};
use std::fmt;
use std::ops::Index;

/// An ordered tuple of values.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Creates a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Value at position `i`, if in range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Builds a new row from the given column ordinals (projection).
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Concatenates two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(other.values());
        Row::new(values)
    }

    /// Stable byte key over the given columns, for hash grouping and
    /// duplicate elimination.
    pub fn group_key(&self, indices: &[usize]) -> Vec<u8> {
        let mut key = Vec::with_capacity(indices.len() * 10);
        for &i in indices {
            self.values[i].group_key(&mut key);
        }
        key
    }

    /// Approximate in-memory size in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.values.iter().map(Value::approx_bytes).sum::<usize>() + std::mem::size_of::<Row>()
    }

    /// Consumes the row, yielding its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let vals: Vec<String> = self.values.iter().map(Value::to_string).collect();
        write!(f, "({})", vals.join(", "))
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

impl codec::Encodable for Row {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.varint(self.values.len() as u64);
        for v in &self.values {
            v.encode(enc);
        }
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        let len = dec.varint()? as usize;
        let mut values = Vec::with_capacity(len.min(1 << 12));
        for _ in 0..len {
            values.push(Value::decode(dec)?);
        }
        Ok(Row::new(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_common::codec::Encodable;

    fn row() -> Row {
        Row::new(vec![Value::Int(1), Value::Text("swan".into()), Value::Null])
    }

    #[test]
    fn project_and_concat() {
        let r = row();
        assert_eq!(r.project(&[2, 0]).values(), &[Value::Null, Value::Int(1)]);
        let joined = r.concat(&Row::new(vec![Value::Bool(true)]));
        assert_eq!(joined.arity(), 4);
        assert_eq!(joined[3], Value::Bool(true));
    }

    #[test]
    fn group_key_distinguishes_value_order() {
        let a = Row::new(vec![Value::Int(1), Value::Int(2)]);
        let b = Row::new(vec![Value::Int(2), Value::Int(1)]);
        assert_ne!(a.group_key(&[0, 1]), b.group_key(&[0, 1]));
        assert_eq!(a.group_key(&[0]), b.group_key(&[1]));
    }

    #[test]
    fn rows_round_trip_through_codec() {
        let r = row();
        assert_eq!(Row::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn display_is_tuple_like() {
        assert_eq!(row().to_string(), "(1, swan, NULL)");
    }
}
