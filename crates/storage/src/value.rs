//! Typed values and data types.
//!
//! The value model is intentionally small (NULL, 64-bit integer, 64-bit
//! float, UTF-8 text, boolean) — enough for the paper's workloads (bird
//! records, gene records, numeric measurements) without distracting from
//! the annotation machinery.

use insightnotes_common::{codec, Error, Result};
use std::cmp::Ordering;
use std::fmt;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Parses a type name as written in `CREATE TABLE` (case-insensitive;
    /// accepts common SQL synonyms).
    pub fn parse(name: &str) -> Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "int" | "integer" | "bigint" => Ok(DataType::Int),
            "float" | "double" | "real" => Ok(DataType::Float),
            "text" | "varchar" | "string" | "char" => Ok(DataType::Text),
            "bool" | "boolean" => Ok(DataType::Bool),
            other => Err(Error::Type(format!("unknown data type `{other}`"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL. Compares equal to itself for grouping/distinct purposes
    /// (the pragmatic choice most engines make for GROUP BY), but fails all
    /// ordering comparisons in predicates.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value's data type, or `None` for NULL.
    pub fn dtype(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether the value is assignable to a column of type `dtype`
    /// (NULL is assignable to everything; Int widens to Float).
    pub fn assignable_to(&self, dtype: DataType) -> bool {
        matches!(
            (self, dtype),
            (Value::Null, _)
                | (Value::Int(_), DataType::Int | DataType::Float)
                | (Value::Float(_), DataType::Float)
                | (Value::Text(_), DataType::Text)
                | (Value::Bool(_), DataType::Bool)
        )
    }

    /// Numeric view (Int widened to f64), used by arithmetic and
    /// aggregation.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is NULL or the types are
    /// incomparable; numeric types compare cross-type.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used by ORDER BY and grouping: NULL sorts first,
    /// then values by type (numeric < text < bool), then by value. Unlike
    /// [`Value::sql_cmp`], this never fails.
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) | Value::Float(_) => 1,
                Value::Text(_) => 2,
                Value::Bool(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                let (x, y) = (a.as_f64().unwrap(), b.as_f64().unwrap());
                x.partial_cmp(&y).unwrap_or(Ordering::Equal)
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Grouping equality: NULLs group together; numerics compare
    /// cross-type.
    pub fn group_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }

    /// A stable byte key for hash grouping / duplicate elimination.
    /// Cross-type-equal numerics (e.g. `1` and `1.0`) map to the same key.
    pub fn group_key(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Int(i) => {
                out.push(1);
                out.extend_from_slice(&(*i as f64).to_bits().to_le_bytes());
            }
            Value::Float(f) => {
                out.push(1);
                // Normalize -0.0 and NaN payloads for stable grouping.
                let f = if *f == 0.0 { 0.0 } else { *f };
                let bits = if f.is_nan() {
                    f64::NAN.to_bits()
                } else {
                    f.to_bits()
                };
                out.extend_from_slice(&bits.to_le_bytes());
            }
            Value::Text(s) => {
                out.push(2);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                out.push(3);
                out.push(*b as u8);
            }
        }
    }

    /// Approximate in-memory size in bytes (used by cache sizing).
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Value>()
            + match self {
                Value::Text(s) => s.capacity(),
                _ => 0,
            }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl codec::Encodable for Value {
    fn encode(&self, enc: &mut codec::Encoder) {
        match self {
            Value::Null => enc.u8(0),
            Value::Int(i) => {
                enc.u8(1);
                enc.i64(*i);
            }
            Value::Float(f) => {
                enc.u8(2);
                enc.f64(*f);
            }
            Value::Text(s) => {
                enc.u8(3);
                enc.str(s);
            }
            Value::Bool(b) => {
                enc.u8(4);
                enc.bool(*b);
            }
        }
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        Ok(match dec.u8()? {
            0 => Value::Null,
            1 => Value::Int(dec.i64()?),
            2 => Value::Float(dec.f64()?),
            3 => Value::Text(dec.str()?),
            4 => Value::Bool(dec.bool()?),
            t => return Err(Error::Codec(format!("invalid value tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_common::codec::Encodable;

    #[test]
    fn dtype_parse_accepts_synonyms() {
        assert_eq!(DataType::parse("VARCHAR").unwrap(), DataType::Text);
        assert_eq!(DataType::parse("integer").unwrap(), DataType::Int);
        assert_eq!(DataType::parse("Double").unwrap(), DataType::Float);
        assert_eq!(DataType::parse("BOOLEAN").unwrap(), DataType::Bool);
        assert!(DataType::parse("blob").is_err());
    }

    #[test]
    fn sql_cmp_crosses_numeric_types_and_rejects_null() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Text("1".into())), None);
    }

    #[test]
    fn sort_cmp_is_total_with_nulls_first() {
        let mut vals = [
            Value::Text("b".into()),
            Value::Int(3),
            Value::Null,
            Value::Float(1.5),
            Value::Bool(true),
        ];
        vals.sort_by(super::Value::sort_cmp);
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Float(1.5));
        assert_eq!(vals[2], Value::Int(3));
        assert_eq!(vals[3], Value::Text("b".into()));
        assert_eq!(vals[4], Value::Bool(true));
    }

    #[test]
    fn group_keys_unify_cross_type_numerics_and_nulls() {
        let key = |v: &Value| {
            let mut k = Vec::new();
            v.group_key(&mut k);
            k
        };
        assert_eq!(key(&Value::Int(1)), key(&Value::Float(1.0)));
        assert_eq!(key(&Value::Null), key(&Value::Null));
        assert_ne!(key(&Value::Int(1)), key(&Value::Int(2)));
        assert_eq!(key(&Value::Float(0.0)), key(&Value::Float(-0.0)));
    }

    #[test]
    fn group_eq_matches_group_key_semantics() {
        assert!(Value::Null.group_eq(&Value::Null));
        assert!(Value::Int(1).group_eq(&Value::Float(1.0)));
        assert!(!Value::Int(1).group_eq(&Value::Null));
    }

    #[test]
    fn assignability_widens_ints() {
        assert!(Value::Int(1).assignable_to(DataType::Float));
        assert!(!Value::Float(1.0).assignable_to(DataType::Int));
        assert!(Value::Null.assignable_to(DataType::Bool));
        assert!(!Value::Text("x".into()).assignable_to(DataType::Int));
    }

    #[test]
    fn values_round_trip_through_codec() {
        for v in [
            Value::Null,
            Value::Int(-5),
            Value::Float(2.25),
            Value::Text("swan goose".into()),
            Value::Bool(false),
        ] {
            assert_eq!(Value::from_bytes(&v.to_bytes()).unwrap(), v);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }
}
