//! Schemas and column resolution.
//!
//! Columns may carry a *qualifier* (the table name or alias they came
//! from), which is how the planner resolves `r.a` vs `s.x` in queries like
//! Figure 2's. Base-table schemas are unqualified; the planner qualifies
//! them when binding a `FROM` entry.

use crate::value::DataType;
use insightnotes_common::{codec, Error, Result};
use std::fmt;

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lowercased at creation).
    pub name: String,
    /// Declared data type.
    pub dtype: DataType,
    /// Table name or alias this column is visible under, if any.
    pub qualifier: Option<String>,
}

impl Column {
    /// Creates an unqualified column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Self {
            name: name.into().to_ascii_lowercase(),
            dtype,
            qualifier: None,
        }
    }

    /// Returns a copy visible under `qualifier`.
    pub fn qualified(&self, qualifier: &str) -> Self {
        Self {
            name: self.name.clone(),
            dtype: self.dtype,
            qualifier: Some(qualifier.to_ascii_lowercase()),
        }
    }

    /// `qualifier.name` or bare `name`.
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Creates a schema from columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Self { columns }
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> Option<&Column> {
        self.columns.get(i)
    }

    /// Resolves a possibly-qualified name (`a` / `r.a`) to its ordinal.
    ///
    /// Errors on unknown names and on ambiguous bare names (a bare name
    /// matching columns under two different qualifiers).
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let name = name.to_ascii_lowercase();
        let qualifier = qualifier.map(str::to_ascii_lowercase);
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name == name
                    && match &qualifier {
                        Some(q) => c.qualifier.as_deref() == Some(q.as_str()),
                        None => true,
                    }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(Error::Catalog(format!(
                "unknown column `{}`",
                match &qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name,
                }
            ))),
            1 => Ok(matches[0]),
            _ => Err(Error::Catalog(format!("ambiguous column `{name}`"))),
        }
    }

    /// Concatenates two schemas (join output).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema::new(columns)
    }

    /// Projects a subset of columns by ordinal.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.columns[i].clone()).collect())
    }

    /// Returns a copy with every column visible under `qualifier`.
    pub fn qualify(&self, qualifier: &str) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| c.qualified(qualifier))
                .collect(),
        )
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("{} {}", c.display_name(), c.dtype))
            .collect();
        write!(f, "({})", cols.join(", "))
    }
}

impl codec::Encodable for Column {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.str(&self.name);
        enc.u8(match self.dtype {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Text => 2,
            DataType::Bool => 3,
        });
        enc.option(&self.qualifier, |e, q| e.str(q));
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        let name = dec.str()?;
        let dtype = match dec.u8()? {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Text,
            3 => DataType::Bool,
            t => return Err(Error::Codec(format!("invalid data type tag {t}"))),
        };
        let qualifier = dec.option(insightnotes_common::Decoder::str)?;
        Ok(Column {
            name,
            dtype,
            qualifier,
        })
    }
}

impl codec::Encodable for Schema {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.seq(self.columns(), |e, c| c.encode(e));
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        Ok(Schema::new(dec.seq(Column::decode)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_rs() -> Schema {
        // Mirrors Figure 2: R(a,b,c,d) joined with S(x,y,z).
        let r = Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Int),
            Column::new("c", DataType::Text),
            Column::new("d", DataType::Text),
        ])
        .qualify("r");
        let s = Schema::new(vec![
            Column::new("x", DataType::Int),
            Column::new("y", DataType::Text),
            Column::new("z", DataType::Text),
        ])
        .qualify("s");
        r.concat(&s)
    }

    #[test]
    fn resolve_qualified_names() {
        let sch = schema_rs();
        assert_eq!(sch.resolve(Some("r"), "a").unwrap(), 0);
        assert_eq!(sch.resolve(Some("s"), "x").unwrap(), 4);
        assert_eq!(sch.resolve(None, "z").unwrap(), 6);
    }

    #[test]
    fn resolve_is_case_insensitive() {
        let sch = schema_rs();
        assert_eq!(sch.resolve(Some("R"), "A").unwrap(), 0);
    }

    #[test]
    fn unknown_and_ambiguous_names_error() {
        let sch = schema_rs();
        assert!(sch.resolve(None, "nope").is_err());
        let dup = sch.concat(&Schema::new(vec![
            Column::new("a", DataType::Int).qualified("t")
        ]));
        assert!(dup.resolve(None, "a").is_err());
        assert_eq!(dup.resolve(Some("t"), "a").unwrap(), 7);
    }

    #[test]
    fn project_preserves_columns() {
        let sch = schema_rs();
        let p = sch.project(&[0, 1, 6]);
        assert_eq!(p.arity(), 3);
        assert_eq!(p.column(2).unwrap().display_name(), "s.z");
    }

    #[test]
    fn display_is_readable() {
        let sch = Schema::new(vec![Column::new("name", DataType::Text)]);
        assert_eq!(sch.to_string(), "(name TEXT)");
    }
}
