#![warn(missing_docs)]
//! # insightnotes-storage
//!
//! The relational substrate InsightNotes runs over: typed values, schemas,
//! an in-memory row store with stable row ids, a catalog, and bound
//! (index-resolved) expression evaluation.
//!
//! The paper's contribution is *operator semantics over annotation
//! summaries*; those semantics are defined over a conventional relational
//! engine. This crate supplies that engine's storage layer. It is
//! deliberately simple — a row store with stable [`RowId`]s — because
//! annotations reference rows by id and summary objects live per row, so id
//! stability (ids are never reused) is the one property everything above
//! depends on.
//!
//! [`RowId`]: insightnotes_common::RowId

pub mod catalog;
pub mod expr;
pub mod row;
pub mod schema;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use expr::{ArithOp, BoundExpr, CmpOp};
pub use row::Row;
pub use schema::{Column, Schema};
pub use table::Table;
pub use value::{DataType, Value};
