//! The catalog: name → table mapping and table-id allocation.

use crate::schema::Schema;
use crate::table::Table;
use insightnotes_common::{codec, Error, Result, TableId};
use std::collections::HashMap;

/// Owns every table in a database instance.
#[derive(Debug, Default)]
pub struct Catalog {
    by_name: HashMap<String, TableId>,
    tables: HashMap<TableId, Table>,
    next_id: u32,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table, failing on duplicate names (case-insensitive).
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<TableId> {
        let key = name.to_ascii_lowercase();
        if self.by_name.contains_key(&key) {
            return Err(Error::Catalog(format!("table `{key}` already exists")));
        }
        self.next_id += 1;
        let id = TableId::new(self.next_id);
        self.by_name.insert(key.clone(), id);
        self.tables.insert(id, Table::new(id, key, schema));
        Ok(id)
    }

    /// Looks up a table id by name.
    pub fn table_id(&self, name: &str) -> Result<TableId> {
        self.by_name
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| Error::Catalog(format!("unknown table `{name}`")))
    }

    /// Borrows a table by id.
    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(&id)
            .ok_or_else(|| Error::Catalog(format!("no table with id {id}")))
    }

    /// Mutably borrows a table by id.
    pub fn table_mut(&mut self, id: TableId) -> Result<&mut Table> {
        self.tables
            .get_mut(&id)
            .ok_or_else(|| Error::Catalog(format!("no table with id {id}")))
    }

    /// Borrows a table by name.
    pub fn table_by_name(&self, name: &str) -> Result<&Table> {
        self.table(self.table_id(name)?)
    }

    /// Mutably borrows a table by name.
    pub fn table_by_name_mut(&mut self, name: &str) -> Result<&mut Table> {
        let id = self.table_id(name)?;
        self.table_mut(id)
    }

    /// Drops a table, returning it.
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        let key = name.to_ascii_lowercase();
        let id = self
            .by_name
            .remove(&key)
            .ok_or_else(|| Error::Catalog(format!("unknown table `{key}`")))?;
        Ok(self.tables.remove(&id).expect("index consistent"))
    }

    /// Table names in sorted order (for `\d`-style listings).
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.by_name.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

impl codec::Encodable for Catalog {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.u32(self.next_id);
        // Tables in name order for deterministic snapshots.
        let names = self.table_names();
        enc.varint(names.len() as u64);
        for name in names {
            let table = self.table_by_name(name).expect("listed name");
            table.encode(enc);
        }
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        let next_id = dec.u32()?;
        let n = dec.varint()? as usize;
        let mut catalog = Catalog {
            next_id,
            ..Catalog::default()
        };
        for _ in 0..n {
            let table = crate::table::Table::decode(dec)?;
            if catalog.by_name.contains_key(table.name()) {
                return Err(Error::Codec(format!(
                    "duplicate table `{}` in snapshot",
                    table.name()
                )));
            }
            catalog.by_name.insert(table.name().to_string(), table.id());
            catalog.tables.insert(table.id(), table);
        }
        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::new(vec![Column::new("x", DataType::Int)])
    }

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::new();
        let id = c.create_table("Birds", schema()).unwrap();
        assert_eq!(c.table_id("birds").unwrap(), id);
        assert_eq!(c.table(id).unwrap().name(), "birds");
        assert_eq!(c.table_names(), vec!["birds"]);
        c.drop_table("BIRDS").unwrap();
        assert!(c.table_id("birds").is_err());
    }

    #[test]
    fn duplicate_names_rejected_case_insensitively() {
        let mut c = Catalog::new();
        c.create_table("t", schema()).unwrap();
        assert!(c.create_table("T", schema()).is_err());
    }

    #[test]
    fn ids_survive_other_drops() {
        let mut c = Catalog::new();
        let a = c.create_table("a", schema()).unwrap();
        let b = c.create_table("b", schema()).unwrap();
        c.drop_table("a").unwrap();
        assert!(c.table(a).is_err());
        assert_eq!(c.table(b).unwrap().name(), "b");
        // New tables never reuse dropped ids.
        let d = c.create_table("d", schema()).unwrap();
        assert_ne!(d, a);
    }
}
