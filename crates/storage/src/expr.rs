//! Bound scalar expressions.
//!
//! The SQL front-end produces name-based expressions; the planner *binds*
//! them against a schema into `BoundExpr`s whose column references are
//! ordinals. Evaluation is then a direct walk over a row — no name lookups
//! at runtime. Predicates use SQL three-valued logic collapsed to
//! "satisfied / not satisfied" at the filter boundary (NULL comparisons
//! never satisfy).

use crate::row::Row;
use crate::value::Value;
use insightnotes_common::{Error, Result};
use std::cmp::Ordering;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the operator to an ordering result.
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A scalar expression with column references resolved to ordinals.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Reference to column `i` of the input row.
    Column(usize),
    /// A constant.
    Literal(Value),
    /// Comparison producing a boolean (or NULL under three-valued logic).
    Cmp(CmpOp, Box<BoundExpr>, Box<BoundExpr>),
    /// Arithmetic over numeric operands.
    Arith(ArithOp, Box<BoundExpr>, Box<BoundExpr>),
    /// Logical conjunction.
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// Logical disjunction.
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// Logical negation.
    Not(Box<BoundExpr>),
    /// `IS NULL` test.
    IsNull(Box<BoundExpr>),
    /// Case-sensitive substring containment (`LIKE '%needle%'` subset,
    /// used for text predicates over annotations' host tuples).
    Contains(Box<BoundExpr>, String),
}

impl BoundExpr {
    /// Evaluates against a row.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            BoundExpr::Column(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| Error::Execution(format!("column ordinal {i} out of range"))),
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Cmp(op, l, r) => {
                let (lv, rv) = (l.eval(row)?, r.eval(row)?);
                Ok(match lv.sql_cmp(&rv) {
                    Some(ord) => Value::Bool(op.test(ord)),
                    None => Value::Null,
                })
            }
            BoundExpr::Arith(op, l, r) => {
                let (lv, rv) = (l.eval(row)?, r.eval(row)?);
                if lv.is_null() || rv.is_null() {
                    return Ok(Value::Null);
                }
                match (op, &lv, &rv) {
                    // Integer arithmetic stays integral except division.
                    (ArithOp::Add, Value::Int(a), Value::Int(b)) => {
                        Ok(Value::Int(a.checked_add(*b).ok_or_else(|| {
                            Error::Execution("integer overflow".into())
                        })?))
                    }
                    (ArithOp::Sub, Value::Int(a), Value::Int(b)) => {
                        Ok(Value::Int(a.checked_sub(*b).ok_or_else(|| {
                            Error::Execution("integer overflow".into())
                        })?))
                    }
                    (ArithOp::Mul, Value::Int(a), Value::Int(b)) => {
                        Ok(Value::Int(a.checked_mul(*b).ok_or_else(|| {
                            Error::Execution("integer overflow".into())
                        })?))
                    }
                    _ => {
                        let a = lv.as_f64().ok_or_else(|| {
                            Error::Type(format!("non-numeric operand {lv:?} for `{op}`"))
                        })?;
                        let b = rv.as_f64().ok_or_else(|| {
                            Error::Type(format!("non-numeric operand {rv:?} for `{op}`"))
                        })?;
                        let out = match op {
                            ArithOp::Add => a + b,
                            ArithOp::Sub => a - b,
                            ArithOp::Mul => a * b,
                            ArithOp::Div => {
                                if b == 0.0 {
                                    return Err(Error::Execution("division by zero".into()));
                                }
                                a / b
                            }
                        };
                        Ok(Value::Float(out))
                    }
                }
            }
            BoundExpr::And(l, r) => {
                // Three-valued AND with short circuit on FALSE.
                match l.eval(row)? {
                    Value::Bool(false) => Ok(Value::Bool(false)),
                    lv => match (lv, r.eval(row)?) {
                        (_, Value::Bool(false)) => Ok(Value::Bool(false)),
                        (Value::Bool(true), Value::Bool(true)) => Ok(Value::Bool(true)),
                        _ => Ok(Value::Null),
                    },
                }
            }
            BoundExpr::Or(l, r) => match l.eval(row)? {
                Value::Bool(true) => Ok(Value::Bool(true)),
                lv => match (lv, r.eval(row)?) {
                    (_, Value::Bool(true)) => Ok(Value::Bool(true)),
                    (Value::Bool(false), Value::Bool(false)) => Ok(Value::Bool(false)),
                    _ => Ok(Value::Null),
                },
            },
            BoundExpr::Not(e) => match e.eval(row)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                v => Err(Error::Type(format!("NOT over non-boolean {v:?}"))),
            },
            BoundExpr::IsNull(e) => Ok(Value::Bool(e.eval(row)?.is_null())),
            BoundExpr::Contains(e, needle) => match e.eval(row)? {
                Value::Text(s) => Ok(Value::Bool(s.contains(needle.as_str()))),
                Value::Null => Ok(Value::Null),
                v => Err(Error::Type(format!("CONTAINS over non-text {v:?}"))),
            },
        }
    }

    /// Predicate view: NULL and FALSE both reject the row.
    pub fn satisfied(&self, row: &Row) -> Result<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            v => Err(Error::Type(format!("predicate evaluated to {v:?}"))),
        }
    }

    /// Collects the column ordinals this expression reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            BoundExpr::Column(i) => out.push(*i),
            BoundExpr::Literal(_) => {}
            BoundExpr::Cmp(_, l, r) | BoundExpr::Arith(_, l, r) => {
                l.referenced_columns(out);
                r.referenced_columns(out);
            }
            BoundExpr::And(l, r) | BoundExpr::Or(l, r) => {
                l.referenced_columns(out);
                r.referenced_columns(out);
            }
            BoundExpr::Not(e) | BoundExpr::IsNull(e) | BoundExpr::Contains(e, _) => {
                e.referenced_columns(out);
            }
        }
    }

    /// Rewrites column ordinals through a mapping (old ordinal → new
    /// ordinal), used when pushing predicates through projections.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> BoundExpr {
        match self {
            BoundExpr::Column(i) => BoundExpr::Column(map(*i)),
            BoundExpr::Literal(v) => BoundExpr::Literal(v.clone()),
            BoundExpr::Cmp(op, l, r) => BoundExpr::Cmp(
                *op,
                Box::new(l.remap_columns(map)),
                Box::new(r.remap_columns(map)),
            ),
            BoundExpr::Arith(op, l, r) => BoundExpr::Arith(
                *op,
                Box::new(l.remap_columns(map)),
                Box::new(r.remap_columns(map)),
            ),
            BoundExpr::And(l, r) => BoundExpr::And(
                Box::new(l.remap_columns(map)),
                Box::new(r.remap_columns(map)),
            ),
            BoundExpr::Or(l, r) => BoundExpr::Or(
                Box::new(l.remap_columns(map)),
                Box::new(r.remap_columns(map)),
            ),
            BoundExpr::Not(e) => BoundExpr::Not(Box::new(e.remap_columns(map))),
            BoundExpr::IsNull(e) => BoundExpr::IsNull(Box::new(e.remap_columns(map))),
            BoundExpr::Contains(e, n) => {
                BoundExpr::Contains(Box::new(e.remap_columns(map)), n.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(i: usize) -> BoundExpr {
        BoundExpr::Column(i)
    }
    fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Literal(v.into())
    }
    fn cmp(op: CmpOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Cmp(op, Box::new(l), Box::new(r))
    }

    fn row() -> Row {
        Row::new(vec![
            Value::Int(2),
            Value::Text("swan goose".into()),
            Value::Null,
            Value::Float(3.5),
        ])
    }

    #[test]
    fn comparisons_follow_sql_semantics() {
        let r = row();
        assert!(cmp(CmpOp::Eq, col(0), lit(2i64)).satisfied(&r).unwrap());
        assert!(cmp(CmpOp::Lt, col(0), col(3)).satisfied(&r).unwrap());
        // NULL comparisons never satisfy.
        assert!(!cmp(CmpOp::Eq, col(2), lit(1i64)).satisfied(&r).unwrap());
        assert!(!cmp(CmpOp::Ne, col(2), lit(1i64)).satisfied(&r).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let r = row();
        let null_cmp = cmp(CmpOp::Eq, col(2), lit(1i64));
        let true_cmp = cmp(CmpOp::Eq, col(0), lit(2i64));
        let false_cmp = cmp(CmpOp::Eq, col(0), lit(9i64));
        // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
        assert_eq!(
            BoundExpr::And(Box::new(null_cmp.clone()), Box::new(false_cmp))
                .eval(&r)
                .unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            BoundExpr::Or(Box::new(null_cmp.clone()), Box::new(true_cmp.clone()))
                .eval(&r)
                .unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            BoundExpr::And(Box::new(null_cmp), Box::new(true_cmp))
                .eval(&r)
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn arithmetic_typing() {
        let r = row();
        assert_eq!(
            BoundExpr::Arith(ArithOp::Add, Box::new(col(0)), Box::new(lit(3i64)))
                .eval(&r)
                .unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            BoundExpr::Arith(ArithOp::Mul, Box::new(col(0)), Box::new(col(3)))
                .eval(&r)
                .unwrap(),
            Value::Float(7.0)
        );
        assert!(
            BoundExpr::Arith(ArithOp::Div, Box::new(col(0)), Box::new(lit(0i64)))
                .eval(&r)
                .is_err()
        );
        assert_eq!(
            BoundExpr::Arith(ArithOp::Add, Box::new(col(2)), Box::new(lit(1i64)))
                .eval(&r)
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn integer_overflow_is_an_error() {
        let r = Row::new(vec![Value::Int(i64::MAX)]);
        assert!(
            BoundExpr::Arith(ArithOp::Add, Box::new(col(0)), Box::new(lit(1i64)))
                .eval(&r)
                .is_err()
        );
    }

    #[test]
    fn is_null_and_contains() {
        let r = row();
        assert!(BoundExpr::IsNull(Box::new(col(2))).satisfied(&r).unwrap());
        assert!(!BoundExpr::IsNull(Box::new(col(0))).satisfied(&r).unwrap());
        assert!(BoundExpr::Contains(Box::new(col(1)), "goose".into())
            .satisfied(&r)
            .unwrap());
        assert!(BoundExpr::Contains(Box::new(col(0)), "x".into())
            .eval(&r)
            .is_err());
    }

    #[test]
    fn referenced_columns_and_remap() {
        let e = BoundExpr::And(
            Box::new(cmp(CmpOp::Eq, col(0), col(3))),
            Box::new(BoundExpr::IsNull(Box::new(col(2)))),
        );
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        cols.sort_unstable();
        assert_eq!(cols, vec![0, 2, 3]);
        let remapped = e.remap_columns(&|i| i + 10);
        let mut cols2 = Vec::new();
        remapped.referenced_columns(&mut cols2);
        cols2.sort_unstable();
        assert_eq!(cols2, vec![10, 12, 13]);
    }
}
