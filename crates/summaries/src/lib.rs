#![warn(missing_docs)]
//! # insightnotes-summaries
//!
//! The paper's core contribution: the annotation-summarization framework.
//!
//! InsightNotes organizes summarization in a three-level hierarchy
//! (Figure 4 of the paper):
//!
//! 1. **Summary types** ([`SummaryKind`]) — Classifier, Cluster, Snippet —
//!    are baked into the engine together with their operator algebra.
//! 2. **Summary instances** ([`SummaryInstance`]) — admin-defined
//!    configurations of a type (class labels + trained model, similarity
//!    threshold, snippet limits) with the `AnnotationInvariant` /
//!    `DataInvariant` properties that unlock summarize-once maintenance.
//!    Instances link many-to-many to relations via the
//!    [`SummaryRegistry`].
//! 3. **Summary objects** ([`SummaryObject`]) — the per-tuple outputs that
//!    travel with tuples through query pipelines.
//!
//! The object algebra ([`object`]) implements the paper's operator
//! semantics: `project` removes the effect of annotations attached only to
//! projected-out columns (Theorems 1–2 of the full paper require this to
//! happen before any merge), `merge` combines two tuples' objects without
//! double-counting shared annotations, and `zoom_ids` resolves any
//! component back to raw annotation ids for zoom-in.
//!
//! [`SummaryKind`]: instance::SummaryKind
//! [`SummaryInstance`]: instance::SummaryInstance
//! [`SummaryRegistry`]: registry::SummaryRegistry
//! [`SummaryObject`]: object::SummaryObject

pub mod instance;
pub mod maintenance;
pub mod object;
pub mod registry;
pub mod signature;

pub use instance::{InstanceProperties, SummaryInstance, SummaryKind};
pub use maintenance::{
    rebuild_row_from_store, refresh_after_add, MaintenanceMode, MaintenanceStats,
};
pub use object::{ClusterGroup, Contribution, SummaryObject};
pub use registry::{InstanceDef, SharedObject, SummaryRegistry};
pub use signature::SigMap;
