//! Maintenance strategies and statistics.
//!
//! InsightNotes maintains summary objects **incrementally**: absorbing a
//! new annotation costs one digest plus one object update per affected
//! `(tuple, instance)` pair, independent of how many annotations the tuple
//! already carries. The alternative — re-summarizing a tuple from scratch
//! on every insertion — grows linearly with the tuple's annotation count.
//! Experiment E1 compares the two; this module provides the strategy
//! switch and the shared entry point that drives either path from the
//! annotation store.

use crate::registry::SummaryRegistry;
use insightnotes_annotations::{AnnotationBody, AnnotationStore, ColSig};
use insightnotes_common::{AnnotationId, Result, RowId, TableId};

/// Counters produced by a maintenance operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Mining-technique invocations (classification, vectorization,
    /// summarization) actually executed.
    pub digests_computed: usize,
    /// Digests served from the summarize-once cache.
    pub cache_hits: usize,
    /// Summary-object updates applied.
    pub objects_updated: usize,
}

impl MaintenanceStats {
    /// Accumulates another operation's counters.
    pub fn absorb(&mut self, other: MaintenanceStats) {
        self.digests_computed += other.digests_computed;
        self.cache_hits += other.cache_hits;
        self.objects_updated += other.objects_updated;
    }
}

/// How summaries are refreshed when an annotation is added.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenanceMode {
    /// Apply only the new annotation's contribution (the paper's design).
    Incremental,
    /// Re-summarize every affected row from its full annotation list
    /// (the from-scratch baseline).
    Rebuild,
}

/// Refreshes summaries after `annotation_id` was added to `store`, using
/// the chosen strategy. `tuple_context` renders host-tuple content for
/// data-variant instances.
pub fn refresh_after_add(
    registry: &mut SummaryRegistry,
    store: &AnnotationStore,
    annotation_id: AnnotationId,
    tuple_context: &dyn Fn(TableId, RowId) -> Option<String>,
    mode: MaintenanceMode,
) -> Result<MaintenanceStats> {
    let annotation = store.get(annotation_id)?;
    match mode {
        MaintenanceMode::Incremental => registry.apply_annotation(
            annotation_id,
            &annotation.body,
            &annotation.targets,
            tuple_context,
        ),
        MaintenanceMode::Rebuild => {
            let mut stats = MaintenanceStats::default();
            for target in &annotation.targets {
                stats.absorb(rebuild_row_from_store(
                    registry,
                    store,
                    target.table,
                    target.row,
                    tuple_context,
                )?);
            }
            Ok(stats)
        }
    }
}

/// Rebuilds one row's summary objects from the store's full annotation
/// list for that row (also the catch-up path after `LINK SUMMARY`).
pub fn rebuild_row_from_store(
    registry: &mut SummaryRegistry,
    store: &AnnotationStore,
    table: TableId,
    row: RowId,
    tuple_context: &dyn Fn(TableId, RowId) -> Option<String>,
) -> Result<MaintenanceStats> {
    let on_row = store.on_row(table, row).to_vec();
    let mut anns: Vec<(AnnotationId, ColSig, &AnnotationBody)> = Vec::with_capacity(on_row.len());
    for (id, cols) in &on_row {
        anns.push((*id, *cols, &store.get(*id)?.body));
    }
    registry.rebuild_row(table, row, &anns, tuple_context)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceProperties;
    use crate::registry::InstanceDef;
    use insightnotes_annotations::Target;
    use insightnotes_text::NaiveBayes;

    const T: TableId = TableId(1);

    fn setup() -> (SummaryRegistry, AnnotationStore) {
        let mut nb = NaiveBayes::new(vec!["Behavior".into(), "Other".into()]);
        nb.train(0, "eating stonewort diving");
        nb.train(1, "reference attached");
        let mut reg = SummaryRegistry::new();
        let id = reg
            .create_instance(InstanceDef::Classifier {
                name: "c".into(),
                model: nb,
                properties: InstanceProperties::default(),
            })
            .unwrap();
        reg.link(id, T).unwrap();
        (reg, AnnotationStore::new())
    }

    fn no_ctx(_: TableId, _: RowId) -> Option<String> {
        None
    }

    #[test]
    fn incremental_and_rebuild_agree() {
        let (mut reg_inc, mut store) = setup();
        let (mut reg_reb, _) = setup();
        let texts = ["eating stonewort", "diving for fish", "reference attached"];
        for text in texts {
            let id = store
                .add(
                    AnnotationBody::text(text, "a"),
                    vec![Target::new(T, RowId(1), ColSig::whole_row(2))],
                )
                .unwrap();
            refresh_after_add(
                &mut reg_inc,
                &store,
                id,
                &no_ctx,
                MaintenanceMode::Incremental,
            )
            .unwrap();
            refresh_after_add(&mut reg_reb, &store, id, &no_ctx, MaintenanceMode::Rebuild).unwrap();
        }
        let inst = reg_inc.instance_id("c").unwrap();
        assert_eq!(
            reg_inc.object(T, RowId(1), inst),
            reg_reb.object(T, RowId(1), inst)
        );
    }

    #[test]
    fn rebuild_cost_grows_with_existing_annotations() {
        let (mut reg, mut store) = setup();
        reg.use_digest_cache = false; // count raw digest work
        let mut last_digests = 0;
        for i in 0..5 {
            let id = store
                .add(
                    AnnotationBody::text(format!("note {i} eating"), "a"),
                    vec![Target::new(T, RowId(1), ColSig::whole_row(2))],
                )
                .unwrap();
            let stats =
                refresh_after_add(&mut reg, &store, id, &no_ctx, MaintenanceMode::Rebuild).unwrap();
            assert!(stats.digests_computed > last_digests || i == 0);
            last_digests = stats.digests_computed;
        }
        assert_eq!(last_digests, 5, "rebuild re-digests every annotation");
    }

    #[test]
    fn incremental_cost_is_constant() {
        let (mut reg, mut store) = setup();
        for i in 0..5 {
            let id = store
                .add(
                    AnnotationBody::text(format!("note {i} eating"), "a"),
                    vec![Target::new(T, RowId(1), ColSig::whole_row(2))],
                )
                .unwrap();
            let stats =
                refresh_after_add(&mut reg, &store, id, &no_ctx, MaintenanceMode::Incremental)
                    .unwrap();
            assert_eq!(stats.digests_computed, 1);
            assert_eq!(stats.objects_updated, 1);
        }
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = MaintenanceStats {
            digests_computed: 1,
            cache_hits: 2,
            objects_updated: 3,
        };
        a.absorb(MaintenanceStats {
            digests_computed: 10,
            cache_hits: 20,
            objects_updated: 30,
        });
        assert_eq!(a.digests_computed, 11);
        assert_eq!(a.cache_hits, 22);
        assert_eq!(a.objects_updated, 33);
    }
}
