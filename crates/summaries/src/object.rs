//! Summary objects and their operator algebra.
//!
//! A [`SummaryObject`] is the per-tuple summary that travels with a tuple
//! through the query pipeline. Three shapes exist, one per summary type:
//!
//! - **Classifier** — per-label sets of contributing annotation ids; the
//!   displayed counts (`[(Behavior, 33), (Disease, 8), …]`) are the set
//!   cardinalities, so projection decrements and merge never double-counts
//!   *by construction*.
//! - **Cluster** — groups of similar annotations with an elected
//!   representative per group (the `SimCluster` of Figure 1). Groups carry
//!   a bounded centroid so merge can combine overlapping groups from two
//!   join sides by content similarity, as Figure 2 step 3 illustrates.
//! - **Snippet** — one extractive snippet per large attached document
//!   (`TextSummary1` in the figures).
//!
//! Every object embeds a [`SigMap`] bucketing its contributing annotation
//! ids by column signature; `project` consults it to find exactly which
//! annotations' effects must be subtracted when columns are projected out.
//! None of the operations below ever reads raw annotation *content* — the
//! paper's central query-processing property.

use crate::signature::SigMap;
use insightnotes_annotations::ColSig;
use insightnotes_common::{codec, Error, IdSet, Result};
use insightnotes_text::{Cluster, ClusterConfig, OnlineClusterer, SparseVector};
use std::fmt;
use std::sync::Arc;

/// How many characters of a representative's text a cluster group keeps
/// for display.
pub const PREVIEW_CHARS: usize = 60;

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

/// A classifier-type summary object.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifierObject {
    sig_map: SigMap,
    /// Label names (shared with the instance definition).
    labels: Arc<[String]>,
    /// Per-label contributing annotation ids (parallel to `labels`).
    label_sets: Vec<IdSet>,
}

impl ClassifierObject {
    /// Creates an empty object over the given labels.
    pub fn new(labels: Arc<[String]>) -> Self {
        let n = labels.len();
        Self {
            sig_map: SigMap::new(),
            labels,
            label_sets: vec![IdSet::new(); n],
        }
    }

    /// Label names.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Count for the label at `index`.
    pub fn count(&self, index: usize) -> usize {
        self.label_sets.get(index).map_or(0, IdSet::len)
    }

    /// Count for a label by name.
    pub fn count_by_name(&self, label: &str) -> Option<usize> {
        self.labels
            .iter()
            .position(|l| l.eq_ignore_ascii_case(label))
            .map(|i| self.count(i))
    }

    fn add(&mut self, id: u64, label: usize, sig: ColSig) {
        debug_assert!(label < self.labels.len());
        self.sig_map.add(id, sig);
        self.label_sets[label].insert(id);
    }

    fn project(&mut self, remap: &dyn Fn(u16) -> Option<u16>) {
        let dropped = self.sig_map.project(remap);
        if dropped.is_empty() {
            return;
        }
        for set in &mut self.label_sets {
            set.subtract(&dropped);
        }
    }

    fn merge(&mut self, other: &ClassifierObject) {
        self.sig_map.merge(&other.sig_map);
        for (mine, theirs) in self.label_sets.iter_mut().zip(&other.label_sets) {
            *mine = mine.union(theirs);
        }
    }
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

/// One group inside a cluster-type object, as exposed to callers.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterGroup {
    /// Number of member annotations.
    pub size: usize,
    /// Elected representative annotation id.
    pub representative: Option<u64>,
    /// Short excerpt of the representative's text, when it is still known
    /// without consulting the raw store. Re-election during projection
    /// (Figure 2: A5 replaces the dropped A2) clears it; the display layer
    /// may lazily resolve it via the annotation store.
    pub preview: Option<String>,
}

/// A cluster-type summary object.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterObject {
    sig_map: SigMap,
    clusterer: OnlineClusterer,
    /// `(annotation id, excerpt)` pairs for ids that founded groups or
    /// arrived through merges; sorted by id.
    previews: Vec<(u64, String)>,
}

impl ClusterObject {
    /// Creates an empty object with the instance's clustering parameters.
    pub fn new(config: ClusterConfig) -> Self {
        Self {
            sig_map: SigMap::new(),
            clusterer: OnlineClusterer::new(config),
            previews: Vec::new(),
        }
    }

    /// The groups in creation order.
    pub fn groups(&self) -> Vec<ClusterGroup> {
        self.clusterer
            .clusters()
            .iter()
            .map(|c| {
                let rep = c.representative();
                ClusterGroup {
                    size: c.len(),
                    representative: rep,
                    preview: rep.and_then(|r| self.preview_of(r).map(str::to_string)),
                }
            })
            .collect()
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.clusterer.len()
    }

    /// Member ids of the group at `index`.
    pub fn group_ids(&self, index: usize) -> Option<IdSet> {
        self.clusterer
            .clusters()
            .get(index)
            .map(|c| IdSet::from_iter_unsorted(c.members.iter().map(|&(id, _)| id)))
    }

    fn preview_of(&self, id: u64) -> Option<&str> {
        self.previews
            .binary_search_by_key(&id, |&(i, _)| i)
            .ok()
            .map(|i| self.previews[i].1.as_str())
    }

    fn remember_preview(&mut self, id: u64, preview: &str) {
        if let Err(pos) = self.previews.binary_search_by_key(&id, |&(i, _)| i) {
            let excerpt: String = preview.chars().take(PREVIEW_CHARS).collect();
            self.previews.insert(pos, (id, excerpt));
        }
    }

    fn add(&mut self, id: u64, vector: SparseVector, preview: &str, sig: ColSig) {
        self.sig_map.add(id, sig);
        let idx = self.clusterer.add(id, vector);
        // Keep the excerpt when this annotation leads its group (founder),
        // so freshly built objects always display representative text.
        if self.clusterer.clusters()[idx].representative() == Some(id) {
            self.remember_preview(id, preview);
        }
    }

    fn project(&mut self, remap: &dyn Fn(u16) -> Option<u16>) {
        let dropped = self.sig_map.project(remap);
        if dropped.is_empty() {
            return;
        }
        self.clusterer.remove_members(&|id| dropped.contains(id));
        self.previews.retain(|&(id, _)| !dropped.contains(id));
    }

    fn merge(&mut self, other: &ClusterObject) {
        self.sig_map.merge(&other.sig_map);
        self.clusterer.merge(&other.clusterer);
        for (id, preview) in &other.previews {
            self.remember_preview(*id, preview);
        }
    }
}

// ---------------------------------------------------------------------------
// Snippet
// ---------------------------------------------------------------------------

/// One snippet entry: the extractive summary of one attached document.
#[derive(Debug, Clone, PartialEq)]
pub struct SnippetEntry {
    /// The document-carrying annotation.
    pub id: u64,
    /// The extractive snippet.
    pub snippet: String,
    /// Size of the summarized source in bytes.
    pub source_bytes: u64,
}

/// A snippet-type summary object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SnippetObject {
    sig_map: SigMap,
    /// Entries sorted by annotation id.
    entries: Vec<SnippetEntry>,
}

impl SnippetObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entries in annotation-id order.
    pub fn entries(&self) -> &[SnippetEntry] {
        &self.entries
    }

    fn add(&mut self, id: u64, snippet: String, source_bytes: u64, sig: ColSig) {
        self.sig_map.add(id, sig);
        if let Err(pos) = self.entries.binary_search_by_key(&id, |e| e.id) {
            self.entries.insert(
                pos,
                SnippetEntry {
                    id,
                    snippet,
                    source_bytes,
                },
            );
        }
    }

    fn project(&mut self, remap: &dyn Fn(u16) -> Option<u16>) {
        let dropped = self.sig_map.project(remap);
        if dropped.is_empty() {
            return;
        }
        self.entries.retain(|e| !dropped.contains(e.id));
    }

    fn merge(&mut self, other: &SnippetObject) {
        self.sig_map.merge(&other.sig_map);
        for e in &other.entries {
            if let Err(pos) = self.entries.binary_search_by_key(&e.id, |x| x.id) {
                self.entries.insert(pos, e.clone());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The tagged union
// ---------------------------------------------------------------------------

/// A per-tuple summary object of any type.
#[derive(Debug, Clone, PartialEq)]
pub enum SummaryObject {
    /// Classifier-type object.
    Classifier(ClassifierObject),
    /// Cluster-type object.
    Cluster(ClusterObject),
    /// Snippet-type object.
    Snippet(SnippetObject),
}

/// Per-annotation contribution, produced by the instance's digest step and
/// applied to objects without re-running the mining technique.
#[derive(Debug, Clone, PartialEq)]
pub enum Contribution {
    /// The annotation classified into label `index`.
    Label(usize),
    /// The annotation's term vector and a display excerpt.
    Vector {
        /// Term-frequency vector over the instance vocabulary.
        vector: SparseVector,
        /// Excerpt for representative display.
        preview: String,
    },
    /// The extractive snippet of the annotation's document.
    Snippet {
        /// The snippet text.
        text: String,
        /// Source document size in bytes.
        source_bytes: u64,
    },
}

impl SummaryObject {
    /// Applies one annotation's contribution.
    ///
    /// Fails when the contribution shape does not match the object type
    /// (instance/object wiring bug).
    pub fn apply(&mut self, id: u64, sig: ColSig, contribution: &Contribution) -> Result<()> {
        match (self, contribution) {
            (SummaryObject::Classifier(o), Contribution::Label(ix)) => {
                if *ix >= o.labels.len() {
                    return Err(Error::Summary(format!(
                        "label index {ix} out of range ({} labels)",
                        o.labels.len()
                    )));
                }
                o.add(id, *ix, sig);
                Ok(())
            }
            (SummaryObject::Cluster(o), Contribution::Vector { vector, preview }) => {
                o.add(id, vector.clone(), preview, sig);
                Ok(())
            }
            (SummaryObject::Snippet(o), Contribution::Snippet { text, source_bytes }) => {
                o.add(id, text.clone(), *source_bytes, sig);
                Ok(())
            }
            _ => Err(Error::Summary(
                "contribution shape does not match summary object type".into(),
            )),
        }
    }

    /// Removes one annotation's contribution entirely (decremental
    /// maintenance for deleted / obsolete annotations). Exact for every
    /// type: classifier counts decrement, cluster members drop (with
    /// representative re-election), snippet entries disappear. Cluster
    /// centroids keep the departed member's terms as a bounded sketch,
    /// the same trade projection makes.
    pub fn remove_annotation(&mut self, id: u64) {
        let single = IdSet::from_iter_unsorted([id]);
        match self {
            SummaryObject::Classifier(o) => {
                o.sig_map.remove_ids(&single);
                for set in &mut o.label_sets {
                    set.remove(id);
                }
            }
            SummaryObject::Cluster(o) => {
                o.sig_map.remove_ids(&single);
                o.clusterer.remove_members(&|m| m == id);
                o.previews.retain(|&(p, _)| p != id);
            }
            SummaryObject::Snippet(o) => {
                o.sig_map.remove_ids(&single);
                o.entries.retain(|e| e.id != id);
            }
        }
    }

    /// Projects the object onto surviving columns: `remap` maps old column
    /// ordinals to output ordinals (`None` = projected out). Removes the
    /// effect of annotations attached only to projected-out columns —
    /// Figure 2 step 1.
    pub fn project(&mut self, remap: &dyn Fn(u16) -> Option<u16>) {
        match self {
            SummaryObject::Classifier(o) => o.project(remap),
            SummaryObject::Cluster(o) => o.project(remap),
            SummaryObject::Snippet(o) => o.project(remap),
        }
    }

    /// Merges another object of the same instance into this one (join /
    /// duplicate-elimination / grouping merge — Figure 2 step 3).
    /// Annotations contributing to both sides count once.
    pub fn merge(&mut self, other: &SummaryObject) -> Result<()> {
        match (self, other) {
            (SummaryObject::Classifier(a), SummaryObject::Classifier(b)) => {
                if a.labels != b.labels {
                    return Err(Error::Summary(
                        "cannot merge classifier objects with different labels".into(),
                    ));
                }
                a.merge(b);
                Ok(())
            }
            (SummaryObject::Cluster(a), SummaryObject::Cluster(b)) => {
                a.merge(b);
                Ok(())
            }
            (SummaryObject::Snippet(a), SummaryObject::Snippet(b)) => {
                a.merge(b);
                Ok(())
            }
            _ => Err(Error::Summary(
                "cannot merge summary objects of different types".into(),
            )),
        }
    }

    /// Merges a shared (copy-on-write) object into another. Clones the
    /// target's payload only when a merge would actually change it:
    /// merging an `Arc` with itself is the identity for the set-semantics
    /// objects (classifier, snippet), so that case returns without
    /// touching the allocation. Cluster objects are excluded from the
    /// shortcut because their merge adds centroid weights and is not
    /// idempotent.
    pub fn merge_shared(target: &mut Arc<SummaryObject>, other: &Arc<SummaryObject>) -> Result<()> {
        if Arc::ptr_eq(target, other) && !matches!(**target, SummaryObject::Cluster(_)) {
            return Ok(());
        }
        Arc::make_mut(target).merge(other)
    }

    /// True when the annotation contributes to this object. Cheap (scans
    /// signature buckets without allocating); used to skip copy-on-write
    /// clones for removals that would be no-ops.
    pub fn contains_annotation(&self, id: u64) -> bool {
        self.sig_map()
            .buckets()
            .iter()
            .any(|(_, set)| set.contains(id))
    }

    /// True when applying `remap` via [`Self::project`] would alter this
    /// object — i.e. some signature bucket re-keys or drops. Lets callers
    /// holding a shared object skip the copy-on-write clone for identity
    /// projections.
    pub fn projection_changes(&self, remap: &dyn Fn(u16) -> Option<u16>) -> bool {
        self.sig_map()
            .buckets()
            .iter()
            .any(|(sig, _)| sig.remap(remap) != *sig)
    }

    /// Number of zoomable components: class labels, cluster groups, or
    /// snippet entries.
    pub fn component_count(&self) -> usize {
        match self {
            SummaryObject::Classifier(o) => o.labels.len(),
            SummaryObject::Cluster(o) => o.group_count(),
            SummaryObject::Snippet(o) => o.entries.len(),
        }
    }

    /// Resolves the component at `index` (0-based) to the raw annotation
    /// ids behind it — the zoom-in primitive of Figure 3.
    pub fn zoom_ids(&self, index: usize) -> Result<IdSet> {
        match self {
            SummaryObject::Classifier(o) => o
                .label_sets
                .get(index)
                .cloned()
                .ok_or_else(|| Error::ZoomIn(format!("classifier has no label index {index}"))),
            SummaryObject::Cluster(o) => o
                .group_ids(index)
                .ok_or_else(|| Error::ZoomIn(format!("cluster has no group index {index}"))),
            SummaryObject::Snippet(o) => o
                .entries
                .get(index)
                .map(|e| IdSet::from_iter_unsorted([e.id]))
                .ok_or_else(|| Error::ZoomIn(format!("no snippet at index {index}"))),
        }
    }

    /// All contributing annotation ids.
    pub fn all_ids(&self) -> IdSet {
        self.sig_map().all_ids()
    }

    /// Total distinct contributing annotations.
    pub fn annotation_count(&self) -> usize {
        self.sig_map().distinct_count()
    }

    /// True when no annotations contribute.
    pub fn is_empty(&self) -> bool {
        self.sig_map().is_empty()
    }

    /// Approximate heap footprint in bytes (compression experiment).
    pub fn heap_bytes(&self) -> usize {
        let base = std::mem::size_of::<SummaryObject>();
        base + match self {
            SummaryObject::Classifier(o) => {
                o.sig_map.heap_bytes() + o.label_sets.iter().map(IdSet::heap_bytes).sum::<usize>()
            }
            SummaryObject::Cluster(o) => {
                o.sig_map.heap_bytes()
                    + o.clusterer
                        .clusters()
                        .iter()
                        .map(|c| c.centroid.heap_bytes() + c.members.len() * 12)
                        .sum::<usize>()
                    + o.previews.iter().map(|(_, p)| p.len() + 8).sum::<usize>()
            }
            SummaryObject::Snippet(o) => {
                o.sig_map.heap_bytes()
                    + o.entries
                        .iter()
                        .map(|e| e.snippet.len() + 16)
                        .sum::<usize>()
            }
        }
    }

    fn sig_map(&self) -> &SigMap {
        match self {
            SummaryObject::Classifier(o) => &o.sig_map,
            SummaryObject::Cluster(o) => &o.sig_map,
            SummaryObject::Snippet(o) => &o.sig_map,
        }
    }

    /// Accessor for classifier-shaped objects.
    pub fn as_classifier(&self) -> Option<&ClassifierObject> {
        match self {
            SummaryObject::Classifier(o) => Some(o),
            _ => None,
        }
    }

    /// Accessor for cluster-shaped objects.
    pub fn as_cluster(&self) -> Option<&ClusterObject> {
        match self {
            SummaryObject::Cluster(o) => Some(o),
            _ => None,
        }
    }

    /// Accessor for snippet-shaped objects.
    pub fn as_snippet(&self) -> Option<&SnippetObject> {
        match self {
            SummaryObject::Snippet(o) => Some(o),
            _ => None,
        }
    }
}

impl fmt::Display for SummaryObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SummaryObject::Classifier(o) => {
                let parts: Vec<String> = o
                    .labels
                    .iter()
                    .enumerate()
                    .map(|(i, l)| format!("({l}, {})", o.count(i)))
                    .collect();
                write!(f, "[{}]", parts.join(", "))
            }
            SummaryObject::Cluster(o) => {
                let parts: Vec<String> = o
                    .groups()
                    .iter()
                    .map(|g| {
                        let rep = g
                            .representative
                            .map_or_else(|| "-".into(), |r| format!("a{r}"));
                        match &g.preview {
                            Some(p) => format!("{{{} members, rep={rep} \"{p}\"}}", g.size),
                            None => format!("{{{} members, rep={rep}}}", g.size),
                        }
                    })
                    .collect();
                write!(f, "[{}]", parts.join(", "))
            }
            SummaryObject::Snippet(o) => {
                let parts: Vec<String> = o
                    .entries
                    .iter()
                    .map(|e| format!("\"{}\"", e.snippet))
                    .collect();
                write!(f, "[{}]", parts.join(", "))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

fn encode_vector(enc: &mut codec::Encoder, v: &SparseVector) {
    enc.varint(v.nnz() as u64);
    for &(id, w) in v.entries() {
        enc.u32(id);
        enc.f64(w as f64);
    }
}

fn decode_vector(dec: &mut codec::Decoder<'_>) -> Result<SparseVector> {
    let n = dec.varint()? as usize;
    let mut entries = Vec::with_capacity(n.min(1 << 12));
    for _ in 0..n {
        entries.push((dec.u32()?, dec.f64()? as f32));
    }
    if !entries.windows(2).all(|w| w[0].0 < w[1].0) {
        return Err(Error::Codec("sparse vector ids not increasing".into()));
    }
    Ok(SparseVector::from_sorted_entries(entries))
}

impl codec::Encodable for SummaryObject {
    fn encode(&self, enc: &mut codec::Encoder) {
        match self {
            SummaryObject::Classifier(o) => {
                enc.u8(0);
                o.sig_map.encode(enc);
                enc.seq(&o.labels, |e, l| e.str(l));
                enc.seq(&o.label_sets, insightnotes_common::Encoder::idset);
            }
            SummaryObject::Cluster(o) => {
                enc.u8(1);
                o.sig_map.encode(enc);
                enc.f64(o.clusterer.config().threshold as f64);
                enc.varint(o.clusterer.config().centroid_terms as u64);
                enc.varint(o.clusterer.config().max_groups as u64);
                enc.varint(o.clusterer.clusters().len() as u64);
                for c in o.clusterer.clusters() {
                    encode_vector(enc, &c.centroid);
                    enc.varint(c.members.len() as u64);
                    for &(id, score) in &c.members {
                        enc.varint(id);
                        enc.f64(score as f64);
                    }
                }
                enc.varint(o.previews.len() as u64);
                for (id, p) in &o.previews {
                    enc.varint(*id);
                    enc.str(p);
                }
            }
            SummaryObject::Snippet(o) => {
                enc.u8(2);
                o.sig_map.encode(enc);
                enc.varint(o.entries.len() as u64);
                for e in &o.entries {
                    enc.varint(e.id);
                    enc.str(&e.snippet);
                    enc.varint(e.source_bytes);
                }
            }
        }
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        match dec.u8()? {
            0 => {
                let sig_map = SigMap::decode(dec)?;
                let labels: Vec<String> = dec.seq(insightnotes_common::Decoder::str)?;
                let label_sets = dec.seq(insightnotes_common::Decoder::idset)?;
                if labels.len() != label_sets.len() {
                    return Err(Error::Codec("classifier label arity mismatch".into()));
                }
                Ok(SummaryObject::Classifier(ClassifierObject {
                    sig_map,
                    labels: labels.into(),
                    label_sets,
                }))
            }
            1 => {
                let sig_map = SigMap::decode(dec)?;
                let threshold = dec.f64()? as f32;
                let centroid_terms = dec.varint()? as usize;
                let max_groups = dec.varint()? as usize;
                let ncl = dec.varint()? as usize;
                let mut clusters = Vec::with_capacity(ncl.min(1 << 12));
                for _ in 0..ncl {
                    let centroid = decode_vector(dec)?;
                    let nm = dec.varint()? as usize;
                    let mut members = Vec::with_capacity(nm.min(1 << 12));
                    for _ in 0..nm {
                        members.push((dec.varint()?, dec.f64()? as f32));
                    }
                    clusters.push(Cluster::from_parts(centroid, members));
                }
                let np = dec.varint()? as usize;
                let mut previews = Vec::with_capacity(np.min(1 << 12));
                for _ in 0..np {
                    previews.push((dec.varint()?, dec.str()?));
                }
                Ok(SummaryObject::Cluster(ClusterObject {
                    sig_map,
                    clusterer: OnlineClusterer::from_parts(
                        ClusterConfig {
                            threshold,
                            centroid_terms,
                            max_groups,
                        },
                        clusters,
                    ),
                    previews,
                }))
            }
            2 => {
                let sig_map = SigMap::decode(dec)?;
                let n = dec.varint()? as usize;
                let mut entries = Vec::with_capacity(n.min(1 << 12));
                for _ in 0..n {
                    entries.push(SnippetEntry {
                        id: dec.varint()?,
                        snippet: dec.str()?,
                        source_bytes: dec.varint()?,
                    });
                }
                Ok(SummaryObject::Snippet(SnippetObject { sig_map, entries }))
            }
            t => Err(Error::Codec(format!("invalid summary object tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_common::codec::Encodable;
    use insightnotes_common::ColumnId;
    use insightnotes_text::Vocabulary;

    fn sig(cols: &[u16]) -> ColSig {
        ColSig::of_columns(&cols.iter().map(|&c| ColumnId::new(c)).collect::<Vec<_>>())
    }

    fn labels() -> Arc<[String]> {
        vec![
            "Behavior".to_string(),
            "Disease".to_string(),
            "Anatomy".to_string(),
            "Other".to_string(),
        ]
        .into()
    }

    fn classifier_with(entries: &[(u64, usize, &[u16])]) -> SummaryObject {
        let mut obj = SummaryObject::Classifier(ClassifierObject::new(labels()));
        for &(id, label, cols) in entries {
            obj.apply(id, sig(cols), &Contribution::Label(label))
                .unwrap();
        }
        obj
    }

    fn vector(vocab: &mut Vocabulary, terms: &[&str]) -> SparseVector {
        let ids: Vec<_> = terms.iter().map(|t| vocab.intern(t)).collect();
        SparseVector::from_term_ids(&ids)
    }

    #[test]
    fn classifier_counts_and_zoom() {
        let obj = classifier_with(&[(1, 0, &[0, 1]), (2, 0, &[0, 1]), (3, 1, &[1])]);
        let c = obj.as_classifier().unwrap();
        assert_eq!(c.count(0), 2);
        assert_eq!(c.count(1), 1);
        assert_eq!(c.count_by_name("behavior"), Some(2));
        assert_eq!(c.count_by_name("nope"), None);
        assert_eq!(obj.zoom_ids(0).unwrap().as_slice(), &[1, 2]);
        assert_eq!(obj.annotation_count(), 3);
        assert!(obj.zoom_ids(9).is_err());
    }

    #[test]
    fn classifier_projection_decrements_counts() {
        // Figure 2: ClassBird1 (33, 8, 25, 16) → (14, 2, 16, 0) after
        // projecting out r.c, r.d. Here: annotations on col 2 vanish.
        let obj0 = classifier_with(&[
            (1, 0, &[0, 1]), // survives
            (2, 1, &[2]),    // dropped with col 2
            (3, 3, &[2]),    // dropped with col 2
        ]);
        let mut obj = obj0.clone();
        obj.project(&|c| if c <= 1 { Some(c) } else { None });
        let c = obj.as_classifier().unwrap();
        assert_eq!(c.count(0), 1);
        assert_eq!(c.count(1), 0);
        assert_eq!(c.count(3), 0);
        assert_eq!(obj.annotation_count(), 1);
    }

    #[test]
    fn classifier_merge_avoids_double_counting() {
        // Paper: 5 common Comment annotations → merged sum 22, not 27.
        let mut left = SummaryObject::Classifier(ClassifierObject::new(labels()));
        for id in 0..20u64 {
            left.apply(id, sig(&[0]), &Contribution::Label(0)).unwrap();
        }
        let mut right = SummaryObject::Classifier(ClassifierObject::new(labels()));
        for id in 15..22u64 {
            right.apply(id, sig(&[4]), &Contribution::Label(0)).unwrap();
        }
        left.merge(&right).unwrap();
        assert_eq!(left.as_classifier().unwrap().count(0), 22);
    }

    #[test]
    fn merge_rejects_mismatched_shapes_and_labels() {
        let mut a = classifier_with(&[]);
        let b = SummaryObject::Snippet(SnippetObject::new());
        assert!(a.merge(&b).is_err());
        let other_labels: Arc<[String]> = vec!["X".to_string()].into();
        let c = SummaryObject::Classifier(ClassifierObject::new(other_labels));
        assert!(a.merge(&c).is_err());
    }

    #[test]
    fn apply_rejects_shape_mismatch_and_bad_label() {
        let mut obj = classifier_with(&[]);
        assert!(obj
            .apply(
                1,
                sig(&[0]),
                &Contribution::Snippet {
                    text: "x".into(),
                    source_bytes: 1
                }
            )
            .is_err());
        assert!(obj.apply(1, sig(&[0]), &Contribution::Label(99)).is_err());
    }

    #[test]
    fn cluster_groups_elect_representatives_with_previews() {
        let mut vocab = Vocabulary::new();
        let mut obj = SummaryObject::Cluster(ClusterObject::new(ClusterConfig::default()));
        let add =
            |obj: &mut SummaryObject, vocab: &mut Vocabulary, id, terms: &[&str], text: &str| {
                let v = vector(vocab, terms);
                obj.apply(
                    id,
                    sig(&[0]),
                    &Contribution::Vector {
                        vector: v,
                        preview: text.into(),
                    },
                )
                .unwrap();
            };
        add(
            &mut obj,
            &mut vocab,
            1,
            &["eating", "stonewort"],
            "found eating stonewort",
        );
        add(
            &mut obj,
            &mut vocab,
            2,
            &["eating", "stonewort", "shore"],
            "eating stonewort by shore",
        );
        add(
            &mut obj,
            &mut vocab,
            3,
            &["wing", "span"],
            "wing span large",
        );
        let c = obj.as_cluster().unwrap();
        let groups = c.groups();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].size, 2);
        assert!(groups[0].preview.is_some());
        assert_eq!(obj.zoom_ids(0).unwrap().len(), 2);
        assert_eq!(obj.zoom_ids(1).unwrap().as_slice(), &[3]);
    }

    #[test]
    fn cluster_projection_reelects_representative() {
        let mut vocab = Vocabulary::new();
        let mut obj = SummaryObject::Cluster(ClusterObject::new(ClusterConfig::default()));
        let v = vector(&mut vocab, &["eating", "stonewort"]);
        // Founder attached to column 2 only; follower whole-row.
        obj.apply(
            10,
            sig(&[2]),
            &Contribution::Vector {
                vector: v.clone(),
                preview: "founder".into(),
            },
        )
        .unwrap();
        obj.apply(
            11,
            sig(&[0, 1, 2]),
            &Contribution::Vector {
                vector: v,
                preview: "follower".into(),
            },
        )
        .unwrap();
        let before = obj.as_cluster().unwrap().groups();
        assert_eq!(before[0].representative, Some(10));
        obj.project(&|c| if c <= 1 { Some(c) } else { None });
        let after = obj.as_cluster().unwrap().groups();
        assert_eq!(after.len(), 1);
        assert_eq!(after[0].size, 1);
        assert_eq!(
            after[0].representative,
            Some(11),
            "new representative elected"
        );
        // Re-elected representative's preview is unknown without raw access.
        assert!(after[0].preview.is_none());
    }

    #[test]
    fn snippet_entries_project_and_merge_by_document() {
        let mut a = SummaryObject::Snippet(SnippetObject::new());
        a.apply(
            1,
            sig(&[0]),
            &Contribution::Snippet {
                text: "Experiment E summary".into(),
                source_bytes: 5000,
            },
        )
        .unwrap();
        a.apply(
            2,
            sig(&[2]),
            &Contribution::Snippet {
                text: "Wikipedia article lead".into(),
                source_bytes: 80_000,
            },
        )
        .unwrap();
        // Figure 2: the wikipedia article on a projected-out column is
        // deleted from the snippet object.
        a.project(&|c| if c == 0 { Some(0) } else { None });
        let s = a.as_snippet().unwrap();
        assert_eq!(s.entries().len(), 1);
        assert_eq!(s.entries()[0].id, 1);

        // Merge dedups by annotation id.
        let mut b = SummaryObject::Snippet(SnippetObject::new());
        b.apply(
            1,
            sig(&[4]),
            &Contribution::Snippet {
                text: "Experiment E summary".into(),
                source_bytes: 5000,
            },
        )
        .unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.as_snippet().unwrap().entries().len(), 1);
        assert_eq!(a.zoom_ids(0).unwrap().as_slice(), &[1]);
    }

    #[test]
    fn display_formats_match_paper_style() {
        let obj = classifier_with(&[(1, 0, &[0]), (2, 0, &[0]), (3, 2, &[0])]);
        assert_eq!(
            obj.to_string(),
            "[(Behavior, 2), (Disease, 0), (Anatomy, 1), (Other, 0)]"
        );
    }

    #[test]
    fn objects_round_trip_through_codec() {
        let mut vocab = Vocabulary::new();
        let class = classifier_with(&[(1, 0, &[0, 1]), (2, 3, &[2])]);
        let mut cluster = SummaryObject::Cluster(ClusterObject::new(ClusterConfig::default()));
        cluster
            .apply(
                5,
                sig(&[1]),
                &Contribution::Vector {
                    vector: vector(&mut vocab, &["eating", "stonewort"]),
                    preview: "preview text".into(),
                },
            )
            .unwrap();
        let mut snip = SummaryObject::Snippet(SnippetObject::new());
        snip.apply(
            9,
            sig(&[0]),
            &Contribution::Snippet {
                text: "snippet".into(),
                source_bytes: 123,
            },
        )
        .unwrap();
        for obj in [class, cluster, snip] {
            let decoded = SummaryObject::from_bytes(&obj.to_bytes()).unwrap();
            assert_eq!(decoded, obj);
        }
    }

    #[test]
    fn empty_object_properties() {
        let obj = classifier_with(&[]);
        assert!(obj.is_empty());
        assert_eq!(obj.annotation_count(), 0);
        assert_eq!(obj.component_count(), 4);
        assert!(obj.heap_bytes() > 0);
    }
}
