//! The column-signature map shared by every summary object.
//!
//! A summary object must be able to *remove the effect* of annotations
//! whose attached columns are all projected out — without touching the raw
//! annotations. `SigMap` makes that possible: it buckets the contributing
//! annotation ids by their column signature ([`ColSig`]). Projection then
//! intersects each bucket's signature with the surviving-column mask:
//!
//! - bucket signature becomes empty → that bucket's annotations *may* be
//!   dropped (they are actually dropped only if no other bucket still
//!   carries them — after a join merge the same annotation can sit in two
//!   buckets, one per join side);
//! - otherwise the bucket is re-keyed to the intersected signature.
//!
//! The number of distinct signatures is small in practice (whole-row plus
//! a few per-cell patterns), so the map is a sorted `Vec` rather than a
//! hash map.

use insightnotes_annotations::ColSig;
use insightnotes_common::{codec, IdSet, Result};

/// Buckets of annotation ids keyed by column signature.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SigMap {
    // Invariant: sorted by signature bits, no duplicate signatures, no
    // empty id sets.
    buckets: Vec<(ColSig, IdSet)>,
}

impl SigMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that annotation `id` contributes under `sig`.
    pub fn add(&mut self, id: u64, sig: ColSig) {
        debug_assert!(!sig.is_empty(), "empty signature");
        match self
            .buckets
            .binary_search_by_key(&sig.bits(), |(s, _)| s.bits())
        {
            Ok(i) => {
                self.buckets[i].1.insert(id);
            }
            Err(i) => {
                let mut set = IdSet::new();
                set.insert(id);
                self.buckets.insert(i, (sig, set));
            }
        }
    }

    /// All contributing ids (union across buckets, duplicate-free).
    pub fn all_ids(&self) -> IdSet {
        let mut out = IdSet::new();
        for (_, set) in &self.buckets {
            out = out.union(set);
        }
        out
    }

    /// Total distinct contributing annotations.
    pub fn distinct_count(&self) -> usize {
        self.all_ids().len()
    }

    /// Number of signature buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The buckets in signature order.
    pub fn buckets(&self) -> &[(ColSig, IdSet)] {
        &self.buckets
    }

    /// Projects the map onto the surviving columns and returns the ids
    /// whose *every* contribution vanished — exactly the annotations whose
    /// effect the summary body must now subtract.
    ///
    /// `remap` translates old column ordinals to new ones (`None` = column
    /// projected out); it both filters and re-keys the buckets so the
    /// resulting map speaks the output schema's ordinals.
    pub fn project(&mut self, remap: &dyn Fn(u16) -> Option<u16>) -> IdSet {
        let old = std::mem::take(&mut self.buckets);
        let mut dropped = IdSet::new();
        let mut kept_ids = IdSet::new();
        for (sig, set) in old {
            let new_sig = sig.remap(remap);
            if new_sig.is_empty() {
                dropped = dropped.union(&set);
            } else {
                kept_ids = kept_ids.union(&set);
                self.merge_bucket(new_sig, set);
            }
        }
        dropped.subtract(&kept_ids);
        dropped
    }

    /// Merges another map into this one (join merge). Ids shared between
    /// the two sides stay recorded once per signature; the union inside
    /// each bucket is duplicate-free.
    pub fn merge(&mut self, other: &SigMap) {
        for (sig, set) in &other.buckets {
            self.merge_bucket(*sig, set.clone());
        }
    }

    /// Removes a set of ids from every bucket (used when a summary body
    /// rejects contributions, e.g. zoom-in cache repair paths).
    pub fn remove_ids(&mut self, ids: &IdSet) {
        for (_, set) in &mut self.buckets {
            set.subtract(ids);
        }
        self.buckets.retain(|(_, set)| !set.is_empty());
    }

    /// True when no annotations contribute.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.buckets.len() * std::mem::size_of::<(ColSig, IdSet)>()
            + self
                .buckets
                .iter()
                .map(|(_, s)| s.heap_bytes())
                .sum::<usize>()
    }

    fn merge_bucket(&mut self, sig: ColSig, set: IdSet) {
        if set.is_empty() {
            return;
        }
        match self
            .buckets
            .binary_search_by_key(&sig.bits(), |(s, _)| s.bits())
        {
            Ok(i) => {
                let merged = self.buckets[i].1.union(&set);
                self.buckets[i].1 = merged;
            }
            Err(i) => self.buckets.insert(i, (sig, set)),
        }
    }
}

impl codec::Encodable for SigMap {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.varint(self.buckets.len() as u64);
        for (sig, set) in &self.buckets {
            enc.u64(sig.bits());
            enc.idset(set);
        }
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        let n = dec.varint()? as usize;
        let mut buckets = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            let sig = ColSig::from_bits(dec.u64()?);
            let set = dec.idset()?;
            buckets.push((sig, set));
        }
        Ok(Self { buckets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_common::codec::Encodable;
    use insightnotes_common::ColumnId;

    fn sig(cols: &[u16]) -> ColSig {
        ColSig::of_columns(&cols.iter().map(|&c| ColumnId::new(c)).collect::<Vec<_>>())
    }

    #[test]
    fn add_buckets_by_signature() {
        let mut m = SigMap::new();
        m.add(1, sig(&[0, 1]));
        m.add(2, sig(&[0, 1]));
        m.add(3, sig(&[2]));
        assert_eq!(m.bucket_count(), 2);
        assert_eq!(m.distinct_count(), 3);
    }

    #[test]
    fn project_drops_fully_covered_buckets() {
        // Figure 2 step 1: annotations on r.c / r.d (cols 2, 3) vanish when
        // projecting onto (a, b) = cols 0, 1.
        let mut m = SigMap::new();
        m.add(1, sig(&[0, 1, 2, 3])); // whole-row annotation survives
        m.add(2, sig(&[2])); // on r.c only → dropped
        m.add(3, sig(&[3])); // on r.d only → dropped
        let dropped = m.project(&|c| if c <= 1 { Some(c) } else { None });
        assert_eq!(dropped.as_slice(), &[2, 3]);
        assert_eq!(m.distinct_count(), 1);
        // Surviving bucket re-keyed to the output ordinals.
        assert_eq!(m.buckets()[0].0, sig(&[0, 1]));
    }

    #[test]
    fn project_keeps_id_alive_through_any_surviving_bucket() {
        // After a join merge the same annotation can contribute under two
        // signatures; dropping one side must not drop the annotation.
        let mut m = SigMap::new();
        m.add(7, sig(&[0]));
        m.add(7, sig(&[4]));
        let dropped = m.project(&|c| if c == 4 { Some(0) } else { None });
        assert!(dropped.is_empty());
        assert_eq!(m.distinct_count(), 1);
    }

    #[test]
    fn project_rekey_merges_colliding_buckets() {
        let mut m = SigMap::new();
        m.add(1, sig(&[0, 2]));
        m.add(2, sig(&[0]));
        // Dropping col 2 folds {0,2} into {0}.
        let dropped = m.project(&|c| if c == 0 { Some(0) } else { None });
        assert!(dropped.is_empty());
        assert_eq!(m.bucket_count(), 1);
        assert_eq!(m.buckets()[0].1.len(), 2);
    }

    #[test]
    fn merge_deduplicates_shared_ids() {
        let mut a = SigMap::new();
        a.add(1, sig(&[0]));
        a.add(2, sig(&[0]));
        let mut b = SigMap::new();
        b.add(2, sig(&[0]));
        b.add(3, sig(&[1]));
        a.merge(&b);
        assert_eq!(a.distinct_count(), 3);
        assert_eq!(a.bucket_count(), 2);
    }

    #[test]
    fn remove_ids_prunes_empty_buckets() {
        let mut m = SigMap::new();
        m.add(1, sig(&[0]));
        m.add(2, sig(&[1]));
        m.remove_ids(&IdSet::from_iter_unsorted([1]));
        assert_eq!(m.bucket_count(), 1);
        assert_eq!(m.distinct_count(), 1);
    }

    #[test]
    fn round_trips_through_codec() {
        let mut m = SigMap::new();
        m.add(1, sig(&[0, 1]));
        m.add(9, sig(&[3]));
        assert_eq!(SigMap::from_bytes(&m.to_bytes()).unwrap(), m);
    }
}
