//! Summary instances: configured summarization techniques.
//!
//! A summary instance is a domain expert's configuration of one of the
//! built-in summary types (Figure 4, level 2): which class labels and
//! trained model for a Classifier, which similarity threshold for a
//! Cluster, which length limits for a Snippet. Instances expose one hot
//! operation — [`SummaryInstance::digest`] — that turns a raw annotation
//! into a [`Contribution`] the object algebra can apply.
//!
//! The `AnnotationInvariant` / `DataInvariant` properties declare what the
//! digest depends on. When both hold, an annotation attached to many
//! tuples is digested **once** and the contribution replayed per tuple
//! (the paper's summarize-once optimization); when `DataInvariant` is
//! false the digest also sees the host tuple's content, so it must be
//! recomputed per tuple.

use crate::object::{ClassifierObject, ClusterObject, Contribution, SnippetObject, SummaryObject};
use insightnotes_common::{codec, Error, InstanceId, Result};
use insightnotes_text::{
    summarize_extractive, tokenize, ClusterConfig, NaiveBayes, SnippetConfig, SparseVector,
    Vocabulary,
};
use parking_lot::witness::class as lock_class;
use parking_lot::Mutex;
use std::sync::Arc;

/// The built-in summary types (Figure 4, level 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SummaryKind {
    /// Categorize annotations into user-defined classes.
    Classifier,
    /// Group similar annotations; report a representative per group.
    Cluster,
    /// Compress large attached documents into snippets.
    Snippet,
}

impl SummaryKind {
    /// Parses a type name as written in `CREATE SUMMARY INSTANCE`.
    pub fn parse(name: &str) -> Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "classifier" => Ok(SummaryKind::Classifier),
            "cluster" => Ok(SummaryKind::Cluster),
            "snippet" => Ok(SummaryKind::Snippet),
            other => Err(Error::Summary(format!("unknown summary type `{other}`"))),
        }
    }
}

impl std::fmt::Display for SummaryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SummaryKind::Classifier => "Classifier",
            SummaryKind::Cluster => "Cluster",
            SummaryKind::Snippet => "Snippet",
        };
        f.write_str(s)
    }
}

/// The invariance properties controlling maintenance optimizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceProperties {
    /// The digest does not depend on the host tuple's *other annotations*.
    pub annotation_invariant: bool,
    /// The digest does not depend on the host tuple's *data values*.
    pub data_invariant: bool,
}

impl Default for InstanceProperties {
    fn default() -> Self {
        Self {
            annotation_invariant: true,
            data_invariant: true,
        }
    }
}

impl InstanceProperties {
    /// True when an annotation may be digested once and replayed across
    /// all of its target tuples.
    pub fn summarize_once(&self) -> bool {
        self.annotation_invariant && self.data_invariant
    }
}

/// Type-specific configuration and state.
enum Technique {
    Classifier {
        model: NaiveBayes,
        labels: Arc<[String]>,
    },
    Cluster {
        config: ClusterConfig,
        /// Shared term interner; interior mutability because digesting a
        /// new annotation may intern new terms while the registry is read
        /// elsewhere.
        vocab: Mutex<Vocabulary>,
    },
    Snippet {
        config: SnippetConfig,
        /// Plain-text annotations shorter than this are not snippeted
        /// (only documents and long texts are "large objects").
        min_source_bytes: usize,
    },
}

impl std::fmt::Debug for Technique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Technique::Classifier { labels, .. } => {
                write!(f, "Classifier{{labels: {labels:?}}}")
            }
            Technique::Cluster { config, .. } => write!(f, "Cluster{{config: {config:?}}}"),
            Technique::Snippet { config, .. } => write!(f, "Snippet{{config: {config:?}}}"),
        }
    }
}

/// A configured summary instance.
#[derive(Debug)]
pub struct SummaryInstance {
    id: InstanceId,
    name: String,
    properties: InstanceProperties,
    technique: Technique,
}

impl SummaryInstance {
    /// Builds a classifier instance from a trained model.
    pub fn classifier(
        id: InstanceId,
        name: impl Into<String>,
        model: NaiveBayes,
        properties: InstanceProperties,
    ) -> Self {
        let labels: Arc<[String]> = model.labels().to_vec().into();
        Self {
            id,
            name: name.into(),
            properties,
            technique: Technique::Classifier { model, labels },
        }
    }

    /// Builds a cluster instance.
    pub fn cluster(
        id: InstanceId,
        name: impl Into<String>,
        config: ClusterConfig,
        properties: InstanceProperties,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            properties,
            technique: Technique::Cluster {
                config,
                vocab: Mutex::new(Vocabulary::new()).with_class(lock_class::VOCAB),
            },
        }
    }

    /// Builds a snippet instance. `min_source_bytes` sets the size above
    /// which a plain-text annotation counts as a large object.
    pub fn snippet(
        id: InstanceId,
        name: impl Into<String>,
        config: SnippetConfig,
        min_source_bytes: usize,
        properties: InstanceProperties,
    ) -> Self {
        Self {
            id,
            name: name.into(),
            properties,
            technique: Technique::Snippet {
                config,
                min_source_bytes,
            },
        }
    }

    /// Instance id.
    pub fn id(&self) -> InstanceId {
        self.id
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Invariance properties.
    pub fn properties(&self) -> InstanceProperties {
        self.properties
    }

    /// The instance's summary type.
    pub fn kind(&self) -> SummaryKind {
        match self.technique {
            Technique::Classifier { .. } => SummaryKind::Classifier,
            Technique::Cluster { .. } => SummaryKind::Cluster,
            Technique::Snippet { .. } => SummaryKind::Snippet,
        }
    }

    /// Class labels, for classifier instances.
    pub fn labels(&self) -> Option<&[String]> {
        match &self.technique {
            Technique::Classifier { labels, .. } => Some(labels),
            _ => None,
        }
    }

    /// Creates an empty summary object of this instance's shape.
    pub fn new_object(&self) -> SummaryObject {
        match &self.technique {
            Technique::Classifier { labels, .. } => {
                SummaryObject::Classifier(ClassifierObject::new(labels.clone()))
            }
            Technique::Cluster { config, .. } => {
                SummaryObject::Cluster(ClusterObject::new(config.clone()))
            }
            Technique::Snippet { .. } => SummaryObject::Snippet(SnippetObject::new()),
        }
    }

    /// Digests one annotation into a contribution.
    ///
    /// `text` is the annotation's free text, `document` its attached large
    /// object, and `tuple_context` the host tuple's rendered content —
    /// consulted only when the instance is not data-invariant.
    ///
    /// Returns `Ok(None)` when the instance does not summarize this
    /// annotation (e.g. a snippet instance and a short plain-text note).
    pub fn digest(
        &self,
        text: &str,
        document: Option<&str>,
        tuple_context: Option<&str>,
    ) -> Result<Option<Contribution>> {
        match &self.technique {
            Technique::Classifier { model, .. } => {
                let label = if self.properties.data_invariant {
                    model.classify(text)
                } else {
                    // Data-variant classification sees the host tuple too.
                    let ctx = tuple_context.ok_or_else(|| {
                        Error::Summary(format!(
                            "instance `{}` is data-variant but no tuple context was supplied",
                            self.name
                        ))
                    })?;
                    model.classify(&format!("{text} {ctx}"))
                };
                Ok(Some(Contribution::Label(label)))
            }
            Technique::Cluster { vocab, .. } => {
                let tokens = tokenize(text);
                if tokens.is_empty() {
                    return Ok(None);
                }
                let ids = vocab.lock().intern_all(&tokens);
                Ok(Some(Contribution::Vector {
                    vector: SparseVector::from_term_ids(&ids),
                    preview: text.to_string(),
                }))
            }
            Technique::Snippet {
                config,
                min_source_bytes,
            } => {
                let source = match document {
                    Some(doc) => doc,
                    None if text.len() >= *min_source_bytes => text,
                    None => return Ok(None),
                };
                Ok(Some(Contribution::Snippet {
                    text: summarize_extractive(source, config),
                    source_bytes: source.len() as u64,
                }))
            }
        }
    }
}

impl codec::Encodable for InstanceProperties {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.bool(self.annotation_invariant);
        enc.bool(self.data_invariant);
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        Ok(InstanceProperties {
            annotation_invariant: dec.bool()?,
            data_invariant: dec.bool()?,
        })
    }
}

impl codec::Encodable for SummaryInstance {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.u32(self.id.raw());
        enc.str(&self.name);
        self.properties.encode(enc);
        match &self.technique {
            Technique::Classifier { model, .. } => {
                enc.u8(0);
                model.encode(enc);
            }
            Technique::Cluster { config, vocab } => {
                enc.u8(1);
                config.encode(enc);
                vocab.lock().encode(enc);
            }
            Technique::Snippet {
                config,
                min_source_bytes,
            } => {
                enc.u8(2);
                config.encode(enc);
                enc.varint(*min_source_bytes as u64);
            }
        }
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        let id = InstanceId::new(dec.u32()?);
        let name = dec.str()?;
        let properties = InstanceProperties::decode(dec)?;
        let technique = match dec.u8()? {
            0 => {
                let model = insightnotes_text::NaiveBayes::decode(dec)?;
                let labels: Arc<[String]> = model.labels().to_vec().into();
                Technique::Classifier { model, labels }
            }
            1 => Technique::Cluster {
                config: insightnotes_text::ClusterConfig::decode(dec)?,
                vocab: Mutex::new(insightnotes_text::Vocabulary::decode(dec)?)
                    .with_class(lock_class::VOCAB),
            },
            2 => Technique::Snippet {
                config: insightnotes_text::SnippetConfig::decode(dec)?,
                min_source_bytes: dec.varint()? as usize,
            },
            t => return Err(Error::Codec(format!("invalid summary technique tag {t}"))),
        };
        Ok(SummaryInstance {
            id,
            name,
            properties,
            technique,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insightnotes_annotations::ColSig;

    fn bird_model() -> NaiveBayes {
        let mut nb = NaiveBayes::new(vec!["Behavior".into(), "Disease".into(), "Other".into()]);
        nb.train(0, "eating stonewort diving for fish");
        nb.train(1, "lesions parasites infected wing");
        nb.train(2, "see attached reference");
        nb
    }

    #[test]
    fn kind_parse_round_trips() {
        for (s, k) in [
            ("classifier", SummaryKind::Classifier),
            ("CLUSTER", SummaryKind::Cluster),
            ("Snippet", SummaryKind::Snippet),
        ] {
            assert_eq!(SummaryKind::parse(s).unwrap(), k);
        }
        assert!(SummaryKind::parse("regression").is_err());
    }

    #[test]
    fn classifier_digest_labels_annotations() {
        let inst = SummaryInstance::classifier(
            InstanceId(1),
            "ClassBird1",
            bird_model(),
            InstanceProperties::default(),
        );
        assert_eq!(inst.kind(), SummaryKind::Classifier);
        assert!(inst.properties().summarize_once());
        let c = inst.digest("found eating stonewort", None, None).unwrap();
        assert_eq!(c, Some(Contribution::Label(0)));
        // Apply to a fresh object end-to-end.
        let mut obj = inst.new_object();
        obj.apply(1, ColSig::whole_row(2), &c.unwrap()).unwrap();
        assert_eq!(obj.as_classifier().unwrap().count(0), 1);
    }

    #[test]
    fn data_variant_classifier_requires_tuple_context() {
        let props = InstanceProperties {
            annotation_invariant: true,
            data_invariant: false,
        };
        let inst = SummaryInstance::classifier(InstanceId(2), "ctx", bird_model(), props);
        assert!(!inst.properties().summarize_once());
        assert!(inst.digest("lesions", None, None).is_err());
        assert!(inst
            .digest("lesions", None, Some("swan goose 3.5kg"))
            .unwrap()
            .is_some());
    }

    #[test]
    fn cluster_digest_produces_vectors_and_skips_empty_text() {
        let inst = SummaryInstance::cluster(
            InstanceId(3),
            "SimCluster",
            ClusterConfig::default(),
            InstanceProperties::default(),
        );
        let c = inst
            .digest("eating stonewort", None, None)
            .unwrap()
            .unwrap();
        match c {
            Contribution::Vector { vector, preview } => {
                assert_eq!(vector.nnz(), 2);
                assert_eq!(preview, "eating stonewort");
            }
            other => panic!("unexpected contribution {other:?}"),
        }
        assert_eq!(inst.digest("  ,, ", None, None).unwrap(), None);
    }

    #[test]
    fn cluster_digests_share_a_vocabulary() {
        let inst = SummaryInstance::cluster(
            InstanceId(4),
            "SimCluster",
            ClusterConfig::default(),
            InstanceProperties::default(),
        );
        let a = inst
            .digest("eating stonewort", None, None)
            .unwrap()
            .unwrap();
        let b = inst
            .digest("eating stonewort", None, None)
            .unwrap()
            .unwrap();
        match (a, b) {
            (Contribution::Vector { vector: va, .. }, Contribution::Vector { vector: vb, .. }) => {
                assert!((va.cosine(&vb) - 1.0).abs() < 1e-6);
            }
            _ => panic!("expected vectors"),
        }
    }

    #[test]
    fn snippet_digest_summarizes_documents_only() {
        let inst = SummaryInstance::snippet(
            InstanceId(5),
            "TextSummary1",
            SnippetConfig::default(),
            512,
            InstanceProperties::default(),
        );
        // Short plain text → not a large object.
        assert_eq!(inst.digest("short note", None, None).unwrap(), None);
        // A document is always summarized.
        let doc = "A sentence about geese. ".repeat(50);
        let c = inst
            .digest("see attachment", Some(&doc), None)
            .unwrap()
            .unwrap();
        match c {
            Contribution::Snippet { text, source_bytes } => {
                assert_eq!(source_bytes as usize, doc.len());
                assert!(text.len() < doc.len());
            }
            other => panic!("unexpected contribution {other:?}"),
        }
        // Long plain text also counts as a large object.
        let long_text = "Observed grazing behavior near water. ".repeat(30);
        assert!(inst.digest(&long_text, None, None).unwrap().is_some());
    }

    #[test]
    fn new_object_shape_matches_kind() {
        let inst = SummaryInstance::snippet(
            InstanceId(6),
            "s",
            SnippetConfig::default(),
            512,
            InstanceProperties::default(),
        );
        assert!(inst.new_object().as_snippet().is_some());
        assert_eq!(inst.labels(), None);
    }
}
