//! The summary registry: instances, links, and per-tuple objects.
//!
//! The registry realizes the many-to-many link level of Figure 4: summary
//! instances are created once, then linked to any number of relations;
//! every annotated row of a linked relation gets one summary object per
//! linked instance. It also owns the **digest cache** behind the
//! summarize-once optimization: when an instance is both
//! annotation-invariant and data-invariant, an annotation's digest is
//! computed on first contact and replayed for every further target tuple.

use crate::instance::{InstanceProperties, SummaryInstance, SummaryKind};
use crate::maintenance::MaintenanceStats;
use crate::object::{Contribution, SummaryObject};
use insightnotes_annotations::{AnnotationBody, ColSig, Target};
use insightnotes_common::{codec, AnnotationId, Error, InstanceId, Result, RowId, TableId};
use insightnotes_text::{ClusterConfig, NaiveBayes, SnippetConfig};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// A summary object shared copy-on-write between the registry and any
/// query results carrying it. Readers clone the `Arc` (a refcount bump);
/// writers go through [`Arc::make_mut`], which clones the payload only
/// when another holder exists.
pub type SharedObject = Arc<SummaryObject>;

/// Declarative instance definition, as produced by
/// `CREATE SUMMARY INSTANCE`.
#[derive(Debug)]
pub enum InstanceDef {
    /// A classifier with a pre-trained model.
    Classifier {
        /// Instance name.
        name: String,
        /// Trained Naive Bayes model (labels included).
        model: NaiveBayes,
        /// Invariance properties.
        properties: InstanceProperties,
    },
    /// A content-similarity clusterer.
    Cluster {
        /// Instance name.
        name: String,
        /// Clustering parameters.
        config: ClusterConfig,
        /// Invariance properties.
        properties: InstanceProperties,
    },
    /// A large-object snippet summarizer.
    Snippet {
        /// Instance name.
        name: String,
        /// Summarizer parameters.
        config: SnippetConfig,
        /// Plain text shorter than this is not snippeted.
        min_source_bytes: usize,
        /// Invariance properties.
        properties: InstanceProperties,
    },
}

impl InstanceDef {
    fn name(&self) -> &str {
        match self {
            InstanceDef::Classifier { name, .. } => name,
            InstanceDef::Cluster { name, .. } => name,
            InstanceDef::Snippet { name, .. } => name,
        }
    }

    fn build(self, id: InstanceId) -> SummaryInstance {
        match self {
            InstanceDef::Classifier {
                name,
                model,
                properties,
            } => SummaryInstance::classifier(id, name, model, properties),
            InstanceDef::Cluster {
                name,
                config,
                properties,
            } => SummaryInstance::cluster(id, name, config, properties),
            InstanceDef::Snippet {
                name,
                config,
                min_source_bytes,
                properties,
            } => SummaryInstance::snippet(id, name, config, min_source_bytes, properties),
        }
    }
}

/// Instances, table links, per-row objects, and the digest cache.
#[derive(Debug, Default)]
pub struct SummaryRegistry {
    instances: BTreeMap<InstanceId, SummaryInstance>,
    by_name: HashMap<String, InstanceId>,
    links: HashMap<TableId, Vec<InstanceId>>,
    objects: HashMap<(TableId, RowId), Vec<(InstanceId, SharedObject)>>,
    digest_cache: HashMap<(InstanceId, AnnotationId), Option<Contribution>>,
    /// Disable to force per-tuple digesting (the E5 ablation baseline).
    pub use_digest_cache: bool,
    next_instance: u32,
}

impl SummaryRegistry {
    /// Creates an empty registry with the digest cache enabled.
    pub fn new() -> Self {
        Self {
            use_digest_cache: true,
            ..Self::default()
        }
    }

    // -- instances -----------------------------------------------------

    /// Creates an instance from a definition. Names are unique
    /// (case-insensitive).
    pub fn create_instance(&mut self, def: InstanceDef) -> Result<InstanceId> {
        let key = def.name().to_ascii_lowercase();
        if self.by_name.contains_key(&key) {
            return Err(Error::Summary(format!(
                "summary instance `{key}` already exists"
            )));
        }
        self.next_instance += 1;
        let id = InstanceId::new(self.next_instance);
        self.by_name.insert(key, id);
        self.instances.insert(id, def.build(id));
        Ok(id)
    }

    /// Drops an instance, its links, and every object it produced.
    pub fn drop_instance(&mut self, id: InstanceId) -> Result<()> {
        let inst = self
            .instances
            .remove(&id)
            .ok_or_else(|| Error::Summary(format!("unknown summary instance {id}")))?;
        self.by_name.remove(&inst.name().to_ascii_lowercase());
        for linked in self.links.values_mut() {
            linked.retain(|&i| i != id);
        }
        for objs in self.objects.values_mut() {
            objs.retain(|(i, _)| *i != id);
        }
        self.objects.retain(|_, objs| !objs.is_empty());
        self.digest_cache.retain(|(i, _), _| *i != id);
        Ok(())
    }

    /// Borrows an instance.
    pub fn instance(&self, id: InstanceId) -> Result<&SummaryInstance> {
        self.instances
            .get(&id)
            .ok_or_else(|| Error::Summary(format!("unknown summary instance {id}")))
    }

    /// Looks up an instance id by name.
    pub fn instance_id(&self, name: &str) -> Result<InstanceId> {
        self.by_name
            .get(&name.to_ascii_lowercase())
            .copied()
            .ok_or_else(|| Error::Summary(format!("unknown summary instance `{name}`")))
    }

    /// All instances in id order.
    pub fn instances(&self) -> impl Iterator<Item = &SummaryInstance> {
        self.instances.values()
    }

    // -- links ---------------------------------------------------------

    /// Links an instance to a table. Annotations on the table's rows will
    /// be summarized by the instance from now on (existing annotations are
    /// absorbed by the caller via rebuild — see
    /// [`SummaryRegistry::rebuild_row`]).
    pub fn link(&mut self, instance: InstanceId, table: TableId) -> Result<()> {
        self.instance(instance)?;
        let linked = self.links.entry(table).or_default();
        if linked.contains(&instance) {
            return Err(Error::Summary(format!(
                "instance {instance} already linked to table {table}"
            )));
        }
        linked.push(instance);
        linked.sort_unstable();
        Ok(())
    }

    /// Removes a link and the objects the instance maintained on that
    /// table.
    pub fn unlink(&mut self, instance: InstanceId, table: TableId) -> Result<()> {
        let linked = self.links.get_mut(&table).ok_or_else(|| {
            Error::Summary(format!(
                "instance {instance} is not linked to table {table}"
            ))
        })?;
        let before = linked.len();
        linked.retain(|&i| i != instance);
        if linked.len() == before {
            return Err(Error::Summary(format!(
                "instance {instance} is not linked to table {table}"
            )));
        }
        self.objects.retain(|(t, _), objs| {
            if *t == table {
                objs.retain(|(i, _)| *i != instance);
                !objs.is_empty()
            } else {
                true
            }
        });
        Ok(())
    }

    /// Instances linked to a table, in id order.
    pub fn linked_instances(&self, table: TableId) -> &[InstanceId] {
        self.links.get(&table).map_or(&[], Vec::as_slice)
    }

    // -- objects -------------------------------------------------------

    /// The summary objects on a row, in instance-id order. The objects
    /// are `Arc`-shared: query execution attaches them to result rows by
    /// cloning the handles, not the payloads.
    pub fn objects_on(&self, table: TableId, row: RowId) -> &[(InstanceId, SharedObject)] {
        self.objects.get(&(table, row)).map_or(&[], Vec::as_slice)
    }

    /// One instance's object on a row, if any.
    pub fn object(
        &self,
        table: TableId,
        row: RowId,
        instance: InstanceId,
    ) -> Option<&SummaryObject> {
        self.objects_on(table, row)
            .iter()
            .find(|(i, _)| *i == instance)
            .map(|(_, o)| o.as_ref())
    }

    /// Total number of maintained summary objects.
    pub fn object_count(&self) -> usize {
        self.objects.values().map(Vec::len).sum()
    }

    /// Total approximate heap bytes of all maintained objects (F1).
    pub fn total_object_bytes(&self) -> usize {
        self.objects
            .values()
            .flat_map(|v| v.iter())
            .map(|(_, o)| o.heap_bytes())
            .sum()
    }

    /// Drops every object on a row (row deletion).
    pub fn clear_row(&mut self, table: TableId, row: RowId) {
        self.objects.remove(&(table, row));
    }

    // -- maintenance ---------------------------------------------------

    /// Incrementally absorbs a newly added annotation: for every target
    /// row and every instance linked to the target's table, digest the
    /// annotation (through the cache when the instance allows) and apply
    /// the contribution to the row's object.
    ///
    /// `tuple_context` renders a host tuple's content for data-variant
    /// instances; it is only invoked for those.
    pub fn apply_annotation(
        &mut self,
        id: AnnotationId,
        body: &AnnotationBody,
        targets: &[Target],
        tuple_context: &dyn Fn(TableId, RowId) -> Option<String>,
    ) -> Result<MaintenanceStats> {
        let mut stats = MaintenanceStats::default();
        for target in targets {
            let linked = self.links.get(&target.table).cloned().unwrap_or_default();
            for inst_id in linked {
                let contribution = self.digest_for(
                    inst_id,
                    id,
                    body,
                    target.table,
                    target.row,
                    tuple_context,
                    &mut stats,
                )?;
                if let Some(c) = contribution {
                    self.apply_to_object(inst_id, target.table, target.row, id, target.cols, &c)?;
                    stats.objects_updated += 1;
                }
            }
        }
        Ok(stats)
    }

    /// Digests a batch of newly stored annotations in arrival order —
    /// annotation-major, targets in attachment order — before any
    /// row-grouped application. For summarize-once instances the
    /// contribution lands in the digest cache, so the later apply pass
    /// recomputes nothing. The pass exists because digesting also
    /// interns new cluster-vocabulary terms, and term ids must be
    /// assigned in the order a one-by-one replay would assign them for
    /// batch ingest to stay byte-identical to serial ingest; a
    /// row-grouped first touch would permute them.
    ///
    /// The warm-up attributes **no** maintenance counters: the apply
    /// pass accounts every digest at the moment a serial replay would
    /// have performed it (see `apply_annotations_batch`), counting its
    /// own first touch of each `(instance, annotation)` pair as the
    /// computation even when this warm-up already planted it in the
    /// cache.
    pub fn warm_digests(
        &mut self,
        anns: &[(AnnotationId, &AnnotationBody, &[Target])],
        tuple_context: &dyn Fn(TableId, RowId) -> Option<String>,
    ) -> Result<()> {
        // One context rendering per row across the whole warm-up.
        let mut contexts: HashMap<(TableId, RowId), Option<String>> = HashMap::new();
        for &(aid, body, targets) in anns {
            for t in targets {
                let linked = self.links.get(&t.table).cloned().unwrap_or_default();
                for inst_id in linked {
                    let (table, row) = (t.table, t.row);
                    let mut stats = MaintenanceStats::default();
                    self.digest_cached(
                        inst_id,
                        aid,
                        body,
                        &mut || {
                            contexts
                                .entry((table, row))
                                .or_insert_with(|| tuple_context(table, row))
                                .clone()
                        },
                        &mut stats,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Batch form of [`SummaryRegistry::apply_annotation`]: absorbs
    /// several newly stored annotations with maintenance amortized per
    /// touched row. `rows` maps each `(table, row)` to the annotations
    /// targeting it in ascending annotation-id order (= arrival order);
    /// `bodies` resolves an id to its body. Callers run
    /// [`SummaryRegistry::warm_digests`] first so that vocabulary
    /// interning happens in arrival order, not row order.
    ///
    /// Per `(row, instance)` pair the contributions are digested first
    /// (through the summarize-once cache), then the row's object is
    /// looked up and unshared (`Arc::make_mut`) **once** and every
    /// contribution applied in id order — exactly the per-object update
    /// sequence a one-by-one replay produces, which is what makes the
    /// batch path byte-identical to serial ingest. The host tuple's
    /// context is rendered at most once per row and shared by every
    /// data-variant digest in the batch.
    ///
    /// Per-annotation counters are accumulated into `per_annotation`;
    /// the returned stats are the batch total. Counters match a serial
    /// replay exactly: the warm-up pass may have planted a digest in the
    /// cache that a serial run would only compute now, so the first time
    /// this pass touches each `(instance, annotation)` pair, a
    /// cache-served digest is accounted as the computation it replaces;
    /// later touches stay cache hits, as they would serially.
    pub fn apply_annotations_batch(
        &mut self,
        rows: &BTreeMap<(TableId, RowId), Vec<(AnnotationId, ColSig)>>,
        bodies: &HashMap<AnnotationId, &AnnotationBody>,
        tuple_context: &dyn Fn(TableId, RowId) -> Option<String>,
        per_annotation: &mut HashMap<AnnotationId, MaintenanceStats>,
    ) -> Result<MaintenanceStats> {
        let mut total = MaintenanceStats::default();
        let mut first_contact: HashSet<(InstanceId, AnnotationId)> = HashSet::new();
        for (&(table, row), anns) in rows {
            let linked = self.links.get(&table).cloned().unwrap_or_default();
            if linked.is_empty() {
                continue;
            }
            // Rendered lazily on the first data-variant digest, then
            // reused for every instance and annotation on this row.
            let mut row_ctx: Option<Option<String>> = None;
            let mut ctx =
                |t: TableId, r: RowId| row_ctx.get_or_insert_with(|| tuple_context(t, r)).clone();
            for inst_id in linked {
                // Contributions first (digesting borrows the cache
                // mutably), then one unshare-and-apply pass.
                let mut contribs: Vec<(AnnotationId, ColSig, Contribution)> =
                    Vec::with_capacity(anns.len());
                for &(aid, cols) in anns {
                    let body = bodies.get(&aid).ok_or_else(|| {
                        Error::Summary(format!("batch apply is missing the body of {aid}"))
                    })?;
                    let mut stats = MaintenanceStats::default();
                    let contribution = self.digest_cached(
                        inst_id,
                        aid,
                        body,
                        &mut || ctx(table, row),
                        &mut stats,
                    )?;
                    if let Some(c) = contribution {
                        contribs.push((aid, cols, c));
                    }
                    if first_contact.insert((inst_id, aid))
                        && stats.digests_computed == 0
                        && stats.cache_hits == 1
                    {
                        // Warm-up served this from the cache, but a
                        // serial replay would be computing it right
                        // here — recount it as the computation.
                        stats.digests_computed = 1;
                        stats.cache_hits = 0;
                    }
                    total.absorb(stats);
                    per_annotation.entry(aid).or_default().absorb(stats);
                }
                if contribs.is_empty() {
                    continue;
                }
                let fresh = self
                    .instances
                    .get(&inst_id)
                    .ok_or_else(|| Error::Summary(format!("unknown summary instance {inst_id}")))?
                    .new_object();
                let objs = self.objects.entry((table, row)).or_default();
                let handle = match objs.iter_mut().position(|(i, _)| *i == inst_id) {
                    Some(pos) => &mut objs[pos].1,
                    None => {
                        let pos = objs.partition_point(|(i, _)| *i < inst_id);
                        objs.insert(pos, (inst_id, Arc::new(fresh)));
                        &mut objs[pos].1
                    }
                };
                let obj = Arc::make_mut(handle);
                for (aid, cols, c) in &contribs {
                    obj.apply(aid.raw(), *cols, c)?;
                    total.objects_updated += 1;
                    per_annotation.entry(*aid).or_default().objects_updated += 1;
                }
            }
        }
        Ok(total)
    }

    /// Rebuilds one row's objects from scratch from its full annotation
    /// list — the non-incremental baseline (experiment E1) and the
    /// catch-up path after `LINK`.
    pub fn rebuild_row(
        &mut self,
        table: TableId,
        row: RowId,
        annotations: &[(AnnotationId, ColSig, &AnnotationBody)],
        tuple_context: &dyn Fn(TableId, RowId) -> Option<String>,
    ) -> Result<MaintenanceStats> {
        let mut stats = MaintenanceStats::default();
        self.objects.remove(&(table, row));
        let linked = self.links.get(&table).cloned().unwrap_or_default();
        for &(aid, cols, body) in annotations {
            for &inst_id in &linked {
                let contribution =
                    self.digest_for(inst_id, aid, body, table, row, tuple_context, &mut stats)?;
                if let Some(c) = contribution {
                    self.apply_to_object(inst_id, table, row, aid, cols, &c)?;
                    stats.objects_updated += 1;
                }
            }
        }
        Ok(stats)
    }

    #[allow(clippy::too_many_arguments)] // internal hot path; a params
                                         // struct would be built and torn down per annotation for no benefit
    fn digest_for(
        &mut self,
        inst_id: InstanceId,
        ann_id: AnnotationId,
        body: &AnnotationBody,
        table: TableId,
        row: RowId,
        tuple_context: &dyn Fn(TableId, RowId) -> Option<String>,
        stats: &mut MaintenanceStats,
    ) -> Result<Option<Contribution>> {
        self.digest_cached(
            inst_id,
            ann_id,
            body,
            &mut || tuple_context(table, row),
            stats,
        )
    }

    /// Digests one annotation for one instance, through the
    /// summarize-once cache when the instance allows. `ctx` supplies the
    /// host tuple's rendered content for data-variant instances; it is a
    /// `FnMut` so the batch path can memoize one rendering per row.
    fn digest_cached(
        &mut self,
        inst_id: InstanceId,
        ann_id: AnnotationId,
        body: &AnnotationBody,
        ctx: &mut dyn FnMut() -> Option<String>,
        stats: &mut MaintenanceStats,
    ) -> Result<Option<Contribution>> {
        let inst = self
            .instances
            .get(&inst_id)
            .ok_or_else(|| Error::Summary(format!("unknown summary instance {inst_id}")))?;
        let cacheable = self.use_digest_cache && inst.properties().summarize_once();
        if cacheable {
            if let Some(cached) = self.digest_cache.get(&(inst_id, ann_id)) {
                stats.cache_hits += 1;
                return Ok(cached.clone());
            }
        }
        let ctx = if inst.properties().data_invariant {
            None
        } else {
            ctx()
        };
        let contribution = inst.digest(&body.text, body.document.as_deref(), ctx.as_deref())?;
        stats.digests_computed += 1;
        if cacheable {
            self.digest_cache
                .insert((inst_id, ann_id), contribution.clone());
        }
        Ok(contribution)
    }

    fn apply_to_object(
        &mut self,
        inst_id: InstanceId,
        table: TableId,
        row: RowId,
        ann_id: AnnotationId,
        cols: ColSig,
        contribution: &Contribution,
    ) -> Result<()> {
        let fresh = self
            .instances
            .get(&inst_id)
            .ok_or_else(|| Error::Summary(format!("unknown summary instance {inst_id}")))?
            .new_object();
        let objs = self.objects.entry((table, row)).or_default();
        let obj = match objs.iter_mut().find(|(i, _)| *i == inst_id) {
            Some((_, o)) => o,
            None => {
                let pos = objs.partition_point(|(i, _)| *i < inst_id);
                objs.insert(pos, (inst_id, Arc::new(fresh)));
                &mut objs[pos].1
            }
        };
        Arc::make_mut(obj).apply(ann_id.raw(), cols, contribution)
    }

    /// Decrementally removes a deleted annotation's contribution from the
    /// objects of its former targets — the inverse of
    /// [`SummaryRegistry::apply_annotation`]. Exact for classifier and
    /// snippet objects; for cluster objects the membership and
    /// representatives are exact while centroids remain a bounded sketch
    /// of everything absorbed (rebuild via
    /// [`SummaryRegistry::rebuild_row`] re-canonicalizes them).
    pub fn remove_annotation(&mut self, id: AnnotationId, targets: &[Target]) {
        for t in targets {
            let key = (t.table, t.row);
            if let Some(objs) = self.objects.get_mut(&key) {
                for (_, obj) in objs.iter_mut() {
                    // The membership precheck keeps no-op removals from
                    // deep-cloning objects still shared with cached rows.
                    if obj.contains_annotation(id.raw()) {
                        Arc::make_mut(obj).remove_annotation(id.raw());
                    }
                }
                objs.retain(|(_, o)| !o.is_empty());
                if objs.is_empty() {
                    self.objects.remove(&key);
                }
            }
        }
        self.digest_cache.retain(|(_, a), _| *a != id);
    }

    /// Number of cached digests (observability for the E5 ablation).
    pub fn digest_cache_len(&self) -> usize {
        self.digest_cache.len()
    }

    /// Clears the digest cache.
    pub fn clear_digest_cache(&mut self) {
        self.digest_cache.clear();
    }
}

/// Convenience: the kind of an instance id within a registry.
impl SummaryRegistry {
    /// The summary type of an instance.
    pub fn kind_of(&self, id: InstanceId) -> Result<SummaryKind> {
        Ok(self.instance(id)?.kind())
    }
}

impl codec::Encodable for SummaryRegistry {
    fn encode(&self, enc: &mut codec::Encoder) {
        enc.u32(self.next_instance);
        enc.bool(self.use_digest_cache);
        enc.varint(self.instances.len() as u64);
        for inst in self.instances.values() {
            inst.encode(enc);
        }
        // Links in table-id order, each list already sorted.
        let mut tables: Vec<TableId> = self.links.keys().copied().collect();
        tables.sort_unstable();
        enc.varint(tables.len() as u64);
        for t in tables {
            enc.u32(t.raw());
            enc.seq(&self.links[&t], |e, i| e.u32(i.raw()));
        }
        // Objects in (table, row) order for deterministic snapshots.
        let mut keys: Vec<(TableId, RowId)> = self.objects.keys().copied().collect();
        keys.sort_unstable();
        enc.varint(keys.len() as u64);
        for key in keys {
            enc.u32(key.0.raw());
            enc.varint(key.1.raw());
            let objs = &self.objects[&key];
            enc.varint(objs.len() as u64);
            for (inst, obj) in objs {
                enc.u32(inst.raw());
                obj.encode(enc);
            }
        }
        // The digest cache is a rebuildable optimization; not persisted.
    }

    fn decode(dec: &mut codec::Decoder<'_>) -> Result<Self> {
        let next_instance = dec.u32()?;
        let use_digest_cache = dec.bool()?;
        let mut reg = SummaryRegistry {
            next_instance,
            use_digest_cache,
            ..SummaryRegistry::default()
        };
        let n = dec.varint()? as usize;
        for _ in 0..n {
            let inst = crate::instance::SummaryInstance::decode(dec)?;
            let key = inst.name().to_ascii_lowercase();
            if reg.by_name.insert(key, inst.id()).is_some() {
                return Err(Error::Codec(format!(
                    "duplicate summary instance `{}` in snapshot",
                    inst.name()
                )));
            }
            reg.instances.insert(inst.id(), inst);
        }
        let nl = dec.varint()? as usize;
        for _ in 0..nl {
            let table = TableId::new(dec.u32()?);
            let ids: Vec<InstanceId> = dec.seq(|d| Ok(InstanceId::new(d.u32()?)))?;
            for id in &ids {
                reg.instance(*id)?;
            }
            reg.links.insert(table, ids);
        }
        let no = dec.varint()? as usize;
        for _ in 0..no {
            let table = TableId::new(dec.u32()?);
            let row = RowId::new(dec.varint()?);
            let count = dec.varint()? as usize;
            let mut objs = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                let inst = InstanceId::new(dec.u32()?);
                reg.instance(inst)?;
                objs.push((inst, Arc::new(crate::object::SummaryObject::decode(dec)?)));
            }
            reg.objects.insert((table, row), objs);
        }
        Ok(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: TableId = TableId(1);

    fn bird_model() -> NaiveBayes {
        let mut nb = NaiveBayes::new(vec!["Behavior".into(), "Disease".into(), "Other".into()]);
        nb.train(0, "eating stonewort diving fish");
        nb.train(1, "lesions parasites infected");
        nb.train(2, "see attached reference");
        nb
    }

    fn registry_with_classifier() -> (SummaryRegistry, InstanceId) {
        let mut reg = SummaryRegistry::new();
        let id = reg
            .create_instance(InstanceDef::Classifier {
                name: "ClassBird1".into(),
                model: bird_model(),
                properties: InstanceProperties::default(),
            })
            .unwrap();
        reg.link(id, T).unwrap();
        (reg, id)
    }

    fn target(row: u64) -> Target {
        Target::new(T, RowId(row), ColSig::whole_row(3))
    }

    fn no_ctx(_: TableId, _: RowId) -> Option<String> {
        None
    }

    #[test]
    fn create_link_and_apply() {
        let (mut reg, inst) = registry_with_classifier();
        let body = AnnotationBody::text("found eating stonewort", "alice");
        let stats = reg
            .apply_annotation(AnnotationId(1), &body, &[target(1)], &no_ctx)
            .unwrap();
        assert_eq!(stats.digests_computed, 1);
        assert_eq!(stats.objects_updated, 1);
        let obj = reg.object(T, RowId(1), inst).unwrap();
        assert_eq!(obj.as_classifier().unwrap().count(0), 1);
        assert_eq!(reg.object_count(), 1);
    }

    #[test]
    fn duplicate_names_and_links_rejected() {
        let (mut reg, inst) = registry_with_classifier();
        assert!(reg
            .create_instance(InstanceDef::Cluster {
                name: "classbird1".into(),
                config: ClusterConfig::default(),
                properties: InstanceProperties::default(),
            })
            .is_err());
        assert!(reg.link(inst, T).is_err());
        assert!(reg.link(InstanceId(99), T).is_err());
    }

    #[test]
    fn summarize_once_digests_multi_target_annotation_once() {
        let (mut reg, _) = registry_with_classifier();
        let body = AnnotationBody::text("lesions on wing", "bob");
        let stats = reg
            .apply_annotation(
                AnnotationId(1),
                &body,
                &[target(1), target(2), target(3)],
                &no_ctx,
            )
            .unwrap();
        assert_eq!(stats.digests_computed, 1, "one digest for three tuples");
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.objects_updated, 3);
    }

    #[test]
    fn disabled_cache_digests_per_tuple() {
        let (mut reg, _) = registry_with_classifier();
        reg.use_digest_cache = false;
        let body = AnnotationBody::text("lesions on wing", "bob");
        let stats = reg
            .apply_annotation(AnnotationId(1), &body, &[target(1), target(2)], &no_ctx)
            .unwrap();
        assert_eq!(stats.digests_computed, 2);
        assert_eq!(stats.cache_hits, 0);
    }

    #[test]
    fn unlink_removes_objects() {
        let (mut reg, inst) = registry_with_classifier();
        let body = AnnotationBody::text("eating stonewort", "a");
        reg.apply_annotation(AnnotationId(1), &body, &[target(1)], &no_ctx)
            .unwrap();
        reg.unlink(inst, T).unwrap();
        assert!(reg.object(T, RowId(1), inst).is_none());
        assert!(reg.unlink(inst, T).is_err());
        // Further annotations are ignored for the unlinked table.
        let stats = reg
            .apply_annotation(AnnotationId(2), &body, &[target(1)], &no_ctx)
            .unwrap();
        assert_eq!(stats.objects_updated, 0);
    }

    #[test]
    fn rebuild_row_equals_incremental_result() {
        let (mut reg, inst) = registry_with_classifier();
        let bodies = [
            AnnotationBody::text("eating stonewort", "a"),
            AnnotationBody::text("lesions and parasites", "b"),
            AnnotationBody::text("see attached reference", "c"),
        ];
        for (i, b) in bodies.iter().enumerate() {
            reg.apply_annotation(AnnotationId(i as u64 + 1), b, &[target(1)], &no_ctx)
                .unwrap();
        }
        let incremental = reg.object(T, RowId(1), inst).unwrap().clone();

        let anns: Vec<(AnnotationId, ColSig, &AnnotationBody)> = bodies
            .iter()
            .enumerate()
            .map(|(i, b)| (AnnotationId(i as u64 + 1), ColSig::whole_row(3), b))
            .collect();
        reg.rebuild_row(T, RowId(1), &anns, &no_ctx).unwrap();
        let rebuilt = reg.object(T, RowId(1), inst).unwrap();
        assert_eq!(&incremental, rebuilt);
    }

    #[test]
    fn multiple_instances_maintain_side_by_side() {
        let (mut reg, class_id) = registry_with_classifier();
        let clus_id = reg
            .create_instance(InstanceDef::Cluster {
                name: "SimCluster".into(),
                config: ClusterConfig::default(),
                properties: InstanceProperties::default(),
            })
            .unwrap();
        reg.link(clus_id, T).unwrap();
        let body = AnnotationBody::text("eating stonewort near shore", "a");
        reg.apply_annotation(AnnotationId(1), &body, &[target(1)], &no_ctx)
            .unwrap();
        assert_eq!(reg.objects_on(T, RowId(1)).len(), 2);
        assert!(reg.object(T, RowId(1), class_id).is_some());
        assert!(reg.object(T, RowId(1), clus_id).is_some());
        assert_eq!(reg.linked_instances(T), &[class_id, clus_id]);
    }

    #[test]
    fn batch_apply_matches_serial_apply() {
        let (mut serial, inst) = registry_with_classifier();
        let (mut batched, _) = registry_with_classifier();
        let bodies = [
            AnnotationBody::text("eating stonewort", "a"),
            AnnotationBody::text("lesions and parasites", "b"),
            AnnotationBody::text("diving for fish", "c"),
        ];
        // Annotation 1 → rows 1,2; 2 → row 1; 3 → rows 2,3.
        let targets: [&[u64]; 3] = [&[1, 2], &[1], &[2, 3]];
        for (i, (body, rows)) in bodies.iter().zip(targets).enumerate() {
            let ts: Vec<Target> = rows.iter().map(|&r| target(r)).collect();
            serial
                .apply_annotation(AnnotationId(i as u64 + 1), body, &ts, &no_ctx)
                .unwrap();
        }

        let mut rows: BTreeMap<(TableId, RowId), Vec<(AnnotationId, ColSig)>> = BTreeMap::new();
        let mut by_id: HashMap<AnnotationId, &AnnotationBody> = HashMap::new();
        for (i, (body, anns)) in bodies.iter().zip(targets).enumerate() {
            let aid = AnnotationId(i as u64 + 1);
            by_id.insert(aid, body);
            for &r in anns {
                rows.entry((T, RowId(r)))
                    .or_default()
                    .push((aid, ColSig::whole_row(3)));
            }
        }
        let mut per_ann = HashMap::new();
        let total = batched
            .apply_annotations_batch(&rows, &by_id, &no_ctx, &mut per_ann)
            .unwrap();

        for r in [1u64, 2, 3] {
            assert_eq!(
                serial.object(T, RowId(r), inst),
                batched.object(T, RowId(r), inst),
                "row {r} object diverged"
            );
        }
        // Summarize-once still holds across the batch: one digest per
        // annotation, cache hits for its further target rows.
        assert_eq!(total.digests_computed, 3);
        assert_eq!(total.cache_hits, 2);
        assert_eq!(total.objects_updated, 5);
        assert_eq!(per_ann[&AnnotationId(2)].digests_computed, 1);
        assert_eq!(per_ann[&AnnotationId(2)].objects_updated, 1);
        assert_eq!(
            per_ann[&AnnotationId(1)].cache_hits + per_ann[&AnnotationId(3)].cache_hits,
            2
        );
    }

    #[test]
    fn drop_instance_cleans_everything() {
        let (mut reg, inst) = registry_with_classifier();
        let body = AnnotationBody::text("eating stonewort", "a");
        reg.apply_annotation(AnnotationId(1), &body, &[target(1)], &no_ctx)
            .unwrap();
        assert_eq!(reg.digest_cache_len(), 1);
        reg.drop_instance(inst).unwrap();
        assert!(reg.instance(inst).is_err());
        assert!(reg.instance_id("ClassBird1").is_err());
        assert_eq!(reg.object_count(), 0);
        assert_eq!(reg.digest_cache_len(), 0);
        assert!(reg.linked_instances(T).is_empty());
    }
}
