//! Offline drop-in replacement for the subset of `rand` 0.8 this
//! workspace uses: `SmallRng`/`StdRng` seeded via `seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen}`, and `seq::SliceRandom::shuffle`.
//!
//! The build environment has no registry access, so the real crate cannot
//! be fetched. The generator is xoshiro256++ (same family the real
//! `SmallRng` uses on 64-bit targets) seeded through SplitMix64; it is
//! deterministic for a given seed, which is all the workload generators
//! and benches rely on.

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy (here: clock + address mix).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        let stack = &t as *const _ as u64;
        Self::seed_from_u64(t ^ stack.rotate_left(32))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A small fast generator (xoshiro256++, as on 64-bit targets).
    pub type SmallRng = super::Xoshiro256;
    /// The "standard" generator; same algorithm here (statistical
    /// quality is adequate for workload generation, the only use).
    pub type StdRng = super::Xoshiro256;
}

/// Element types `gen_range` can sample uniformly.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// One sample from `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self;

    /// One sample from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "gen_range over empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + ((rng() as u128) % span) as i128) as $t
            }

            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo <= hi, "gen_range over empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + ((rng() as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                assert!(lo < hi, "gen_range over empty range");
                // 53 uniform mantissa bits → [0, 1).
                let unit = (rng() >> 11) as f64 / (1u64 << 53) as f64;
                lo + (unit as $t) * (hi - lo)
            }

            fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn FnMut() -> u64) -> Self {
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A half-open or inclusive range that `gen_range` can sample from.
/// A single blanket impl per range shape keeps integer-literal type
/// inference flowing the same way it does with the real crate.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`.
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Sampling of a value of `Self` from uniform bits (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for bool {
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        rng() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
        (rng() >> 11) as f64 / (1u64 << 53) as f64
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn FnMut() -> u64) -> Self {
                rng() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut draw = || self.next_u64();
        range.sample(&mut draw)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniformly distributed value (integers: full range; floats:
    /// `[0, 1)`; bool: fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        let mut draw = || self.next_u64();
        T::draw(&mut draw)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling and element selection over slices.
    pub trait SliceRandom {
        /// The slice element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(1..=4u64);
            assert!((1..=4).contains(&w));
            let f = rng.gen_range(2.0..3.0f64);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
