//! Generative mini-regex used by `&'static str` strategies.
//!
//! Supported syntax (the subset appearing in this repository's tests):
//! - `.` — any printable char (occasionally multibyte, to exercise
//!   UTF-8 paths);
//! - `[...]` — a char class of literals and `a-z` style ranges;
//! - a literal char;
//! - each atom may carry `{m}`, `{m,n}`, `*` (0–16), `+` (1–16) or `?`.
//!
//! Unsupported syntax falls back to generating from the pattern's
//! literal chars, which keeps tests running rather than panicking deep
//! inside a dependency.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    Any,
    Class(Vec<(char, char)>),
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((chars[i], chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((chars[i], chars[i]));
                        i += 1;
                    }
                }
                i += 1; // consume ']'
                if ranges.is_empty() {
                    ranges.push(('a', 'a'));
                }
                Atom::Class(ranges)
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                Atom::Literal(chars[i - 1])
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = match chars.get(i) {
            Some('*') => {
                i += 1;
                (0, 16)
            }
            Some('+') => {
                i += 1;
                (1, 16)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
                match close {
                    Some(end) => {
                        let body: String = chars[i + 1..end].iter().collect();
                        i = end + 1;
                        let mut parts = body.splitn(2, ',');
                        let lo: usize = parts
                            .next()
                            .and_then(|s| s.trim().parse().ok())
                            .unwrap_or(1);
                        let hi: usize = parts
                            .next()
                            .and_then(|s| s.trim().parse().ok())
                            .unwrap_or(lo);
                        (lo, hi.max(lo))
                    }
                    None => (1, 1),
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn emit_any(rng: &mut TestRng, out: &mut String) {
    if rng.below(6) == 0 {
        const POOL: [char; 6] = ['√', 'é', 'λ', '雨', '🐦', 'ß'];
        out.push(POOL[rng.below(POOL.len() as u64) as usize]);
    } else {
        out.push((0x20u8 + rng.below(0x5F) as u8) as char);
    }
}

fn emit_class(ranges: &[(char, char)], rng: &mut TestRng, out: &mut String) {
    let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
    let (lo, hi) = (lo as u32, (hi as u32).max(lo as u32));
    let pick = lo + rng.below((hi - lo + 1) as u64) as u32;
    out.push(char::from_u32(pick).unwrap_or(lo as u8 as char));
}

/// Generates one string matching `pattern`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
        for _ in 0..count {
            match &piece.atom {
                Atom::Any => emit_any(rng, &mut out),
                Atom::Class(ranges) => emit_class(ranges, rng, &mut out),
                Atom::Literal(c) => out.push(*c),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::{ProptestConfig, TestRunner};

    fn rng() -> TestRunner {
        TestRunner::new(&ProptestConfig::with_cases(1), "string_tests")
    }

    #[test]
    fn class_with_repetition() {
        let mut runner = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z]{1,8}", runner.rng());
            assert!((1..=8).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn class_with_space() {
        let mut runner = rng();
        for _ in 0..200 {
            let s = generate_matching("[a-z ]{4,30}", runner.rng());
            assert!((4..=30).contains(&s.len()));
            assert!(s.bytes().all(|b| b.is_ascii_lowercase() || b == b' '));
        }
    }

    #[test]
    fn dot_star_is_bounded_and_valid_utf8() {
        let mut runner = rng();
        for _ in 0..200 {
            let s = generate_matching(".*", runner.rng());
            assert!(s.chars().count() <= 16);
        }
    }

    #[test]
    fn literals_pass_through() {
        let mut runner = rng();
        assert_eq!(generate_matching("abc", runner.rng()), "abc");
    }
}
