//! Numeric strategies (`prop::num::f64::NORMAL` etc.).

/// Strategies over `f64`.
pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type behind [`NORMAL`].
    #[derive(Debug, Clone, Copy)]
    pub struct Normal;

    /// Uniformly random *normal* doubles: random sign and mantissa, any
    /// exponent in the normal range — never zero, subnormal, infinite,
    /// or NaN.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let sign = rng.next_u64() & (1 << 63);
            let exponent = 1 + rng.below(2046); // biased exponents 1..=2046
            let mantissa = rng.next_u64() & ((1 << 52) - 1);
            f64::from_bits(sign | (exponent << 52) | mantissa)
        }
    }
}

/// Strategies over `f32`.
pub mod f32 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy type behind [`NORMAL`].
    #[derive(Debug, Clone, Copy)]
    pub struct Normal;

    /// Uniformly random normal `f32` values.
    pub const NORMAL: Normal = Normal;

    impl Strategy for Normal {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            let bits = rng.next_u64() as u32;
            let sign = bits & (1 << 31);
            let exponent = 1 + (rng.below(254) as u32); // biased exponents 1..=254
            let mantissa = bits & ((1 << 23) - 1);
            f32::from_bits(sign | (exponent << 23) | mantissa)
        }
    }
}
