//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// A strategy producing `Vec`s whose length is drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Vectors of `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.len_in(&self.size);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `BTreeSet`s sized from `size`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Sets of `size` distinct elements drawn from `element`. If the element
/// domain is too small to reach the drawn size, the set saturates at
/// whatever distinct values a bounded number of draws produced.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.len_in(&self.size);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 16 + 32 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

/// A strategy producing `BTreeMap`s sized from `size`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

/// Maps of `size` distinct keys from `key` with values from `value`.
pub fn btree_map<K, V>(key: K, value: V, size: Range<usize>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy { key, value, size }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.len_in(&self.size);
        let mut out = BTreeMap::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target * 16 + 32 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        out
    }
}
