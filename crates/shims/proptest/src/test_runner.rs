//! Deterministic case runner backing the [`proptest!`](crate::proptest)
//! macro.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-block configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test function executes.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Random source handed to strategies.
///
/// All draws funnel through [`TestRng::next_u64`]; the generator is
/// seeded from the test name so each test has an independent but fully
/// reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        Self(SmallRng::seed_from_u64(seed))
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform draw from `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// A uniform length draw from a half-open size range.
    pub fn len_in(&mut self, range: &std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty collection size range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// A uniform unit-interval draw (53 mantissa bits).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drives the case loop for one test function.
#[derive(Debug)]
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

impl TestRunner {
    /// A runner for the named test. `PROPTEST_CASES` in the environment
    /// overrides the configured case count.
    pub fn new(config: &ProptestConfig, test_name: &str) -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        Self {
            rng: TestRng::from_seed(fnv1a(test_name.as_bytes())),
            cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The runner's random source.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}
