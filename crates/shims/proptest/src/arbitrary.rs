//! `any::<T>()` and the [`Arbitrary`] implementations behind it.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value covering the type's whole domain (with a bias
    /// toward boundary values for integers).
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<A>(PhantomData<A>);

/// A strategy over the full domain of `A`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Edge values roughly 1 draw in 8 — codecs and algebra
                // care about 0 / ±1 / extremes far more often than the
                // uniform distribution would surface them.
                if rng.below(8) == 0 {
                    const EDGES: [i128; 5] =
                        [0, 1, -1, <$t>::MIN as i128, <$t>::MAX as i128];
                    let pick = EDGES[rng.below(5) as usize];
                    pick as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.below(8) {
            0 => 0.0,
            1 => -0.0,
            2 => 1.0,
            _ => {
                // Any finite double: random bits, retried out of the
                // NaN/infinity exponent.
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_finite() {
                        return v;
                    }
                }
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.below(4) == 0 {
            const POOL: [char; 6] = ['√', 'é', 'λ', '雨', '🐦', '\u{10FFFF}'];
            POOL[rng.below(POOL.len() as u64) as usize]
        } else {
            (0x20u8 + rng.below(0x5F) as u8) as char
        }
    }
}
