//! Offline drop-in replacement for the subset of `proptest` this
//! workspace uses. The build environment has no registry access, so the
//! real crate cannot be fetched.
//!
//! Differences from real proptest, by design:
//! - no shrinking — a failing case reports the panic from the offending
//!   input directly (the RNG is seeded from the test name, so failures
//!   reproduce deterministically);
//! - the regex string strategies implement a small generative subset
//!   (char classes, `.`, `{m,n}` / `*` / `+` / `?` repetition) covering
//!   the patterns used in this repository's tests.
//!
//! Supported surface: `proptest!` with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`, `prop_oneof!`,
//! `any::<T>()`, `Just`, numeric range strategies, tuple strategies to
//! arity 6, `prop::collection::{vec, btree_set, btree_map}`,
//! `prop::num::{f32, f64}::NORMAL`, and `Strategy::prop_map`.

pub mod strategy;

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod string;
pub mod test_runner;

/// Everything a property test module conventionally imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `#[test] fn name(args in strategies)
/// { body }` becomes a zero-argument test that draws `cases` random
/// inputs and runs the body on each. Attributes (`#[test]` included,
/// per proptest 1.x convention) are passed through from the caller.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(&config, stringify!($name));
                for case in 0..runner.cases() {
                    let _ = case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), runner.rng());
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @expand ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Small {
        A(i64),
        B(String),
        C,
    }

    fn small() -> impl Strategy<Value = Small> {
        prop_oneof![
            any::<i64>().prop_map(Small::A),
            "[a-z]{1,4}".prop_map(Small::B),
            Just(Small::C),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_collections(
            pair in (0usize..4, any::<bool>()),
            items in prop::collection::vec(0u8..16, 0..10),
            set in prop::collection::btree_set(any::<u32>(), 1..8),
            map in prop::collection::btree_map("[a-z]{1,3}", 0i32..5, 0..6),
        ) {
            prop_assert!(pair.0 < 4);
            prop_assert!(items.len() < 10);
            prop_assert!(!set.is_empty() && set.len() < 8);
            prop_assert!(map.len() < 6);
        }

        #[test]
        fn oneof_and_normal(v in small(), n in prop::num::f64::NORMAL) {
            match v {
                Small::A(_) | Small::C => {}
                Small::B(s) => prop_assert!(
                    (1..=4).contains(&s.len()) && s.bytes().all(|b| b.is_ascii_lowercase())
                ),
            }
            prop_assert!(n.is_normal());
        }

        #[test]
        fn dot_star_generates_strings(s in ".*") {
            prop_assert!(s.chars().count() <= 16);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let config = ProptestConfig::with_cases(4);
        let mut a = crate::test_runner::TestRunner::new(&config, "det");
        let mut b = crate::test_runner::TestRunner::new(&config, "det");
        let strat = prop::collection::vec(any::<u64>(), 0..20);
        for _ in 0..4 {
            assert_eq!(strat.generate(a.rng()), strat.generate(b.rng()));
        }
    }
}
