//! The [`Strategy`] trait plus the combinators and primitive strategies
//! the workspace's tests use.

use crate::test_runner::TestRng;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// produces a finished value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The combinator behind [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
