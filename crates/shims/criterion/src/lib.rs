//! Offline drop-in replacement for the subset of `criterion` this
//! workspace uses. The build environment has no registry access, so the
//! real crate cannot be fetched.
//!
//! Semantics: each benchmark runs a short warm-up, then `sample_size`
//! timed batches, and prints min / median / max wall-clock per iteration
//! in a criterion-like line format. When cargo invokes a bench target in
//! *test* mode (`cargo test` passes `--test`), every benchmark executes
//! exactly one iteration so the target still smoke-checks quickly.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count,
        }
    }

    /// Times `routine`, recording `sample_count` samples (one warm-up
    /// batch first, also used to pick an iteration count that keeps each
    /// sample above timer resolution).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if test_mode() {
            black_box(routine());
            return;
        }
        // Warm-up + calibration: target ~5ms per sample.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(5);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (test mode: 1 iteration, not timed)");
            return;
        }
        self.samples.sort_unstable();
        let min = self.samples[0];
        let med = self.samples[self.samples.len() / 2];
        let max = self.samples[self.samples.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]",
            fmt_dur(min),
            fmt_dur(med),
            fmt_dur(max)
        );
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Identifier combining a function name and a `Display`able parameter.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("probe", 64)` renders as `probe/64`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        Self {
            full: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a bare function name.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            full: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a parameterized benchmark; `input` is passed to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.full));
        self
    }

    /// Ends the group (report output is emitted eagerly, so this is a
    /// no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        let mut hits = 0u32;
        group.bench_function("inc", |b| b.iter(|| hits = hits.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &p| {
            b.iter(|| black_box(p * 2))
        });
        group.finish();
        assert!(hits > 0);
    }
}
