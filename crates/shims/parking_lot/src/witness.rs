//! The runtime lock witness: a debug aid that cross-validates the
//! `locks.toml` hierarchy dynamically.
//!
//! When enabled (`INSIGHTNOTES_LOCK_WITNESS=1`), every classified
//! [`Mutex`](crate::Mutex) / [`RwLock`](crate::RwLock) acquisition is
//! checked against a thread-local stack of currently-held lock classes
//! *before* blocking: an acquisition that violates the declared rank
//! order (or re-enters a held class, or takes ordered shard guards out
//! of index order) panics immediately with both acquisition locations —
//! turning a would-be deadlock, which a test suite experiences as a
//! hang, into a precise failure. Disabled, the cost is one relaxed
//! atomic load per acquisition.
//!
//! Class ranks mirror `locks.toml` declaration order — keep
//! [`class`] in sync with it (the `lock-order` lint enforces the static
//! side of the same table).

use std::cell::RefCell;
use std::panic::Location;
use std::sync::atomic::{AtomicU8, Ordering};

/// Lock-class ranks, mirroring `locks.toml` declaration order. `0`
/// means unclassified: the witness ignores the lock entirely.
pub mod class {
    /// The cross-shard broadcast mutex (total write order).
    pub const BROADCAST: u8 = 1;
    /// The per-shard `RwLock<Database>` set; index-ordered.
    pub const SHARD: u8 = 2;
    /// The router's stamp allocator.
    pub const ALLOC: u8 = 3;
    /// The zoom-in registry (router-level or per-database).
    pub const ZOOM: u8 = 4;
    /// The write-ahead log handle.
    pub const WAL: u8 = 5;
    /// A cluster summary's token vocabulary.
    pub const VOCAB: u8 = 6;
    /// Commit-queue senders and the per-shard commit signal.
    pub const COMMIT_QUEUE: u8 = 7;
    /// Server session / lifecycle state and replication positions.
    pub const REACTOR: u8 = 8;
    /// Morsel-parallel per-unit result slots (maximum rank: safe to
    /// take under anything, must nest nothing).
    pub const MORSEL: u8 = 9;
}

/// Ranks whose instances carry an index that must be acquired in
/// ascending order.
const ORDERED: [u8; 1] = [class::SHARD];

const CLASS_NAMES: [&str; 10] = [
    "unclassified",
    "broadcast",
    "shard",
    "alloc",
    "zoom",
    "wal",
    "vocab",
    "commit_queue",
    "reactor",
    "morsel",
];

fn class_name(rank: u8) -> &'static str {
    CLASS_NAMES.get(rank as usize).copied().unwrap_or("?")
}

/// Witness switch: unset → consult `INSIGHTNOTES_LOCK_WITNESS` once;
/// tests force it on with [`force_enable`].
static STATE: AtomicU8 = AtomicU8::new(STATE_UNSET);
const STATE_UNSET: u8 = 0;
const STATE_ON: u8 = 1;
const STATE_OFF: u8 = 2;

/// Whether the witness is active for this process.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = std::env::var("INSIGHTNOTES_LOCK_WITNESS").is_ok_and(|v| v == "1");
            STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces the witness on regardless of the environment — for tests
/// that seed a violation and assert the panic.
pub fn force_enable() {
    STATE.store(STATE_ON, Ordering::Relaxed);
}

/// One held classified guard on the current thread.
#[derive(Clone, Copy)]
struct Held {
    rank: u8,
    index: u32,
    write: bool,
    token: u64,
    at: &'static Location<'static>,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    static NEXT_TOKEN: RefCell<u64> = const { RefCell::new(1) };
}

/// Checks an impending acquisition against every held guard and, if
/// legal, records it. Returns the entry's token (0 when the witness is
/// off or the lock unclassified) for [`release`]. Panics — with both
/// locations — on a hierarchy violation. Called *before* blocking on
/// the underlying lock, so a true inversion panics instead of
/// deadlocking.
pub(crate) fn acquire(
    rank: u8,
    index: u32,
    write: bool,
    at: &'static Location<'static>,
) -> u64 {
    if rank == 0 || !enabled() {
        return 0;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        for h in held.iter() {
            if rank < h.rank {
                violation(
                    format!(
                        "acquiring `{}` while `{}` is held; `{}` ranks first in locks.toml",
                        class_name(rank),
                        class_name(h.rank),
                        class_name(rank),
                    ),
                    at,
                    h,
                );
            }
            if rank == h.rank {
                if ORDERED.contains(&rank) {
                    if index < h.index {
                        violation(
                            format!(
                                "acquiring `{}[{}]` while `{0}[{}]` is held; ordered guards \
                                 must ascend",
                                class_name(rank),
                                index,
                                h.index,
                            ),
                            at,
                            h,
                        );
                    }
                    if index == h.index && (write || h.write) {
                        violation(
                            format!(
                                "re-acquiring `{}[{}]` with exclusive access on the same \
                                 thread; this deadlocks",
                                class_name(rank),
                                index,
                            ),
                            at,
                            h,
                        );
                    }
                } else {
                    violation(
                        format!(
                            "re-acquiring lock class `{}` on the same thread; this deadlocks",
                            class_name(rank),
                        ),
                        at,
                        h,
                    );
                }
            }
        }
        let token = NEXT_TOKEN.with(|t| {
            let mut t = t.borrow_mut();
            let tok = *t;
            *t += 1;
            tok
        });
        held.push(Held {
            rank,
            index,
            write,
            token,
            at,
        });
        token
    })
}

/// Records a `try_lock` success. No hierarchy check — a non-blocking
/// attempt cannot deadlock — but the held entry still constrains every
/// later blocking acquisition.
pub(crate) fn acquire_try(
    rank: u8,
    index: u32,
    write: bool,
    at: &'static Location<'static>,
) -> u64 {
    if rank == 0 || !enabled() {
        return 0;
    }
    let token = NEXT_TOKEN.with(|t| {
        let mut t = t.borrow_mut();
        let tok = *t;
        *t += 1;
        tok
    });
    HELD.with(|held| {
        held.borrow_mut().push(Held {
            rank,
            index,
            write,
            token,
            at,
        })
    });
    token
}

/// Drops a guard's held entry. Tokens make this robust to non-LIFO
/// guard drops.
pub(crate) fn release(token: u64) {
    if token == 0 {
        return;
    }
    HELD.with(|held| held.borrow_mut().retain(|h| h.token != token));
}

/// A condvar wait is about to atomically release the guard with
/// `token`: panic if any *other* classified guard is held (the dynamic
/// `guard-across-wait` rule), then suspend the entry for the duration
/// of the wait. Returns an opaque value for [`resume`].
pub(crate) fn suspend_for_wait(token: u64, at: &'static Location<'static>) -> Option<u64> {
    if token == 0 || !enabled() {
        return None;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(h) = held.iter().find(|h| h.token != token) {
            violation(
                format!(
                    "condvar wait while a `{}` guard is held; blocking waits must not \
                     pin locks of another class",
                    class_name(h.rank),
                ),
                at,
                h,
            );
        }
        held.retain(|h| h.token != token);
    });
    Some(token)
}

/// Re-records a suspended entry after its condvar wait re-acquired the
/// mutex.
pub(crate) fn resume(suspended: Option<u64>, rank: u8, at: &'static Location<'static>) -> u64 {
    match suspended {
        Some(_) => acquire_try(rank, 0, true, at),
        None => 0,
    }
}

#[cold]
fn violation(what: String, at: &'static Location<'static>, held: &Held) -> ! {
    panic!(
        "lock witness: {what}\n  acquiring at {at}\n  held since {} (acquired at {})",
        class_name(held.rank),
        held.at,
    );
}
