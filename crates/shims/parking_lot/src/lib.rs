//! Offline drop-in replacement for the subset of `parking_lot` this
//! workspace uses, backed by `std::sync`. The build environment has no
//! registry access, so the real crate cannot be fetched; the API here is
//! call-compatible (`lock()` returns the guard directly, no poisoning).

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion primitive with `parking_lot`'s panic-safe API:
/// `lock()` never returns a poison error — a lock poisoned by a panicking
/// holder is recovered transparently.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock with the same poison-free API as [`Mutex`].
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
