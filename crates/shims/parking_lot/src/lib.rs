//! Offline drop-in replacement for the subset of `parking_lot` this
//! workspace uses, backed by `std::sync`. The build environment has no
//! registry access, so the real crate cannot be fetched; the API here is
//! call-compatible (`lock()` returns the guard directly, no poisoning).
//!
//! On top of the shim sits the **runtime lock witness** (see
//! [`witness`]): each lock can be tagged with a class rank from
//! `locks.toml` via [`Mutex::with_class`] / [`RwLock::with_class`], and
//! with `INSIGHTNOTES_LOCK_WITNESS=1` every classified acquisition is
//! checked against the thread's held-guard stack before blocking —
//! hierarchy inversions panic with both acquisition locations instead
//! of deadlocking. Untagged locks and disabled runs pay one relaxed
//! atomic load per acquisition.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::PoisonError;
use std::time::Duration;

pub mod witness;

/// A mutual-exclusion primitive with `parking_lot`'s panic-safe API:
/// `lock()` never returns a poison error — a lock poisoned by a panicking
/// holder is recovered transparently.
pub struct Mutex<T: ?Sized> {
    class: AtomicU8,
    index: AtomicU32,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the witness entry on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    /// `Some` except transiently inside [`Condvar::wait_timeout`].
    inner: Option<std::sync::MutexGuard<'a, T>>,
    token: u64,
    rank: u8,
}

impl<T> Mutex<T> {
    /// Creates a new, unclassified mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            class: AtomicU8::new(0),
            index: AtomicU32::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Tags the mutex with a [`witness::class`] rank (builder form).
    pub fn with_class(self, class: u8) -> Self {
        self.class.store(class, Ordering::Relaxed);
        self
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Tags the mutex with a [`witness::class`] rank in place.
    pub fn set_class(&self, class: u8) {
        self.class.store(class, Ordering::Relaxed);
    }

    /// Acquires the lock, blocking until it is available. A classified
    /// mutex is checked against the thread's held-guard stack first, so
    /// a hierarchy inversion panics instead of deadlocking.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let rank = self.class.load(Ordering::Relaxed);
        let token = witness::acquire(
            rank,
            self.index.load(Ordering::Relaxed),
            true,
            Location::caller(),
        );
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
            token,
            rank,
        }
    }

    /// Attempts to acquire the lock without blocking. No witness check
    /// (a non-blocking attempt cannot deadlock), but a successful
    /// acquisition is still recorded and constrains later locks.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        let rank = self.class.load(Ordering::Relaxed);
        let token = witness::acquire_try(
            rank,
            self.index.load(Ordering::Relaxed),
            true,
            Location::caller(),
        );
        Some(MutexGuard {
            inner: Some(inner),
            token,
            rank,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        witness::release(self.token);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock with the same poison-free API as [`Mutex`].
pub struct RwLock<T: ?Sized> {
    class: AtomicU8,
    index: AtomicU32,
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    token: u64,
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    token: u64,
}

impl<T> RwLock<T> {
    /// Creates a new, unclassified lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            class: AtomicU8::new(0),
            index: AtomicU32::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Tags the lock with a [`witness::class`] rank (builder form).
    pub fn with_class(self, class: u8) -> Self {
        self.class.store(class, Ordering::Relaxed);
        self
    }

    /// Tags the lock with an *ordered* class rank plus its position in
    /// the order — e.g. `shard[k]`, which must be acquired in ascending
    /// `k` when several are held.
    pub fn with_class_indexed(self, class: u8, index: u32) -> Self {
        self.class.store(class, Ordering::Relaxed);
        self.index.store(index, Ordering::Relaxed);
        self
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Tags the lock with a [`witness::class`] rank in place.
    pub fn set_class(&self, class: u8) {
        self.class.store(class, Ordering::Relaxed);
    }

    /// Acquires shared read access (witness-checked like
    /// [`Mutex::lock`]; two reads of the same ordered index are legal).
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let token = witness::acquire(
            self.class.load(Ordering::Relaxed),
            self.index.load(Ordering::Relaxed),
            false,
            Location::caller(),
        );
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            token,
        }
    }

    /// Acquires exclusive write access (witness-checked).
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let token = witness::acquire(
            self.class.load(Ordering::Relaxed),
            self.index.load(Ordering::Relaxed),
            true,
            Location::caller(),
        );
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            token,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        witness::release(self.token);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        witness::release(self.token);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A condition variable paired with the shim [`Mutex`], with
/// `parking_lot`-style poison-free returns. The witness treats a wait
/// as the dynamic `guard-across-wait` rule: waiting while any *other*
/// classified guard is held panics, because the foreign lock stays
/// pinned for the whole (unbounded) sleep.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically releases `guard` and waits for a notification or the
    /// timeout; returns the re-acquired guard and whether the wait
    /// timed out.
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let at = Location::caller();
        let rank = guard.rank;
        let suspended = witness::suspend_for_wait(guard.token, at);
        let inner = guard.inner.take().expect("guard holds the lock");
        // The witness entry is gone and `inner` is out: skip Drop so the
        // token is not released twice.
        std::mem::forget(guard);
        let (inner, timed_out) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r.timed_out()),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r.timed_out())
            }
        };
        let token = witness::resume(suspended, rank, at);
        (
            MutexGuard {
                inner: Some(inner),
                token,
                rank,
            },
            timed_out,
        )
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::witness::class;
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    /// Runs `f` on a fresh thread (its own witness stack) and returns
    /// the panic message if it panicked.
    fn panics_with(f: impl FnOnce() + Send + 'static) -> Option<String> {
        witness::force_enable();
        std::thread::spawn(f).join().err().map(|e| {
            e.downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default()
        })
    }

    #[test]
    fn witness_panics_on_seeded_rank_inversion() {
        // zoom ranks after broadcast, so zoom → broadcast must die.
        let zoom = Arc::new(Mutex::new(()).with_class(class::ZOOM));
        let bcast = Arc::new(Mutex::new(()).with_class(class::BROADCAST));
        let msg = panics_with(move || {
            let _z = zoom.lock();
            let _b = bcast.lock();
        })
        .expect("inverted acquisition must panic");
        assert!(msg.contains("lock witness"), "got: {msg}");
        assert!(msg.contains("broadcast") && msg.contains("zoom"), "got: {msg}");
        assert!(msg.contains("acquiring at") && msg.contains("acquired at"), "got: {msg}");
    }

    #[test]
    fn witness_allows_declared_order_and_releases_on_drop() {
        witness::force_enable();
        let bcast = Mutex::new(()).with_class(class::BROADCAST);
        let zoom = Mutex::new(()).with_class(class::ZOOM);
        {
            let _b = bcast.lock();
            let _z = zoom.lock();
        }
        // Non-LIFO: drop the lower rank first, then ascend again.
        let b = bcast.lock();
        let z = zoom.lock();
        drop(b);
        drop(z);
        let _b = bcast.lock();
        let _z = zoom.lock();
    }

    #[test]
    fn witness_panics_on_shard_index_inversion() {
        let s0 = Arc::new(RwLock::new(()).with_class_indexed(class::SHARD, 0));
        let s1 = Arc::new(RwLock::new(()).with_class_indexed(class::SHARD, 1));
        // Ascending reads are the read_all() pattern and must pass.
        witness::force_enable();
        {
            let _a = s0.read();
            let _b = s1.read();
        }
        let msg = panics_with(move || {
            let _b = s1.read();
            let _a = s0.read();
        })
        .expect("descending shard acquisition must panic");
        assert!(msg.contains("must ascend"), "got: {msg}");
    }

    #[test]
    fn witness_panics_on_double_acquire() {
        let wal = Arc::new(Mutex::new(()).with_class(class::WAL));
        let msg = panics_with(move || {
            let _a = wal.lock();
            let _b = wal.lock();
        })
        .expect("same-class re-acquisition must panic");
        assert!(msg.contains("re-acquiring"), "got: {msg}");
    }

    #[test]
    fn witness_panics_on_wait_with_foreign_guard() {
        let seq = Arc::new(Mutex::new(0u64).with_class(class::COMMIT_QUEUE));
        let wal = Arc::new(Mutex::new(()).with_class(class::WAL));
        let cond = Arc::new(Condvar::new());
        let msg = panics_with(move || {
            let _w = wal.lock();
            let g = seq.lock();
            let _ = cond.wait_timeout(g, Duration::from_millis(1));
        })
        .expect("waiting with a foreign guard held must panic");
        assert!(msg.contains("condvar wait"), "got: {msg}");
    }

    #[test]
    fn condvar_wait_reacquires_and_times_out() {
        witness::force_enable();
        let seq = Mutex::new(7u64).with_class(class::COMMIT_QUEUE);
        let cond = Condvar::new();
        let g = seq.lock();
        let (g, timed_out) = cond.wait_timeout(g, Duration::from_millis(5));
        assert!(timed_out);
        assert_eq!(*g, 7);
        drop(g);
        // The re-acquired guard's witness entry must release on drop:
        // a second classified acquisition would panic otherwise.
        let _g = seq.lock();
    }
}
