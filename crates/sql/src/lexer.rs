//! SQL lexer.
//!
//! Hand-rolled, position-tracking tokenizer. Keywords are *not*
//! distinguished here — identifiers are matched case-insensitively by the
//! parser, which keeps the keyword set local to the grammar.

use insightnotes_common::{Error, Result};
use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (original spelling preserved).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `:`
    Colon,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Float(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Semicolon => f.write_str(";"),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::Ne => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::Le => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::Ge => f.write_str(">="),
            TokenKind::Colon => f.write_str(":"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its byte offset in the source (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub offset: usize,
}

/// Tokenizes an entire statement string.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenizes the whole input (always ends with an `Eof` token).
    pub fn tokenize(mut self) -> Result<Vec<Token>> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn skip_ws_and_comments(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => self.pos += 1,
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        self.pos += 1;
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token> {
        self.skip_ws_and_comments()?;
        let offset = self.pos;
        let Some(b) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                offset,
            });
        };
        let kind = match b {
            b'(' => self.single(TokenKind::LParen),
            b')' => self.single(TokenKind::RParen),
            b',' => self.single(TokenKind::Comma),
            b';' => self.single(TokenKind::Semicolon),
            b'*' => self.single(TokenKind::Star),
            b'+' => self.single(TokenKind::Plus),
            b'-' => self.single(TokenKind::Minus),
            b'/' => self.single(TokenKind::Slash),
            b'=' => self.single(TokenKind::Eq),
            b':' => self.single(TokenKind::Colon),
            b'<' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => self.single(TokenKind::Le),
                    Some(b'>') => self.single(TokenKind::Ne),
                    _ => TokenKind::Lt,
                }
            }
            b'>' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => self.single(TokenKind::Ge),
                    _ => TokenKind::Gt,
                }
            }
            b'!' => {
                self.pos += 1;
                match self.peek() {
                    Some(b'=') => self.single(TokenKind::Ne),
                    _ => {
                        return Err(Error::Parse(format!(
                            "unexpected character `!` at offset {offset}"
                        )))
                    }
                }
            }
            b'\'' => self.string(offset)?,
            b'.' => {
                // `.5` style floats are not supported; a lone dot is the
                // qualifier separator.
                self.single(TokenKind::Dot)
            }
            b'0'..=b'9' => self.number(offset)?,
            _ if b.is_ascii_alphabetic() || b == b'_' => self.ident(),
            _ => {
                return Err(Error::Parse(format!(
                    "unexpected character `{}` at offset {offset}",
                    b as char
                )))
            }
        };
        Ok(Token { kind, offset })
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn string(&mut self, offset: usize) -> Result<TokenKind> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => {
                    return Err(Error::Parse(format!(
                        "unterminated string starting at offset {offset}"
                    )))
                }
                Some(b'\'') => {
                    if self.peek2() == Some(b'\'') {
                        out.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(TokenKind::Str(out));
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar.
                    let rest = &self.src[self.pos..];
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self, offset: usize) -> Result<TokenKind> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let mut probe = self.pos + 1;
            if matches!(self.bytes.get(probe), Some(b'+') | Some(b'-')) {
                probe += 1;
            }
            if matches!(self.bytes.get(probe), Some(b'0'..=b'9')) {
                is_float = true;
                self.pos = probe;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|e| Error::Parse(format!("bad float `{text}` at offset {offset}: {e}")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|e| Error::Parse(format!("bad integer `{text}` at offset {offset}: {e}")))
        }
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        TokenKind::Ident(self.src[start..self.pos].to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_a_select() {
        let k = kinds("SELECT r.a FROM R r WHERE r.b = 2;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("r".into()),
                TokenKind::Dot,
                TokenKind::Ident("a".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("R".into()),
                TokenKind::Ident("r".into()),
                TokenKind::Ident("WHERE".into()),
                TokenKind::Ident("r".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::Eq,
                TokenKind::Int(2),
                TokenKind::Semicolon,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers_int_float_exponent() {
        assert_eq!(
            kinds("1 2.5 3e2 4E-1"),
            vec![
                TokenKind::Int(1),
                TokenKind::Float(2.5),
                TokenKind::Float(300.0),
                TokenKind::Float(0.4),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes_and_unicode() {
        assert_eq!(
            kinds("'it''s' 'héllo'"),
            vec![
                TokenKind::Str("it's".into()),
                TokenKind::Str("héllo".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= <> != ="),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Eq,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT -- comment\n 1"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Int(1),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Lexer::new("SELECT @").tokenize().unwrap_err();
        assert!(err.to_string().contains("offset 7"), "{err}");
        assert!(Lexer::new("'open").tokenize().is_err());
        assert!(Lexer::new("a ! b").tokenize().is_err());
    }

    #[test]
    fn offsets_point_at_tokens() {
        let toks = Lexer::new("ab  cd").tokenize().unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }
}
