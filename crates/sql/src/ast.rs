//! The abstract syntax tree.
//!
//! Names are unresolved here — the planner binds them against schemas.
//! Scalar literals reuse nothing from the storage crate on purpose: the
//! front-end stays decoupled from the execution value model, and the
//! planner performs the (trivial) conversion.

/// A possibly-qualified column reference (`a` / `r.a`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Table name or alias, when written.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// Literal values as they appear in SQL text.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// NULL.
    Null,
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinCmp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinArith {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// An unbound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal.
    Literal(Literal),
    /// Comparison.
    Cmp(BinCmp, Box<Expr>, Box<Expr>),
    /// Arithmetic.
    Arith(BinArith, Box<Expr>, Box<Expr>),
    /// `AND`.
    And(Box<Expr>, Box<Expr>),
    /// `OR`.
    Or(Box<Expr>, Box<Expr>),
    /// `NOT`.
    Not(Box<Expr>),
    /// `expr IS NULL` / `expr IS NOT NULL` (the bool is "negated").
    IsNull(Box<Expr>, bool),
    /// `CONTAINS(expr, 'needle')` — substring predicate.
    Contains(Box<Expr>, String),
    /// `SUMMARY_COUNT(instance, 'component')` — a summary-based scalar:
    /// the count behind the named component (a class label for
    /// classifiers, a group ordinal for clusters) of the named instance's
    /// object on the current tuple.
    SummaryCount {
        /// Summary instance name.
        instance: String,
        /// Class label (classifier) or numeric group index (cluster).
        component: String,
    },
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)`.
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
}

/// One item of a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A scalar expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS name`, when written.
        alias: Option<String>,
    },
    /// An aggregate call with an optional alias. `arg = None` is
    /// `COUNT(*)`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The argument (`None` only for `COUNT(*)`).
        arg: Option<Expr>,
        /// `AS name`, when written.
        alias: Option<String>,
    },
}

/// A FROM-clause table reference with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (`R r`), when written.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table's columns are visible under.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The sort expression.
    pub expr: Expr,
    /// True for `DESC`.
    pub desc: bool,
}

/// A SELECT statement. Explicit `JOIN … ON` clauses are desugared by the
/// parser into additional `from` entries plus `join_on` conjuncts, which
/// is the form the planner consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// The projection list.
    pub items: Vec<SelectItem>,
    /// Tables in join order.
    pub from: Vec<TableRef>,
    /// Predicates from explicit `JOIN … ON` clauses.
    pub join_on: Vec<Expr>,
    /// The WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
    /// HAVING predicate (filters groups; binds against the aggregate
    /// output, aliases included).
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT row count.
    pub limit: Option<u64>,
    /// `AS OF <tick>` — evaluate the query against the annotation set as
    /// it existed at the given logical-clock tick (time travel).
    pub as_of: Option<u64>,
}

/// `CREATE SUMMARY INSTANCE` payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum CreateInstanceStmt {
    /// Classifier with labels and optional inline training pairs.
    Classifier {
        /// Instance name.
        name: String,
        /// Output class labels, in zoom-index order.
        labels: Vec<String>,
        /// `('label': 'training text')` pairs.
        training: Vec<(String, String)>,
        /// `ANNOTATION_INVARIANT` property (default true).
        annotation_invariant: bool,
        /// `DATA_INVARIANT` property (default true).
        data_invariant: bool,
    },
    /// Clusterer with a similarity threshold.
    Cluster {
        /// Instance name.
        name: String,
        /// `THRESHOLD x` (default 0.4).
        threshold: f64,
    },
    /// Snippet summarizer.
    Snippet {
        /// Instance name.
        name: String,
        /// `MAX_SENTENCES n` (default 3).
        max_sentences: u64,
        /// `MAX_CHARS n` (default 280).
        max_chars: u64,
        /// `MIN_SOURCE n` bytes (default 512).
        min_source: u64,
    },
}

impl CreateInstanceStmt {
    /// The instance name.
    pub fn name(&self) -> &str {
        match self {
            CreateInstanceStmt::Classifier { name, .. } => name,
            CreateInstanceStmt::Cluster { name, .. } => name,
            CreateInstanceStmt::Snippet { name, .. } => name,
        }
    }
}

/// `ZOOMIN REFERENCE QID n [WHERE pred] ON instance (INDEX i | LABEL 'x')`.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoomInStmt {
    /// The referenced query result.
    pub qid: u64,
    /// Result-tuple refinement predicate.
    pub where_clause: Option<Expr>,
    /// Summary instance to expand.
    pub instance: String,
    /// Which component of the object to expand.
    pub component: ZoomComponent,
}

/// Component selector of a zoom-in.
#[derive(Debug, Clone, PartialEq)]
pub enum ZoomComponent {
    /// 1-based component index, as in Figure 3.
    Index(u64),
    /// A classifier label by name (sugar for the corresponding index).
    Label(String),
}

/// Any parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// `(column name, type name)` pairs.
        columns: Vec<(String, String)>,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `INSERT INTO name VALUES (…), (…)`.
    Insert {
        /// Table name.
        table: String,
        /// Row literals.
        rows: Vec<Vec<Literal>>,
    },
    /// A SELECT query.
    Select(SelectStmt),
    /// `ADD ANNOTATION 'text' [DOCUMENT 'd'] [AUTHOR 'a'] ON table
    /// [COLUMNS (c, …)] [WHERE pred]`.
    AddAnnotation {
        /// Annotation free text.
        text: String,
        /// Attached document.
        document: Option<String>,
        /// Curator name (default `'anonymous'`).
        author: Option<String>,
        /// Target table.
        table: String,
        /// Covered columns (empty = whole row).
        columns: Vec<String>,
        /// Row selector (`None` = all rows).
        where_clause: Option<Expr>,
    },
    /// `CREATE SUMMARY INSTANCE …`.
    CreateInstance(CreateInstanceStmt),
    /// `DROP SUMMARY INSTANCE name`.
    DropInstance {
        /// Instance name.
        name: String,
    },
    /// `LINK SUMMARY instance TO table`.
    LinkSummary {
        /// Instance name.
        instance: String,
        /// Table name.
        table: String,
    },
    /// `UNLINK SUMMARY instance FROM table`.
    UnlinkSummary {
        /// Instance name.
        instance: String,
        /// Table name.
        table: String,
    },
    /// `ZOOMIN …`.
    ZoomIn(ZoomInStmt),
    /// `EXPLAIN SELECT …` — show the plan without executing.
    Explain(SelectStmt),
    /// `DELETE FROM table [WHERE pred]` — removes rows together with
    /// their annotations and summary objects.
    DeleteRows {
        /// Target table.
        table: String,
        /// Row selector (`None` = all rows).
        where_clause: Option<Expr>,
    },
    /// `DELETE ANNOTATION n` — removes one raw annotation and refreshes
    /// the summaries of every tuple it was attached to.
    DeleteAnnotation {
        /// The annotation id.
        id: u64,
    },
    /// `RETRACT ANNOTATION n` — tombstones one annotation: its effect is
    /// decrementally removed from every summary it contributed to, but the
    /// version itself is retained for `HISTORY` / `AS OF` replay.
    RetractAnnotation {
        /// The annotation id.
        id: u64,
    },
    /// `CORRECT ANNOTATION n 'text' [DOCUMENT 'd'] [AUTHOR 'a']` — a
    /// correction supersedes its predecessor: the old version becomes a
    /// tombstone linked to the replacement, which inherits the
    /// predecessor's targets. The optional `WITH ID n AT tick` suffix is
    /// internal: the shard router pre-allocates the successor stamp so
    /// every owner shard commits an identical replacement.
    CorrectAnnotation {
        /// The superseded annotation id.
        id: u64,
        /// Replacement free text.
        text: String,
        /// Replacement attached document.
        document: Option<String>,
        /// Replacement curator (defaults to the predecessor's author).
        author: Option<String>,
        /// Internal `(successor id, creation tick)` pre-allocation.
        stamp: Option<(u64, u64)>,
    },
    /// `FLAG ANNOTATION n ['reason']` — marks an annotation as disputed
    /// without removing its summary contribution.
    FlagAnnotation {
        /// The annotation id.
        id: u64,
        /// Optional reviewer note.
        note: Option<String>,
    },
    /// `HISTORY n` — replays one annotation's lifecycle timeline.
    HistoryAnnotation {
        /// The annotation id.
        id: u64,
    },
    /// `CREATE INDEX ON table (column)` — hash index for point lookups.
    CreateIndex {
        /// Target table.
        table: String,
        /// Indexed column.
        column: String,
    },
    /// `DROP INDEX ON table (column)`.
    DropIndex {
        /// Target table.
        table: String,
        /// Indexed column.
        column: String,
    },
}

/// Whether a statement only reads database state or mutates it. The
/// `insightd` session layer classifies every incoming statement to decide
/// which side of the database's reader/writer lock a request must take:
/// [`StatementClass::Read`] statements run concurrently under a shared
/// lock, [`StatementClass::Write`] statements serialize under the
/// exclusive lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatementClass {
    /// Touches no durable state: SELECT, ZOOMIN, EXPLAIN. (Session-local
    /// side effects — QID assignment, result-cache admission — are hidden
    /// behind the engine's own interior locks.)
    Read,
    /// Mutates the catalog, rows, annotations, or the summary registry.
    Write,
}

impl Statement {
    /// Classifies this statement for lock selection.
    pub fn class(&self) -> StatementClass {
        match self {
            Statement::Select(_)
            | Statement::ZoomIn(_)
            | Statement::Explain(_)
            | Statement::HistoryAnnotation { .. } => StatementClass::Read,
            Statement::CreateTable { .. }
            | Statement::DropTable { .. }
            | Statement::Insert { .. }
            | Statement::AddAnnotation { .. }
            | Statement::CreateInstance(_)
            | Statement::DropInstance { .. }
            | Statement::LinkSummary { .. }
            | Statement::UnlinkSummary { .. }
            | Statement::DeleteRows { .. }
            | Statement::DeleteAnnotation { .. }
            | Statement::RetractAnnotation { .. }
            | Statement::CorrectAnnotation { .. }
            | Statement::FlagAnnotation { .. }
            | Statement::CreateIndex { .. }
            | Statement::DropIndex { .. } => StatementClass::Write,
        }
    }
}
