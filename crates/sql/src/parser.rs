//! Recursive-descent parser.
//!
//! Keywords are matched case-insensitively against identifier tokens.
//! Errors report the offending token and its byte offset.

use crate::ast::*;
use crate::lexer::{Lexer, Token, TokenKind};
use insightnotes_common::{Error, Result};

/// Parses a string of `;`-separated statements.
pub fn parse(src: &str) -> Result<Vec<Statement>> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.statement()?);
        if !p.at_eof() && !p.check(&TokenKind::Semicolon) {
            return Err(p.unexpected("`;` or end of input"));
        }
    }
}

/// Parses exactly one statement.
pub fn parse_one(src: &str) -> Result<Statement> {
    let stmts = parse(src)?;
    match stmts.len() {
        1 => Ok(stmts.into_iter().next().expect("len checked")),
        n => Err(Error::Parse(format!("expected one statement, found {n}"))),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.unexpected(&kind.to_string()))
        }
    }

    fn unexpected(&self, wanted: &str) -> Error {
        let t = self.peek();
        Error::Parse(format!(
            "expected {wanted}, found {} at offset {}",
            t.kind, t.offset
        ))
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("`{kw}`")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn string(&mut self) -> Result<String> {
        match self.peek().kind.clone() {
            TokenKind::Str(s) => {
                self.advance();
                Ok(s)
            }
            _ => Err(self.unexpected("a string literal")),
        }
    }

    fn uint(&mut self) -> Result<u64> {
        match self.peek().kind {
            TokenKind::Int(v) if v >= 0 => {
                self.advance();
                Ok(v as u64)
            }
            _ => Err(self.unexpected("a non-negative integer")),
        }
    }

    fn number_f64(&mut self) -> Result<f64> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.advance();
                Ok(v as f64)
            }
            TokenKind::Float(v) => {
                self.advance();
                Ok(v)
            }
            _ => Err(self.unexpected("a number")),
        }
    }

    // -- statements ------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kw("select") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("create") {
            if self.eat_kw("table") {
                return self.create_table();
            }
            if self.eat_kw("summary") {
                self.expect_kw("instance")?;
                return Ok(Statement::CreateInstance(self.create_instance()?));
            }
            if self.eat_kw("index") {
                let (table, column) = self.index_target()?;
                return Ok(Statement::CreateIndex { table, column });
            }
            return Err(self.unexpected("`TABLE`, `INDEX`, or `SUMMARY INSTANCE`"));
        }
        if self.eat_kw("drop") {
            if self.eat_kw("table") {
                return Ok(Statement::DropTable {
                    name: self.ident()?,
                });
            }
            if self.eat_kw("summary") {
                self.expect_kw("instance")?;
                return Ok(Statement::DropInstance {
                    name: self.ident()?,
                });
            }
            if self.eat_kw("index") {
                let (table, column) = self.index_target()?;
                return Ok(Statement::DropIndex { table, column });
            }
            return Err(self.unexpected("`TABLE`, `INDEX`, or `SUMMARY INSTANCE`"));
        }
        if self.eat_kw("insert") {
            return self.insert();
        }
        if self.eat_kw("add") {
            self.expect_kw("annotation")?;
            return self.add_annotation();
        }
        if self.eat_kw("link") {
            self.expect_kw("summary")?;
            let instance = self.ident()?;
            self.expect_kw("to")?;
            let table = self.ident()?;
            return Ok(Statement::LinkSummary { instance, table });
        }
        if self.eat_kw("unlink") {
            self.expect_kw("summary")?;
            let instance = self.ident()?;
            self.expect_kw("from")?;
            let table = self.ident()?;
            return Ok(Statement::UnlinkSummary { instance, table });
        }
        if self.eat_kw("zoomin") {
            return self.zoomin();
        }
        if self.eat_kw("explain") {
            return Ok(Statement::Explain(self.select()?));
        }
        if self.eat_kw("delete") {
            if self.eat_kw("from") {
                let table = self.ident()?;
                let where_clause = if self.eat_kw("where") {
                    Some(self.expr()?)
                } else {
                    None
                };
                return Ok(Statement::DeleteRows {
                    table,
                    where_clause,
                });
            }
            if self.eat_kw("annotation") {
                return Ok(Statement::DeleteAnnotation { id: self.uint()? });
            }
            return Err(self.unexpected("`FROM` or `ANNOTATION`"));
        }
        if self.eat_kw("retract") {
            self.expect_kw("annotation")?;
            return Ok(Statement::RetractAnnotation { id: self.uint()? });
        }
        if self.eat_kw("correct") {
            self.expect_kw("annotation")?;
            return self.correct_annotation_stmt();
        }
        if self.eat_kw("flag") {
            self.expect_kw("annotation")?;
            let id = self.uint()?;
            let note = if matches!(self.peek().kind, TokenKind::Str(_)) {
                Some(self.string()?)
            } else {
                None
            };
            return Ok(Statement::FlagAnnotation { id, note });
        }
        if self.eat_kw("history") {
            // The `ANNOTATION` keyword is optional: `HISTORY 7` works.
            self.eat_kw("annotation");
            return Ok(Statement::HistoryAnnotation { id: self.uint()? });
        }
        Err(self.unexpected("a statement keyword"))
    }

    fn correct_annotation_stmt(&mut self) -> Result<Statement> {
        let id = self.uint()?;
        let text = self.string()?;
        let document = if self.eat_kw("document") {
            Some(self.string()?)
        } else {
            None
        };
        let author = if self.eat_kw("author") {
            Some(self.string()?)
        } else {
            None
        };
        // Internal clause: the shard router pre-allocates the successor's
        // (id, tick) stamp so every owner shard commits identical bytes.
        let stamp = if self.eat_kw("with") {
            self.expect_kw("id")?;
            let successor = self.uint()?;
            self.expect_kw("at")?;
            let tick = self.uint()?;
            Some((successor, tick))
        } else {
            None
        };
        Ok(Statement::CorrectAnnotation {
            id,
            text,
            document,
            author,
            stamp,
        })
    }

    /// Parses `ON table (column)` of CREATE/DROP INDEX.
    fn index_target(&mut self) -> Result<(String, String)> {
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let column = self.ident()?;
        self.expect(&TokenKind::RParen)?;
        Ok((table, column))
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.ident()?;
            columns.push((col, ty));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn literal(&mut self) -> Result<Literal> {
        let negate = self.eat(&TokenKind::Minus);
        let lit = match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.advance();
                Literal::Int(v)
            }
            TokenKind::Float(v) => {
                self.advance();
                Literal::Float(v)
            }
            TokenKind::Str(s) => {
                self.advance();
                Literal::Str(s)
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("null") => {
                self.advance();
                Literal::Null
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("true") => {
                self.advance();
                Literal::Bool(true)
            }
            TokenKind::Ident(s) if s.eq_ignore_ascii_case("false") => {
                self.advance();
                Literal::Bool(false)
            }
            _ => return Err(self.unexpected("a literal")),
        };
        if negate {
            match lit {
                Literal::Int(v) => Ok(Literal::Int(-v)),
                Literal::Float(v) => Ok(Literal::Float(-v)),
                _ => Err(self.unexpected("a numeric literal after `-`")),
            }
        } else {
            Ok(lit)
        }
    }

    fn add_annotation(&mut self) -> Result<Statement> {
        let text = self.string()?;
        let document = if self.eat_kw("document") {
            Some(self.string()?)
        } else {
            None
        };
        let author = if self.eat_kw("author") {
            Some(self.string()?)
        } else {
            None
        };
        self.expect_kw("on")?;
        let table = self.ident()?;
        let mut columns = Vec::new();
        if self.eat_kw("columns") {
            self.expect(&TokenKind::LParen)?;
            loop {
                columns.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::AddAnnotation {
            text,
            document,
            author,
            table,
            columns,
            where_clause,
        })
    }

    fn create_instance(&mut self) -> Result<CreateInstanceStmt> {
        let name = self.ident()?;
        self.expect_kw("type")?;
        let kind = self.ident()?;
        match kind.to_ascii_lowercase().as_str() {
            "classifier" => {
                self.expect_kw("labels")?;
                self.expect(&TokenKind::LParen)?;
                let mut labels = Vec::new();
                loop {
                    labels.push(self.string()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
                let mut training = Vec::new();
                if self.eat_kw("train") {
                    self.expect(&TokenKind::LParen)?;
                    loop {
                        let label = self.string()?;
                        self.expect(&TokenKind::Colon)?;
                        let text = self.string()?;
                        training.push((label, text));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                let mut annotation_invariant = true;
                let mut data_invariant = true;
                if self.eat_kw("properties") {
                    self.expect(&TokenKind::LParen)?;
                    loop {
                        let prop = self.ident()?;
                        let value = match self.ident()?.to_ascii_lowercase().as_str() {
                            "true" => true,
                            "false" => false,
                            _ => return Err(self.unexpected("`true` or `false`")),
                        };
                        match prop.to_ascii_lowercase().as_str() {
                            "annotation_invariant" => annotation_invariant = value,
                            "data_invariant" => data_invariant = value,
                            other => {
                                return Err(Error::Parse(format!("unknown property `{other}`")))
                            }
                        }
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(&TokenKind::RParen)?;
                }
                Ok(CreateInstanceStmt::Classifier {
                    name,
                    labels,
                    training,
                    annotation_invariant,
                    data_invariant,
                })
            }
            "cluster" => {
                let threshold = if self.eat_kw("threshold") {
                    self.number_f64()?
                } else {
                    0.4
                };
                Ok(CreateInstanceStmt::Cluster { name, threshold })
            }
            "snippet" => {
                let mut max_sentences = 3;
                let mut max_chars = 280;
                let mut min_source = 512;
                loop {
                    if self.eat_kw("max_sentences") {
                        max_sentences = self.uint()?;
                    } else if self.eat_kw("max_chars") {
                        max_chars = self.uint()?;
                    } else if self.eat_kw("min_source") {
                        min_source = self.uint()?;
                    } else {
                        break;
                    }
                }
                Ok(CreateInstanceStmt::Snippet {
                    name,
                    max_sentences,
                    max_chars,
                    min_source,
                })
            }
            other => Err(Error::Parse(format!(
                "unknown summary type `{other}` (expected CLASSIFIER, CLUSTER, or SNIPPET)"
            ))),
        }
    }

    fn zoomin(&mut self) -> Result<Statement> {
        self.expect_kw("reference")?;
        self.expect_kw("qid")?;
        let qid = self.uint()?;
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_kw("on")?;
        let instance = self.ident()?;
        let component = if self.eat_kw("index") {
            ZoomComponent::Index(self.uint()?)
        } else if self.eat_kw("label") {
            ZoomComponent::Label(self.string()?)
        } else {
            return Err(self.unexpected("`INDEX n` or `LABEL 'name'`"));
        };
        Ok(Statement::ZoomIn(ZoomInStmt {
            qid,
            where_clause,
            instance,
            component,
        }))
    }

    // -- SELECT ------------------------------------------------------------

    fn select(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = vec![self.select_item()?];
        while self.eat(&TokenKind::Comma) {
            items.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut from = vec![self.table_ref()?];
        let mut join_on = Vec::new();
        loop {
            if self.eat(&TokenKind::Comma) {
                from.push(self.table_ref()?);
            } else if self.eat_kw("join") {
                from.push(self.table_ref()?);
                self.expect_kw("on")?;
                join_on.push(self.expr()?);
            } else if self.peek_kw("inner") {
                self.advance();
                self.expect_kw("join")?;
                from.push(self.table_ref()?);
                self.expect_kw("on")?;
                join_on.push(self.expr()?);
            } else {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.column_ref()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            Some(self.uint()?)
        } else {
            None
        };
        let as_of = if self.eat_kw("as") {
            self.expect_kw("of")?;
            Some(self.uint()?)
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            from,
            join_on,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            as_of,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate call?
        if let TokenKind::Ident(name) = &self.peek().kind {
            let func = match name.to_ascii_lowercase().as_str() {
                "count" => Some(AggFunc::Count),
                "sum" => Some(AggFunc::Sum),
                "avg" => Some(AggFunc::Avg),
                "min" => Some(AggFunc::Min),
                "max" => Some(AggFunc::Max),
                _ => None,
            };
            if let Some(func) = func {
                if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen) {
                    self.advance(); // function name
                    self.advance(); // (
                    let arg = if self.eat(&TokenKind::Star) {
                        if func != AggFunc::Count {
                            return Err(self.unexpected("an expression (only COUNT takes `*`)"));
                        }
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(&TokenKind::RParen)?;
                    let alias = self.alias()?;
                    return Ok(SelectItem::Aggregate { func, arg, alias });
                }
            }
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let table = self.ident()?;
        // A bare identifier that is not a clause keyword is an alias.
        let alias = match &self.peek().kind {
            TokenKind::Ident(s) if !is_clause_keyword(s) => Some(self.ident()?),
            _ => None,
        };
        Ok(TableRef { table, alias })
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.ident()?;
        if self.eat(&TokenKind::Dot) {
            let name = self.ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                name: first,
            })
        }
    }

    // -- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull(Box::new(lhs), negated));
        }
        let op = match self.peek().kind {
            TokenKind::Eq => Some(BinCmp::Eq),
            TokenKind::Ne => Some(BinCmp::Ne),
            TokenKind::Lt => Some(BinCmp::Lt),
            TokenKind::Le => Some(BinCmp::Le),
            TokenKind::Gt => Some(BinCmp::Gt),
            TokenKind::Ge => Some(BinCmp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.add_expr()?;
            Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinArith::Add,
                TokenKind::Minus => BinArith::Sub,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.mul_expr()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinArith::Mul,
                TokenKind::Slash => BinArith::Div,
                _ => return Ok(lhs),
            };
            self.advance();
            let rhs = self.unary_expr()?;
            lhs = Expr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary_expr()?;
            return Ok(match inner {
                Expr::Literal(Literal::Int(v)) => Expr::Literal(Literal::Int(-v)),
                Expr::Literal(Literal::Float(v)) => Expr::Literal(Literal::Float(-v)),
                other => Expr::Arith(
                    BinArith::Sub,
                    Box::new(Expr::Literal(Literal::Int(0))),
                    Box::new(other),
                ),
            });
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::LParen) {
            let e = self.expr()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(e);
        }
        match self.peek().kind.clone() {
            TokenKind::Int(_) | TokenKind::Float(_) | TokenKind::Str(_) => {
                Ok(Expr::Literal(self.literal()?))
            }
            TokenKind::Ident(name) => {
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "null" => {
                        self.advance();
                        Ok(Expr::Literal(Literal::Null))
                    }
                    "true" => {
                        self.advance();
                        Ok(Expr::Literal(Literal::Bool(true)))
                    }
                    "false" => {
                        self.advance();
                        Ok(Expr::Literal(Literal::Bool(false)))
                    }
                    "contains"
                        if self.tokens.get(self.pos + 1).map(|t| &t.kind)
                            == Some(&TokenKind::LParen) =>
                    {
                        self.advance();
                        self.advance();
                        let arg = self.expr()?;
                        self.expect(&TokenKind::Comma)?;
                        let needle = self.string()?;
                        self.expect(&TokenKind::RParen)?;
                        Ok(Expr::Contains(Box::new(arg), needle))
                    }
                    "summary_count"
                        if self.tokens.get(self.pos + 1).map(|t| &t.kind)
                            == Some(&TokenKind::LParen) =>
                    {
                        self.advance();
                        self.advance();
                        let instance = self.ident()?;
                        self.expect(&TokenKind::Comma)?;
                        let component = match self.peek().kind.clone() {
                            TokenKind::Str(s) => {
                                self.advance();
                                s
                            }
                            TokenKind::Int(v) if v >= 0 => {
                                self.advance();
                                v.to_string()
                            }
                            _ => return Err(self.unexpected("a label string or group index")),
                        };
                        self.expect(&TokenKind::RParen)?;
                        Ok(Expr::SummaryCount {
                            instance,
                            component,
                        })
                    }
                    _ => Ok(Expr::Column(self.column_ref()?)),
                }
            }
            _ => Err(self.unexpected("an expression")),
        }
    }
}

/// Identifiers that terminate a table alias position.
fn is_clause_keyword(s: &str) -> bool {
    matches!(
        s.to_ascii_lowercase().as_str(),
        "where"
            | "having"
            | "join"
            | "inner"
            | "on"
            | "group"
            | "order"
            | "limit"
            | "select"
            | "from"
            | "and"
            | "or"
            | "as"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure2_query() {
        // The demo paper's running example.
        let stmt =
            parse_one("Select r.a, r.b, s.z From R r, S s Where r.a = s.x And r.b = 2;").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("expected select");
        };
        assert_eq!(sel.items.len(), 3);
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.from[0].binding(), "r");
        assert!(sel.where_clause.is_some());
        assert!(!sel.distinct);
    }

    #[test]
    fn parses_explicit_join_and_group_order_limit() {
        let stmt = parse_one(
            "SELECT DISTINCT b.name, COUNT(*) AS n FROM birds b JOIN sightings s ON b.id = s.bird \
             WHERE s.year >= 2000 GROUP BY b.name ORDER BY n DESC, b.name LIMIT 10",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!()
        };
        assert!(sel.distinct);
        assert_eq!(sel.from.len(), 2);
        assert_eq!(sel.join_on.len(), 1);
        assert_eq!(sel.group_by.len(), 1);
        assert_eq!(sel.order_by.len(), 2);
        assert!(sel.order_by[0].desc);
        assert_eq!(sel.limit, Some(10));
        assert!(matches!(
            sel.items[1],
            SelectItem::Aggregate {
                func: AggFunc::Count,
                arg: None,
                ..
            }
        ));
    }

    #[test]
    fn parses_zoomin_per_figure3() {
        let stmt = parse_one("ZoomIn Reference QID 101 Where c1 = 'x' On NaiveBayesClass Index 1;")
            .unwrap();
        let Statement::ZoomIn(z) = stmt else { panic!() };
        assert_eq!(z.qid, 101);
        assert!(z.where_clause.is_some());
        assert_eq!(z.instance, "NaiveBayesClass");
        assert_eq!(z.component, ZoomComponent::Index(1));

        let stmt = parse_one("ZOOMIN REFERENCE QID 7 ON ClassBird1 LABEL 'Disease'").unwrap();
        let Statement::ZoomIn(z) = stmt else { panic!() };
        assert_eq!(z.component, ZoomComponent::Label("Disease".into()));
        assert!(z.where_clause.is_none());
    }

    #[test]
    fn parses_add_annotation_variants() {
        let stmt = parse_one(
            "ADD ANNOTATION 'size seems wrong' AUTHOR 'alice' ON birds \
             COLUMNS (weight, wingspan) WHERE name = 'Swan Goose'",
        )
        .unwrap();
        let Statement::AddAnnotation {
            text,
            document,
            author,
            table,
            columns,
            where_clause,
        } = stmt
        else {
            panic!()
        };
        assert_eq!(text, "size seems wrong");
        assert_eq!(document, None);
        assert_eq!(author.as_deref(), Some("alice"));
        assert_eq!(table, "birds");
        assert_eq!(columns, vec!["weight", "wingspan"]);
        assert!(where_clause.is_some());

        let stmt = parse_one("ADD ANNOTATION 'ref' DOCUMENT 'full article text' ON birds").unwrap();
        let Statement::AddAnnotation {
            document,
            columns,
            where_clause,
            ..
        } = stmt
        else {
            panic!()
        };
        assert_eq!(document.as_deref(), Some("full article text"));
        assert!(columns.is_empty());
        assert!(where_clause.is_none());
    }

    #[test]
    fn parses_create_instance_classifier() {
        let stmt = parse_one(
            "CREATE SUMMARY INSTANCE ClassBird1 TYPE CLASSIFIER \
             LABELS ('Behavior', 'Disease', 'Other') \
             TRAIN ('Behavior': 'eating stonewort', 'Disease': 'wing lesions') \
             PROPERTIES (ANNOTATION_INVARIANT true, DATA_INVARIANT false)",
        )
        .unwrap();
        let Statement::CreateInstance(CreateInstanceStmt::Classifier {
            name,
            labels,
            training,
            annotation_invariant,
            data_invariant,
        }) = stmt
        else {
            panic!()
        };
        assert_eq!(name, "ClassBird1");
        assert_eq!(labels.len(), 3);
        assert_eq!(training.len(), 2);
        assert!(annotation_invariant);
        assert!(!data_invariant);
    }

    #[test]
    fn parses_create_instance_cluster_and_snippet() {
        let stmt =
            parse_one("CREATE SUMMARY INSTANCE SimCluster TYPE CLUSTER THRESHOLD 0.5").unwrap();
        assert!(matches!(
            stmt,
            Statement::CreateInstance(CreateInstanceStmt::Cluster { threshold, .. })
            if (threshold - 0.5).abs() < 1e-9
        ));
        let stmt = parse_one(
            "CREATE SUMMARY INSTANCE TextSummary1 TYPE SNIPPET MAX_SENTENCES 2 MIN_SOURCE 100",
        )
        .unwrap();
        assert!(matches!(
            stmt,
            Statement::CreateInstance(CreateInstanceStmt::Snippet {
                max_sentences: 2,
                max_chars: 280,
                min_source: 100,
                ..
            })
        ));
    }

    #[test]
    fn parses_link_unlink_and_ddl() {
        assert!(matches!(
            parse_one("LINK SUMMARY ClassBird1 TO birds").unwrap(),
            Statement::LinkSummary { .. }
        ));
        assert!(matches!(
            parse_one("UNLINK SUMMARY ClassBird1 FROM birds").unwrap(),
            Statement::UnlinkSummary { .. }
        ));
        let stmt = parse_one("CREATE TABLE birds (name TEXT, weight FLOAT)").unwrap();
        assert!(matches!(stmt, Statement::CreateTable { ref columns, .. } if columns.len() == 2));
        assert!(matches!(
            parse_one("DROP TABLE birds").unwrap(),
            Statement::DropTable { .. }
        ));
        assert!(matches!(
            parse_one("DROP SUMMARY INSTANCE x").unwrap(),
            Statement::DropInstance { .. }
        ));
    }

    #[test]
    fn parses_insert_with_negatives_and_nulls() {
        let stmt =
            parse_one("INSERT INTO t VALUES (1, -2.5, 'x', NULL, true), (2, 3.0, 'y', 'z', false)")
                .unwrap();
        let Statement::Insert { rows, .. } = stmt else {
            panic!()
        };
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Literal::Float(-2.5));
        assert_eq!(rows[0][3], Literal::Null);
    }

    #[test]
    fn expression_precedence() {
        let Statement::Select(sel) =
            parse_one("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap()
        else {
            panic!()
        };
        // AND binds tighter than OR.
        assert!(matches!(sel.where_clause, Some(Expr::Or(_, _))));

        let Statement::Select(sel) = parse_one("SELECT a + b * c FROM t").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!()
        };
        // * binds tighter than +.
        assert!(matches!(expr, Expr::Arith(BinArith::Add, _, _)));
    }

    #[test]
    fn parses_summary_count_and_contains() {
        let Statement::Select(sel) = parse_one(
            "SELECT name, SUMMARY_COUNT(ClassBird1, 'Disease') FROM birds \
             WHERE SUMMARY_COUNT(ClassBird1, 'Disease') > 0 AND CONTAINS(name, 'goose') \
             ORDER BY SUMMARY_COUNT(ClassBird1, 'Disease') DESC",
        )
        .unwrap() else {
            panic!()
        };
        assert!(matches!(
            &sel.items[1],
            SelectItem::Expr {
                expr: Expr::SummaryCount { .. },
                ..
            }
        ));
        assert!(sel.where_clause.is_some());
        assert!(matches!(&sel.order_by[0].expr, Expr::SummaryCount { .. }));
    }

    #[test]
    fn is_null_and_not() {
        let Statement::Select(sel) =
            parse_one("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL AND NOT c = 1").unwrap()
        else {
            panic!()
        };
        let mut found_is_null = 0;
        fn walk(e: &Expr, found: &mut i32) {
            match e {
                Expr::IsNull(_, _) => *found += 1,
                Expr::And(l, r) | Expr::Or(l, r) => {
                    walk(l, found);
                    walk(r, found);
                }
                Expr::Not(i) => walk(i, found),
                _ => {}
            }
        }
        walk(sel.where_clause.as_ref().unwrap(), &mut found_is_null);
        assert_eq!(found_is_null, 2);
    }

    #[test]
    fn parses_explain_and_deletes() {
        assert!(matches!(
            parse_one("EXPLAIN SELECT * FROM t WHERE a = 1").unwrap(),
            Statement::Explain(_)
        ));
        let stmt = parse_one("DELETE FROM birds WHERE id = 3").unwrap();
        assert!(matches!(
            stmt,
            Statement::DeleteRows {
                ref table,
                where_clause: Some(_)
            } if table == "birds"
        ));
        assert!(matches!(
            parse_one("DELETE FROM birds").unwrap(),
            Statement::DeleteRows {
                where_clause: None,
                ..
            }
        ));
        assert!(matches!(
            parse_one("DELETE ANNOTATION 42").unwrap(),
            Statement::DeleteAnnotation { id: 42 }
        ));
        assert!(parse_one("DELETE birds").is_err());
    }

    #[test]
    fn parses_lifecycle_statements() {
        assert!(matches!(
            parse_one("RETRACT ANNOTATION 7").unwrap(),
            Statement::RetractAnnotation { id: 7 }
        ));
        assert!(matches!(
            parse_one("FLAG ANNOTATION 3").unwrap(),
            Statement::FlagAnnotation { id: 3, note: None }
        ));
        let stmt = parse_one("FLAG ANNOTATION 3 'dubious source'").unwrap();
        let Statement::FlagAnnotation { id, note } = stmt else {
            panic!()
        };
        assert_eq!(id, 3);
        assert_eq!(note.as_deref(), Some("dubious source"));
        assert!(matches!(
            parse_one("HISTORY 9").unwrap(),
            Statement::HistoryAnnotation { id: 9 }
        ));
        assert!(matches!(
            parse_one("HISTORY ANNOTATION 9").unwrap(),
            Statement::HistoryAnnotation { id: 9 }
        ));
        assert!(parse_one("RETRACT 7").is_err());
        assert!(parse_one("FLAG ANNOTATION").is_err());
    }

    #[test]
    fn parses_correct_annotation_with_and_without_stamp() {
        let stmt =
            parse_one("CORRECT ANNOTATION 4 'fixed text' DOCUMENT 'doc' AUTHOR 'bob'").unwrap();
        let Statement::CorrectAnnotation {
            id,
            text,
            document,
            author,
            stamp,
        } = stmt
        else {
            panic!()
        };
        assert_eq!(id, 4);
        assert_eq!(text, "fixed text");
        assert_eq!(document.as_deref(), Some("doc"));
        assert_eq!(author.as_deref(), Some("bob"));
        assert_eq!(stamp, None);

        let stmt = parse_one("CORRECT ANNOTATION 4 'fixed' WITH ID 12 AT 99").unwrap();
        let Statement::CorrectAnnotation { stamp, .. } = stmt else {
            panic!()
        };
        assert_eq!(stamp, Some((12, 99)));
        assert!(parse_one("CORRECT ANNOTATION 4").is_err());
        assert!(parse_one("CORRECT ANNOTATION 4 'x' WITH ID 12").is_err());
    }

    #[test]
    fn parses_select_as_of() {
        let Statement::Select(sel) = parse_one("SELECT * FROM birds AS OF 41").unwrap() else {
            panic!()
        };
        assert_eq!(sel.as_of, Some(41));
        assert!(sel.from[0].alias.is_none());

        let Statement::Select(sel) =
            parse_one("SELECT name FROM birds WHERE id = 1 ORDER BY name LIMIT 5 AS OF 2").unwrap()
        else {
            panic!()
        };
        assert_eq!(sel.as_of, Some(2));
        assert_eq!(sel.limit, Some(5));

        let Statement::Select(sel) = parse_one("SELECT * FROM birds").unwrap() else {
            panic!()
        };
        assert_eq!(sel.as_of, None);
        assert!(parse_one("SELECT * FROM birds AS OF").is_err());
    }

    #[test]
    fn multiple_statements_and_errors() {
        let stmts = parse("SELECT * FROM a; SELECT * FROM b;").unwrap();
        assert_eq!(stmts.len(), 2);
        assert!(parse_one("SELECT * FROM a; SELECT * FROM b").is_err());
        assert!(parse("SELECT FROM").is_err());
        assert!(parse("FLY me TO the moon").is_err());
        assert!(parse("SELECT * FROM t WHERE SUM(a) = 1").is_err());
        assert!(parse("").unwrap().is_empty());
    }
}
