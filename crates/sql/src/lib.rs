#![warn(missing_docs)]
//! # insightnotes-sql
//!
//! The SQL front-end: a lexer, an AST, and a recursive-descent parser for
//! the query subset InsightNotes' semantics are defined over
//! (select / project / join / group-aggregate / distinct / order / limit)
//! plus the InsightNotes command extensions:
//!
//! ```sql
//! -- annotate all matching rows (Figure 1 / demo scenario 2)
//! ADD ANNOTATION 'size seems wrong' ON birds WHERE name = 'Swan Goose';
//! ADD ANNOTATION 'ref' DOCUMENT '...' ON birds COLUMNS (weight) WHERE id = 7;
//!
//! -- the summarization hierarchy (Figure 4)
//! CREATE SUMMARY INSTANCE ClassBird1 TYPE CLASSIFIER
//!   LABELS ('Behavior', 'Disease', 'Anatomy', 'Other')
//!   TRAIN ('Behavior': 'found eating stonewort', ...);
//! CREATE SUMMARY INSTANCE SimCluster TYPE CLUSTER THRESHOLD 0.4;
//! CREATE SUMMARY INSTANCE TextSummary1 TYPE SNIPPET MAX_SENTENCES 3;
//! LINK SUMMARY ClassBird1 TO birds;
//!
//! -- zoom-in (Figure 3)
//! ZOOMIN REFERENCE QID 101 WHERE c1 = 'x' ON NaiveBayesClass INDEX 1;
//! ```
//!
//! Summary-based predicates are expressed with the
//! `SUMMARY_COUNT(instance, 'label')` pseudo-function, usable anywhere a
//! scalar is (SELECT list, WHERE, ORDER BY) — the "summaries as
//! first-class citizens" capability of the EDBT'15 companion paper.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse, parse_one};

/// Renders `s` as a SQL single-quoted string literal, doubling embedded
/// quotes — the inverse of the lexer's `''` unescaping. Engine code uses
/// this to render lossless statement text for the write-ahead log.
pub fn quote_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for ch in s.chars() {
        if ch == '\'' {
            out.push('\'');
        }
        out.push(ch);
    }
    out.push('\'');
    out
}

#[cfg(test)]
mod quote_tests {
    use super::*;

    #[test]
    fn quote_str_round_trips_through_the_lexer() {
        for s in ["plain", "it's", "''", "", "héllo 'quoted'"] {
            let sql = format!("ADD ANNOTATION {} ON t", quote_str(s));
            let stmt = parse_one(&sql).unwrap();
            let Statement::AddAnnotation { text, .. } = stmt else {
                panic!()
            };
            assert_eq!(text, s);
        }
    }
}
