//! Property tests for batched annotation ingestion: `annotate_batch`
//! (SQL path) and `annotate_rows_batch` (typed path) must be observably
//! identical to replaying the same annotations one at a time — the same
//! per-item success/failure pattern, the same per-item maintenance
//! stats attribution, the same summary objects, and
//! byte-identical snapshots. Snapshot bytes pin annotation ids and the
//! `created` clock ticks stamped into each body, not just aggregate
//! state, so an id or tick skew introduced by batching shows up even
//! when the summaries happen to agree.
//!
//! Batches deliberately mix in failing items — empty target sets,
//! unknown tables, non-annotation statements — to check that a failure
//! neither aborts the rest of the group nor perturbs the ids and ticks
//! of its neighbors (failed items must consume neither in either path).

use insightnotes::annotations::{AnnotationBody, ColSig};
use insightnotes::common::{AnnotationId, ColumnId, RowId};
use insightnotes::engine::db::SqlStatement;
use insightnotes::engine::persist::snapshot;
use insightnotes::engine::ExecOutcome;
use insightnotes::engine::{Database, DbConfig, RowAnnotation, ShardedDatabase};
use insightnotes::sql::parse_one;
use insightnotes::summaries::{MaintenanceMode, MaintenanceStats};
use proptest::prelude::*;

const TEXT_POOL: &[&str] = &[
    "eating stonewort near shore",
    "eating stonewort near lake today",
    "lesions parasites infection",
    "wingspan plumage measured",
    "reference photo attached survey",
    "diving foraging flocking",
];

const AUTHORS: &[&str] = &["ada", "brahe", "curie"];

const NUM_ROWS: usize = 5;

const SETUP_SQL: &str = "CREATE TABLE t (p INT, q TEXT, r FLOAT);
         INSERT INTO t VALUES (1, 'one', 1.0), (2, 'two', 2.0), (3, 'three', 3.0),
                              (4, 'four', 4.0), (5, 'five', 5.0);
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER
           LABELS ('Behavior', 'Disease', 'Anatomy', 'Other')
           TRAIN ('Behavior': 'eating stonewort diving foraging',
                  'Disease': 'lesions parasites infection',
                  'Anatomy': 'wingspan plumage measured',
                  'Other': 'reference photo attached');
         CREATE SUMMARY INSTANCE K TYPE CLUSTER THRESHOLD 0.5;
         CREATE SUMMARY INSTANCE S TYPE SNIPPET MIN_SOURCE 60;
         LINK SUMMARY C TO t;
         LINK SUMMARY K TO t;
         LINK SUMMARY S TO t;";

fn fresh_db(mode: MaintenanceMode) -> Database {
    let mut db = Database::with_config(DbConfig {
        maintenance: mode,
        ..DbConfig::default()
    })
    .unwrap();
    db.execute_sql(SETUP_SQL).unwrap();
    db
}

fn all_objects(db: &Database) -> Vec<String> {
    let t = db.catalog().table_id("t").unwrap();
    let mut out = Vec::new();
    for rid in 1..=NUM_ROWS as u64 {
        for (inst, obj) in db.registry().objects_on(t, RowId::new(rid)) {
            out.push(format!("r{rid} {inst} {obj:?}"));
        }
    }
    out
}

fn snapshot_bytes(db: &Database) -> Vec<u8> {
    snapshot(db.catalog(), db.store(), db.registry())
}

/// After comparing end states, both databases absorb one more
/// annotation and the snapshots are compared again: if the batch path
/// advanced the logical clock differently (e.g. ticked for a failed
/// item), the divergence surfaces in this probe's `created` stamp even
/// though the pre-probe snapshots agreed.
fn clock_probe(a: &mut Database, b: &mut Database) {
    for db in [a, b] {
        db.execute_sql("ADD ANNOTATION 'clock probe' AUTHOR 'probe' ON t WHERE p = 1")
            .unwrap();
    }
}

// -- SQL path -------------------------------------------------------------

#[derive(Debug, Clone)]
enum Item {
    /// Valid `ADD ANNOTATION` hitting exactly one existing row.
    Annotate {
        row: usize,
        text: usize,
        author: usize,
        col_scoped: bool,
    },
    /// Predicate matches nothing: fails with an empty target set.
    NoMatch { text: usize },
    /// Unknown table: fails at catalog resolution.
    UnknownTable { text: usize },
    /// Not an `ADD ANNOTATION` at all: batches reject it per item.
    NotAnnotation,
}

fn item_strategy() -> impl Strategy<Value = Item> {
    let annotate = || {
        (
            0usize..NUM_ROWS,
            0usize..TEXT_POOL.len(),
            0usize..AUTHORS.len(),
            any::<bool>(),
        )
            .prop_map(|(row, text, author, col_scoped)| Item::Annotate {
                row,
                text,
                author,
                col_scoped,
            })
    };
    // The valid case is listed several times: `prop_oneof!` picks
    // uniformly, and batches should be mostly-successful with failures
    // sprinkled in, not the reverse.
    prop_oneof![
        annotate(),
        annotate(),
        annotate(),
        annotate(),
        (0usize..TEXT_POOL.len()).prop_map(|text| Item::NoMatch { text }),
        (0usize..TEXT_POOL.len()).prop_map(|text| Item::UnknownTable { text }),
        Just(Item::NotAnnotation),
    ]
}

fn sql_of(item: &Item) -> String {
    match item {
        Item::Annotate {
            row,
            text,
            author,
            col_scoped,
        } => {
            let cols = if *col_scoped { " COLUMNS (q, r)" } else { "" };
            format!(
                "ADD ANNOTATION '{}' AUTHOR '{}' ON t{cols} WHERE p = {}",
                TEXT_POOL[*text],
                AUTHORS[*author],
                row + 1
            )
        }
        Item::NoMatch { text } => {
            format!("ADD ANNOTATION '{}' ON t WHERE p = 99", TEXT_POOL[*text])
        }
        Item::UnknownTable { text } => {
            format!(
                "ADD ANNOTATION '{}' ON missing WHERE p = 1",
                TEXT_POOL[*text]
            )
        }
        Item::NotAnnotation => "SELECT p FROM t".into(),
    }
}

/// Successful items compare their [`MaintenanceStats`] too: the batch
/// path must *attribute* its maintenance work (digests computed, cache
/// hits, object updates) to the same annotation the serial path does,
/// in both maintenance modes — not just end in the same state.
fn stats_of(outcomes: &[ExecOutcome]) -> MaintenanceStats {
    match outcomes {
        [ExecOutcome::Annotated { maintenance, .. }] => *maintenance,
        other => panic!("expected one Annotated outcome, got {other:?}"),
    }
}

/// One-by-one reference execution. `NotAnnotation` items are skipped
/// outright: the batch contract is that they are rejected *without
/// execution*, so the serial reference must not run them either.
fn replay_serial(db: &mut Database, items: &[Item]) -> Vec<Result<MaintenanceStats, String>> {
    items
        .iter()
        .map(|item| match item {
            Item::NotAnnotation => Err("rejected without execution".into()),
            other => db
                .execute_sql(&sql_of(other))
                .map(|outcomes| stats_of(&outcomes))
                .map_err(|e| e.to_string()),
        })
        .collect()
}

fn run_batch(db: &mut Database, items: &[Item]) -> Vec<Result<MaintenanceStats, String>> {
    let stmts = items
        .iter()
        .map(|i| parse_one(&sql_of(i)).expect("generated SQL parses"))
        .collect();
    db.annotate_batch(stmts)
        .into_iter()
        .map(|r| {
            r.map(|outcome| stats_of(std::slice::from_ref(&outcome)))
                .map_err(|e| e.to_string())
        })
        .collect()
}

// -- typed path -----------------------------------------------------------

#[derive(Debug, Clone)]
struct TypedItem {
    row: usize,
    text: usize,
    // Column mask 1..=7 over the three columns of `t`.
    mask: u8,
    bad_table: bool,
}

fn typed_strategy() -> impl Strategy<Value = TypedItem> {
    (0usize..NUM_ROWS, 0usize..TEXT_POOL.len(), 1u8..8, 0usize..8).prop_map(
        |(row, text, mask, fail)| TypedItem {
            row,
            text,
            mask,
            bad_table: fail == 0,
        },
    )
}

fn row_annotation(item: &TypedItem) -> RowAnnotation {
    let cols: Vec<ColumnId> = (0..3u16)
        .filter(|bit| item.mask & (1 << bit) != 0)
        .map(ColumnId::new)
        .collect();
    RowAnnotation {
        table: if item.bad_table { "missing" } else { "t" }.into(),
        rows: vec![RowId::new(item.row as u64 + 1)],
        cols: ColSig::of_columns(&cols),
        body: AnnotationBody::text(TEXT_POOL[item.text], "prop"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sql_batch_matches_serial_replay(
        items in prop::collection::vec(item_strategy(), 1..40),
    ) {
        // Both maintenance modes take distinct paths through
        // `batch_refresh`; the equivalence must hold in each.
        for mode in [MaintenanceMode::Incremental, MaintenanceMode::Rebuild] {
            let mut batched = fresh_db(mode);
            let mut serial = fresh_db(mode);
            let batch_results = run_batch(&mut batched, &items);
            let serial_results = replay_serial(&mut serial, &items);
            prop_assert_eq!(batch_results.len(), items.len());
            for (i, (b, s)) in batch_results.iter().zip(&serial_results).enumerate() {
                match items[i] {
                    // The serial reference never executes these, so only
                    // the rejection itself is comparable.
                    Item::NotAnnotation => prop_assert!(
                        b.is_err(),
                        "item {i}: non-annotation statement accepted by batch"
                    ),
                    _ => prop_assert_eq!(
                        b, s,
                        "item {} diverged between batch and serial ({:?})",
                        i, items[i]
                    ),
                }
            }
            prop_assert_eq!(all_objects(&batched), all_objects(&serial));
            prop_assert_eq!(
                snapshot_bytes(&batched),
                snapshot_bytes(&serial),
                "snapshot bytes diverged"
            );
            clock_probe(&mut batched, &mut serial);
            prop_assert_eq!(
                snapshot_bytes(&batched),
                snapshot_bytes(&serial),
                "logical clocks diverged"
            );
        }
    }

    #[test]
    fn typed_batch_matches_serial_replay(
        items in prop::collection::vec(typed_strategy(), 1..40),
    ) {
        let mut batched = fresh_db(MaintenanceMode::Incremental);
        let mut serial = fresh_db(MaintenanceMode::Incremental);
        let batch_ids = batched.annotate_rows_batch(items.iter().map(row_annotation).collect());
        prop_assert_eq!(batch_ids.len(), items.len());
        for (i, item) in items.iter().enumerate() {
            let ra = row_annotation(item);
            let serial_id = serial.annotate_rows(&ra.table, &ra.rows, ra.cols, ra.body);
            match (&batch_ids[i], serial_id) {
                (Ok(b), Ok(s)) => prop_assert_eq!(*b, s, "item {} got a different id", i),
                (Err(b), Err(s)) => prop_assert_eq!(
                    b.to_string(),
                    s.to_string(),
                    "item {} failed differently",
                    i
                ),
                (b, s) => panic!("item {i}: batch {b:?} vs serial {s:?}"),
            }
        }
        prop_assert_eq!(all_objects(&batched), all_objects(&serial));
        prop_assert_eq!(
            snapshot_bytes(&batched),
            snapshot_bytes(&serial),
            "snapshot bytes diverged"
        );
        clock_probe(&mut batched, &mut serial);
        prop_assert_eq!(
            snapshot_bytes(&batched),
            snapshot_bytes(&serial),
            "logical clocks diverged"
        );
    }
}

// -- sharded path ---------------------------------------------------------

fn fresh_sharded(shards: usize) -> ShardedDatabase {
    let db = ShardedDatabase::create(DbConfig::default(), shards).unwrap();
    db.execute_sql(SETUP_SQL).unwrap();
    db
}

/// The canonical per-row logical state: every stored annotation (id,
/// `created` tick, body, column signature) and every summary object,
/// each read from the row's *owner* shard and rendered semantically.
/// Ids and ticks pin the router's stamp allocation against serial
/// staging's; the rendered objects pin the summaries. (Registry
/// *bytes* can legitimately differ across shard counts — interning
/// orders diverge — which is exactly why this digest, not the
/// snapshot, is the cross-shard comparator; at `shards == 1` the
/// snapshot-byte check below still applies.)
fn logical_digest(db: &ShardedDatabase) -> Vec<String> {
    let t = db.shard(0).read().catalog().table_id("t").unwrap();
    let mut out = Vec::new();
    for rid in 1..=NUM_ROWS as u64 {
        let row = RowId::new(rid);
        let guard = db.shard(db.owner(t, row)).read();
        for &(aid, sig) in guard.store().on_row(t, row) {
            let a = guard.store().get(aid).unwrap();
            out.push(format!(
                "r{rid} a{} t{} '{}' by {} cols {sig}",
                aid.raw(),
                a.body.created,
                a.body.text,
                a.body.author
            ));
        }
        for (inst, obj) in guard.registry().objects_on(t, row) {
            out.push(format!("r{rid} {inst} {obj}"));
        }
    }
    out
}

fn item_stmt(item: &Item) -> SqlStatement {
    let sql = sql_of(item);
    SqlStatement {
        stmt: parse_one(&sql).expect("generated SQL parses"),
        sql,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The sharded SQL batch path against one-at-a-time serial replay on
    /// an unsharded database, at one shard (router collapsed — snapshot
    /// bytes must match too) and at four (hash-routed, logical digest).
    /// Per item: identical success/failure, identical error text,
    /// identical annotation id.
    #[test]
    fn sharded_batch_matches_serial_replay(
        items in prop::collection::vec(item_strategy(), 1..30),
    ) {
        for shards in [1usize, 4] {
            let sharded = fresh_sharded(shards);
            let mut serial = fresh_db(MaintenanceMode::Incremental);

            let stmts: Vec<SqlStatement> = items.iter().map(item_stmt).collect();
            let batch_results = sharded.annotate_batch_sql(stmts);
            prop_assert_eq!(batch_results.len(), items.len());
            for (i, item) in items.iter().enumerate() {
                let batch = batch_results[i]
                    .as_ref()
                    .map(|o| match o {
                        ExecOutcome::Annotated { annotation, .. } => annotation.raw(),
                        other => panic!("unexpected outcome {other:?}"),
                    })
                    .map_err(ToString::to_string);
                match item {
                    Item::NotAnnotation => prop_assert!(
                        batch.is_err(),
                        "item {}: non-annotation accepted by sharded batch", i
                    ),
                    other => {
                        let serial_res = serial
                            .execute_sql(&sql_of(other))
                            .map(|outcomes| match &outcomes[..] {
                                [ExecOutcome::Annotated { annotation, .. }] => annotation.raw(),
                                o => panic!("expected one Annotated outcome, got {o:?}"),
                            })
                            .map_err(|e| e.to_string());
                        prop_assert_eq!(
                            batch, serial_res,
                            "item {} diverged at {} shard(s) ({:?})", i, shards, item
                        );
                    }
                }
            }

            // Clock probe through the sharded router's execute path: a
            // tick skew from the batch surfaces in this `created` stamp.
            sharded
                .execute_sql("ADD ANNOTATION 'clock probe' AUTHOR 'probe' ON t WHERE p = 1")
                .unwrap();
            serial
                .execute_sql("ADD ANNOTATION 'clock probe' AUTHOR 'probe' ON t WHERE p = 1")
                .unwrap();

            if shards == 1 {
                let g = sharded.shard(0).read();
                prop_assert_eq!(
                    snapshot(g.catalog(), g.store(), g.registry()),
                    snapshot_bytes(&serial),
                    "single-shard snapshot bytes diverged from serial"
                );
            }
            let serial_facade: ShardedDatabase = serial.into();
            prop_assert_eq!(
                logical_digest(&sharded),
                logical_digest(&serial_facade),
                "logical state diverged at {} shard(s)", shards
            );
        }
    }

    /// The sharded typed batch path (`annotate_rows_batch`) against
    /// serial typed ingestion, same shard counts and digest.
    #[test]
    fn sharded_typed_batch_matches_serial_replay(
        items in prop::collection::vec(typed_strategy(), 1..30),
    ) {
        for shards in [1usize, 4] {
            let sharded = fresh_sharded(shards);
            let mut serial = fresh_db(MaintenanceMode::Incremental);
            let ids = sharded.annotate_rows_batch(items.iter().map(row_annotation).collect());
            prop_assert_eq!(ids.len(), items.len());
            for (i, item) in items.iter().enumerate() {
                let ra = row_annotation(item);
                let serial_id = serial.annotate_rows(&ra.table, &ra.rows, ra.cols, ra.body);
                match (&ids[i], serial_id) {
                    (Ok(b), Ok(s)) => prop_assert_eq!(
                        *b, s, "item {} got a different id at {} shard(s)", i, shards
                    ),
                    (Err(b), Err(s)) => prop_assert_eq!(
                        b.to_string(),
                        s.to_string(),
                        "item {} failed differently at {} shard(s)", i, shards
                    ),
                    (b, s) => panic!("item {i}: sharded {b:?} vs serial {s:?}"),
                }
            }
            let serial_facade: ShardedDatabase = serial.into();
            prop_assert_eq!(
                logical_digest(&sharded),
                logical_digest(&serial_facade),
                "logical state diverged at {} shard(s)", shards
            );
        }
    }
}

/// A fixed shape worth pinning outside the property: failures at the
/// batch's edges and middle, with successes in between — ids must come
/// out dense and in statement order.
#[test]
fn mixed_failure_batch_keeps_ids_dense_and_ordered() {
    let mut db = fresh_db(MaintenanceMode::Incremental);
    let stmts = [
        "ADD ANNOTATION 'x' ON missing",
        "ADD ANNOTATION 'wingspan plumage measured' ON t WHERE p = 1",
        "ADD ANNOTATION 'y' ON t WHERE p = 99",
        "ADD ANNOTATION 'lesions parasites infection' ON t WHERE p = 2",
        "SELECT p FROM t",
        "ADD ANNOTATION 'diving foraging flocking' ON t WHERE p = 1",
    ]
    .iter()
    .map(|s| parse_one(s).unwrap())
    .collect();
    let results = db.annotate_batch(stmts);
    let ids: Vec<Option<u64>> = results
        .iter()
        .map(|r| match r {
            Ok(insightnotes::engine::ExecOutcome::Annotated { annotation, .. }) => {
                Some(annotation.raw())
            }
            Ok(other) => panic!("unexpected outcome {other:?}"),
            Err(_) => None,
        })
        .collect();
    assert_eq!(ids, vec![None, Some(1), None, Some(2), None, Some(3)]);
}

// -- sharded DELETE ANNOTATION routing ------------------------------------

/// `DELETE ANNOTATION` routes to the id's owner shards instead of
/// broadcasting: the client sees the owner's outcome (not a non-owner's
/// "unknown annotation"), `rows_refreshed` counts the target list once
/// rather than once per owner replica, and the end state matches serial
/// execution.
#[test]
fn sharded_delete_annotation_routes_to_owners() {
    for shards in [1usize, 4] {
        let sharded = fresh_sharded(shards);
        let mut serial = fresh_db(MaintenanceMode::Incremental);
        let add = "ADD ANNOTATION 'eating stonewort near shore' AUTHOR 'ada' ON t WHERE p >= 1";
        sharded.execute_sql(add).unwrap();
        serial.execute_sql(add).unwrap();

        let outcomes = sharded.execute_sql("DELETE ANNOTATION 1").unwrap();
        let serial_outcomes = serial.execute_sql("DELETE ANNOTATION 1").unwrap();
        match (&outcomes[..], &serial_outcomes[..]) {
            (
                [ExecOutcome::AnnotationDeleted {
                    annotation,
                    rows_refreshed,
                }],
                [ExecOutcome::AnnotationDeleted {
                    annotation: serial_ann,
                    rows_refreshed: serial_refreshed,
                }],
            ) => {
                assert_eq!(annotation, serial_ann);
                assert_eq!(
                    rows_refreshed, serial_refreshed,
                    "refresh count diverged at {shards} shard(s)"
                );
            }
            other => panic!("unexpected outcomes {other:?}"),
        }
        assert_eq!(sharded.annotation_count(), 0);
        let serial_facade: ShardedDatabase = serial.into();
        assert_eq!(
            logical_digest(&sharded),
            logical_digest(&serial_facade),
            "post-delete state diverged at {shards} shard(s)"
        );

        // Deleting an id no shard holds is one classified error, not a
        // broadcastful of divergent per-shard outcomes.
        let err = sharded.execute_sql("DELETE ANNOTATION 999").unwrap_err();
        assert!(err.to_string().contains("unknown annotation"), "{err}");
    }
}

/// Partitioned-store statements cannot mix with replicated writes in
/// one sharded script: a broadcast `DELETE ANNOTATION` would fail on
/// non-owner shards, and stop-at-first-failure would then apply the
/// rest of the script to a different set of shards — forking the
/// replicas. A pure partitioned script (ADD + DELETE) routes fine.
#[test]
fn sharded_script_mixing_delete_annotation_with_writes_is_rejected() {
    let sharded = fresh_sharded(4);
    sharded
        .execute_sql("ADD ANNOTATION 'wingspan plumage measured' AUTHOR 'ada' ON t WHERE p = 1")
        .unwrap();
    let err = sharded
        .execute_sql("INSERT INTO t VALUES (9, 'nine', 9.0); DELETE ANNOTATION 1")
        .unwrap_err();
    assert!(err.to_string().contains("cannot mix"), "{err}");
    // Nothing was applied: the annotation survives, the row was never
    // inserted anywhere.
    assert_eq!(sharded.annotation_count(), 1);
    assert_eq!(
        sharded
            .query("SELECT p FROM t WHERE p = 9")
            .unwrap()
            .rows
            .len(),
        0
    );

    let outcomes = sharded
        .execute_sql(
            "ADD ANNOTATION 'lesions parasites infection' AUTHOR 'brahe' ON t WHERE p = 2; \
             DELETE ANNOTATION 1",
        )
        .unwrap();
    assert_eq!(outcomes.len(), 2);
    assert_eq!(sharded.annotation_count(), 1);
}

/// The prepare/commit race against a replicated delete: targets resolve
/// under read guards that drop before the owner shards apply, so a
/// broadcast `DELETE FROM` can remove target rows in between. Staging
/// must re-validate: vanished targets are skipped (the delete-first
/// serial schedule), and an annotation whose every target vanished
/// fails cleanly instead of attaching to deleted rows.
#[test]
fn apply_after_broadcast_delete_skips_vanished_targets() {
    let add = "ADD ANNOTATION 'eating stonewort near shore' AUTHOR 'ada' ON t WHERE p >= 1";
    let stmts = vec![SqlStatement {
        stmt: parse_one(add).unwrap(),
        sql: add.to_string(),
    }];

    // Every target row vanishes between prepare and apply.
    let sharded = fresh_sharded(4);
    let prepared = sharded.prepare_sql_annotations(&stmts);
    assert!(prepared[0].is_ok());
    sharded.execute_sql("DELETE FROM t").unwrap();
    let results = sharded.apply_prepared(prepared);
    let err = results.into_iter().next().unwrap().unwrap_err();
    assert!(
        err.to_string().contains("deleted before it committed"),
        "{err}"
    );
    assert_eq!(sharded.annotation_count(), 0);

    // Partial vanish: the surviving row still gets the annotation, and
    // only that row.
    let sharded = fresh_sharded(4);
    let prepared = sharded.prepare_sql_annotations(&stmts);
    sharded.execute_sql("DELETE FROM t WHERE p > 1").unwrap();
    let results = sharded.apply_prepared(prepared);
    match results.into_iter().next().unwrap() {
        Ok(ExecOutcome::Annotated { targets, .. }) => assert_eq!(targets, 1),
        other => panic!("unexpected result {other:?}"),
    }
    assert_eq!(sharded.annotation_count(), 1);
}

/// The partial-commit repair hook: a compensating delete on the owners
/// that committed converges a partially failed multi-owner write back
/// to "not written" on every shard.
#[test]
fn compensate_partial_removes_committed_replicas() {
    let sharded = fresh_sharded(4);
    sharded
        .execute_sql("ADD ANNOTATION 'eating stonewort near shore' AUTHOR 'ada' ON t WHERE p >= 1")
        .unwrap();
    assert_eq!(sharded.annotation_count(), 1);
    let id = AnnotationId::new(1);
    let owners: Vec<usize> = (0..sharded.shard_count())
        .filter(|&k| sharded.shard(k).read().store().get(id).is_ok())
        .collect();
    assert!(!owners.is_empty());
    sharded.compensate_partial(id, &owners);
    assert_eq!(sharded.annotation_count(), 0);
    for k in 0..sharded.shard_count() {
        assert!(sharded.shard(k).read().store().get(id).is_err());
    }
}
