//! Annotation lifecycle (`RETRACT` / `CORRECT` / `FLAG`) end to end.
//!
//! The contracts under test:
//!
//! * **maintenance equivalence** — decrementally removing a retracted
//!   or corrected annotation's summary contribution (Incremental mode)
//!   lands on byte-identical *classifier* objects to rebuilding the row
//!   from scratch (Rebuild mode), at one shard and at four;
//! * **durability** — tombstones, flags, and successor links replay
//!   from the WAL after a crash, byte-identical to the pre-crash state;
//! * **replication** — a replica applying the primary's `Script` frames
//!   reproduces the tombstone state and hides retracted annotations
//!   from live reads;
//! * **time travel** — `SELECT ... AS OF <tick>` reproduces the summary
//!   objects a query saw before a retraction or correction;
//! * **recovery sweep** — a crash that lands a lifecycle statement (or
//!   the original commit) on only part of an annotation's owner-shard
//!   set converges at recovery (DESIGN.md §12 / §15).

use insightnotes::common::{AnnotationId, RowId};
use insightnotes::engine::persist::snapshot;
use insightnotes::engine::wal::{SyncPolicy, WalRecord};
use insightnotes::engine::{Database, DbConfig, LifecycleKind, ShardedDatabase};
use insightnotes::summaries::MaintenanceMode;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("insightnotes-lc-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wal_config(dir: &Path, sync: SyncPolicy) -> DbConfig {
    DbConfig {
        wal_dir: Some(dir.to_path_buf()),
        wal_sync: sync,
        ..DbConfig::default()
    }
}

const NUM_ROWS: u64 = 6;

const SCHEMA: &str = "CREATE TABLE t (p INT, q TEXT);
     INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three'),
                          (4, 'four'), (5, 'five'), (6, 'six');
     CREATE SUMMARY INSTANCE C TYPE CLASSIFIER
       LABELS ('Behavior', 'Disease', 'Other')
       TRAIN ('Behavior': 'eating stonewort diving foraging',
              'Disease': 'lesions parasites infection',
              'Other': 'reference sighting note');
     LINK SUMMARY C TO t;";

/// A fixed curation timeline: three annotations, a flag, a correction
/// (successor id 4), and a retraction, leaving ids {3, 4} live and
/// ids {1, 2} tombstoned.
const LIFECYCLE_STATEMENTS: &[&str] = &[
    "ADD ANNOTATION 'eating stonewort near shore' AUTHOR 'ada' ON t WHERE p = 1",
    "ADD ANNOTATION 'lesions parasites infection' AUTHOR 'brahe' ON t WHERE p = 2",
    "ADD ANNOTATION 'diving and foraging' AUTHOR 'curie' ON t WHERE p = 3",
    "FLAG ANNOTATION 1 'needs review'",
    "CORRECT ANNOTATION 2 'parasites confirmed on recheck' AUTHOR 'brahe'",
    "RETRACT ANNOTATION 1",
];

/// Zero-stamped state bytes (catalog + store + registry): equal iff the
/// two databases are logically identical, tombstones included.
fn state_bytes(db: &Database) -> Vec<u8> {
    snapshot(db.catalog(), db.store(), db.registry())
}

// -- maintenance equivalence (the decremental-retract oracle) -------------

const TEXT_POOL: &[&str] = &[
    "eating stonewort near shore",
    "diving and foraging at dawn",
    "lesions parasites infection observed",
    "parasites on the wing tips",
    "see reference sighting note",
    "note sighting for reference",
];

/// Interprets abstract events into a lifecycle SQL script, simulating
/// the engine's sequential id allocation (the k-th annotation the
/// engine creates — by ADD or as a CORRECT successor — gets id k, at
/// any shard count, because ids are allocated in statement order).
fn lifecycle_script(events: &[(u8, u64, usize, usize)]) -> Vec<String> {
    let mut next_id = 0u64;
    let mut live: Vec<u64> = Vec::new();
    let mut out = Vec::new();
    for &(action, row, text, pick) in events {
        if live.is_empty() || action < 4 {
            next_id += 1;
            live.push(next_id);
            out.push(format!(
                "ADD ANNOTATION '{}' AUTHOR 'ada' ON t WHERE p = {row}",
                TEXT_POOL[text]
            ));
        } else if action < 5 {
            let target = live[pick % live.len()];
            out.push(format!("FLAG ANNOTATION {target} 'disputed'"));
        } else if action < 7 {
            let target = live.swap_remove(pick % live.len());
            next_id += 1;
            live.push(next_id);
            out.push(format!(
                "CORRECT ANNOTATION {target} '{}' AUTHOR 'brahe'",
                TEXT_POOL[(text + 1) % TEXT_POOL.len()]
            ));
        } else {
            let target = live.swap_remove(pick % live.len());
            out.push(format!("RETRACT ANNOTATION {target}"));
        }
    }
    out
}

fn event_strategy() -> impl Strategy<Value = Vec<(u8, u64, usize, usize)>> {
    prop::collection::vec(
        (0u8..8, 1u64..=NUM_ROWS, 0usize..TEXT_POOL.len(), 0usize..64),
        1..30,
    )
}

/// The paper's equivalence class: classifier objects only. Cluster and
/// snippet summaries are order-sensitive (removal then re-add can elect
/// a different representative), so Incremental == Rebuild is asserted
/// for classifiers — the same oracle `DELETE ANNOTATION` uses.
fn classifier_digest(db: &Database) -> Vec<String> {
    let t = db.catalog().table_id("t").unwrap();
    let c = db.registry().instance_id("C").unwrap();
    (1..=NUM_ROWS)
        .map(|r| format!("r{r} {:?}", db.registry().object(t, RowId::new(r), c)))
        .collect()
}

fn classifier_digest_sharded(db: &ShardedDatabase) -> Vec<String> {
    let t = db.shard(0).read().catalog().table_id("t").unwrap();
    (1..=NUM_ROWS)
        .map(|r| {
            let row = RowId::new(r);
            let guard = db.shard(db.owner(t, row)).read();
            let c = guard.registry().instance_id("C").unwrap();
            format!("r{r} {:?}", guard.registry().object(t, row, c))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decremental retract/correct maintenance is byte-identical to
    /// rebuild-from-scratch on classifier objects, and the sharded
    /// router reproduces the same state at one and four shards.
    #[test]
    fn retract_and_correct_incremental_equals_rebuild(events in event_strategy()) {
        let script = lifecycle_script(&events);
        let mut inc = Database::with_config(DbConfig {
            maintenance: MaintenanceMode::Incremental,
            ..DbConfig::default()
        })
        .unwrap();
        let mut reb = Database::with_config(DbConfig {
            maintenance: MaintenanceMode::Rebuild,
            ..DbConfig::default()
        })
        .unwrap();
        inc.execute_sql(SCHEMA).unwrap();
        reb.execute_sql(SCHEMA).unwrap();
        for sql in &script {
            inc.execute_sql(sql).unwrap();
            reb.execute_sql(sql).unwrap();
        }
        let expected = classifier_digest(&inc);
        prop_assert_eq!(&classifier_digest(&reb), &expected, "Incremental vs Rebuild");
        prop_assert_eq!(
            inc.store().stats().retired,
            reb.store().stats().retired,
            "tombstone counts diverged across maintenance modes"
        );

        for shards in [1usize, 4] {
            let sharded = ShardedDatabase::create(DbConfig::default(), shards).unwrap();
            sharded.execute_sql(SCHEMA).unwrap();
            for sql in &script {
                sharded.execute_sql(sql).unwrap();
            }
            prop_assert_eq!(
                &classifier_digest_sharded(&sharded),
                &expected,
                "sharded ({}) vs serial", shards
            );
        }
    }
}

// -- WAL crash-replay of tombstones ---------------------------------------

#[test]
fn recovery_replays_lifecycle_tombstones_byte_identically() {
    let dir = scratch("replay");
    let pre_crash;
    {
        let mut db = Database::with_config(wal_config(&dir, SyncPolicy::Batch)).unwrap();
        db.execute_sql(SCHEMA).unwrap();
        for sql in LIFECYCLE_STATEMENTS {
            db.execute_sql(sql).unwrap();
        }
        db.wal_sync().unwrap();
        pre_crash = (state_bytes(&db), db.clock_now());
        // Dropped without save: the WAL is the only persistent state.
    }
    let (db, report) = Database::recover(None, wal_config(&dir, SyncPolicy::Batch)).unwrap();
    assert_eq!(report.records_replayed, 1 + LIFECYCLE_STATEMENTS.len());
    assert_eq!(state_bytes(&db), pre_crash.0, "replay diverged");
    assert_eq!(db.clock_now(), pre_crash.1, "logical clock diverged");

    let store = db.store();
    assert_eq!(store.stats().count, 2, "ids 3 and 4 live");
    assert_eq!(store.stats().retired, 2, "ids 1 and 2 tombstoned");
    let id1 = AnnotationId::new(1);
    assert!(!store.is_live(id1));
    assert!(
        store.get(id1).is_err(),
        "live reads must hide the tombstone"
    );
    assert!(store.get_any(id1).is_ok(), "the version itself is retained");
    let kinds: Vec<LifecycleKind> = store.history(id1).unwrap().iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds,
        [
            LifecycleKind::Created,
            LifecycleKind::Flagged,
            LifecycleKind::Retracted
        ]
    );
    let events = store.history(AnnotationId::new(2)).unwrap();
    let corrected = events.last().unwrap();
    assert_eq!(corrected.kind, LifecycleKind::Corrected);
    assert_eq!(corrected.successor, Some(AnnotationId::new(4)));
    assert_eq!(
        store.get(AnnotationId::new(4)).unwrap().body.text,
        "parasites confirmed on recheck"
    );
}

// -- replica apply ---------------------------------------------------------

/// The replication path in miniature: a WAL-less replica applying the
/// primary's `Script` frames lands on byte-identical state, tombstones
/// included, and hides retracted annotations from live reads.
#[test]
fn replica_apply_reproduces_tombstones_and_hides_retracted() {
    let mut primary = Database::new();
    let mut replica = Database::new();
    primary.execute_sql(SCHEMA).unwrap();
    replica
        .apply_wal_record(&WalRecord::Script { sql: SCHEMA.into() })
        .unwrap();
    for sql in LIFECYCLE_STATEMENTS {
        primary.execute_sql(sql).unwrap();
        replica
            .apply_wal_record(&WalRecord::Script {
                sql: (*sql).to_string(),
            })
            .unwrap();
    }
    assert_eq!(
        state_bytes(&replica),
        state_bytes(&primary),
        "replica diverged from primary"
    );
    assert!(replica.store().get(AnnotationId::new(1)).is_err());
    assert!(replica.store().get_any(AnnotationId::new(1)).is_ok());
    assert_eq!(
        replica.store().history(AnnotationId::new(2)).unwrap().len(),
        primary.store().history(AnnotationId::new(2)).unwrap().len()
    );
    // Live summary state agrees too — the retracted annotation's
    // contribution is gone on both sides.
    assert_eq!(classifier_digest(&replica), classifier_digest(&primary));
}

// -- AS OF time travel -----------------------------------------------------

/// `AS OF` reproduces the exact summary objects a query returned before
/// a retraction and a correction rewrote the live view.
#[test]
fn as_of_reproduces_pre_retract_summaries() {
    let mut db = Database::new();
    db.execute_sql(SCHEMA).unwrap();
    db.execute_sql(LIFECYCLE_STATEMENTS[0]).unwrap();
    db.execute_sql(LIFECYCLE_STATEMENTS[1]).unwrap();
    let tick = db.clock_now();
    // Result rows embed their summary objects by value, so `before` is
    // a true snapshot even after the registry mutates underneath.
    let summaries = |r: &insightnotes::QueryResult| -> Vec<String> {
        r.rows
            .iter()
            .map(|row| format!("{:?}", row.summaries))
            .collect()
    };
    let before = db.query("SELECT p FROM t ORDER BY p").unwrap();

    db.execute_sql("RETRACT ANNOTATION 1").unwrap();
    db.execute_sql("CORRECT ANNOTATION 2 'see reference sighting note' AUTHOR 'curie'")
        .unwrap();
    let now = db.query("SELECT p FROM t ORDER BY p").unwrap();
    assert_ne!(
        summaries(&now),
        summaries(&before),
        "lifecycle ops must change the live view"
    );

    let past = db
        .query(&format!("SELECT p FROM t ORDER BY p AS OF {tick}"))
        .unwrap();
    assert_eq!(
        summaries(&past),
        summaries(&before),
        "AS OF diverged from the pre-retract snapshot"
    );
    assert_eq!(past.qid.raw(), 0, "historical views are not zoomable");

    // And the open end of the timeline is the live view.
    let current = db
        .query(&format!(
            "SELECT p FROM t ORDER BY p AS OF {}",
            db.clock_now()
        ))
        .unwrap();
    assert_eq!(summaries(&current), summaries(&now));
}

// -- recovery-time membership sweep (DESIGN.md §12 / §15) ------------------

/// A crash can land a lifecycle statement — or the original commit — on
/// only part of a multi-owner annotation's shard set. The recovery
/// sweep converges both shapes: a surviving *tombstone* on any owner
/// completes the retraction everywhere; a missing owner with *no*
/// record rolls the partial commit back to "not written".
#[test]
fn recovery_sweep_converges_partial_lifecycle_and_partial_commits() {
    const SHARDS: usize = 4;
    let dir = scratch("sweep");
    {
        let db = ShardedDatabase::create(wal_config(&dir, SyncPolicy::Batch), SHARDS).unwrap();
        db.execute_sql(SCHEMA).unwrap();
        // Two whole-table annotations: their six target rows hash across
        // several owner shards.
        db.execute_sql("ADD ANNOTATION 'eating stonewort near shore' AUTHOR 'ada' ON t")
            .unwrap();
        db.execute_sql("ADD ANNOTATION 'lesions parasites infection' AUTHOR 'brahe' ON t")
            .unwrap();
        let t = db.shard(0).read().catalog().table_id("t").unwrap();
        let owners: std::collections::BTreeSet<usize> =
            (1..=NUM_ROWS).map(|r| db.owner(t, RowId::new(r))).collect();
        assert!(owners.len() >= 2, "need a multi-owner annotation");
        let victim = *owners.iter().next().unwrap();
        // Crash mid-RETRACT of id 1: only one owner got the tombstone.
        {
            let mut guard = db.shard(victim).write();
            guard.retract_annotation(AnnotationId::new(1)).unwrap();
            guard.wal_sync().unwrap();
        }
        // Crash mid-commit of id 2: one owner never durably stored it
        // (simulated by locally deleting the shard's committed copy).
        {
            let mut guard = db.shard(victim).write();
            guard.delete_annotation(AnnotationId::new(2)).unwrap();
            guard.wal_sync().unwrap();
        }
        db.wal_sync_all().unwrap();
    }

    let (db, report) =
        ShardedDatabase::recover(None, wal_config(&dir, SyncPolicy::Batch), SHARDS).unwrap();
    assert_eq!(report.reconciled, 2, "both divergent annotations repaired");

    let id1 = AnnotationId::new(1);
    let id2 = AnnotationId::new(2);
    let mut tombstones = 0;
    for k in 0..SHARDS {
        let guard = db.shard(k).read();
        // Lifecycle progressed: no shard serves id 1 live, and every
        // shard that holds it holds a tombstone with its timeline.
        assert!(
            guard.store().get(id1).is_err(),
            "shard {k} serves id 1 live"
        );
        if guard.store().get_any(id1).is_ok() {
            tombstones += 1;
            let events = guard.store().history(id1).unwrap();
            assert_eq!(events.last().unwrap().kind, LifecycleKind::Retracted);
        }
        // Commit never finished: id 2 converges to "not written".
        assert!(
            guard.store().get_any(id2).is_err(),
            "shard {k} resurrected the partial commit"
        );
    }
    assert!(tombstones >= 2, "retraction must complete on every owner");

    // The sweep's repairs are themselves WAL-logged: a second recovery
    // replays to the same converged state and repairs nothing.
    drop(db);
    let (_, report2) =
        ShardedDatabase::recover(None, wal_config(&dir, SyncPolicy::Batch), SHARDS).unwrap();
    assert_eq!(report2.reconciled, 0, "converged state re-repaired");
}
