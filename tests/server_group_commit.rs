//! The group-commit write path under real concurrency: wire writers
//! mixing single `Annotate` frames with `AnnotateBatch` frames, running
//! against background readers, must leave exactly the state a serial
//! replay of the same statements leaves; and a graceful shutdown fired
//! while the commit queue is busy must lose no reply — every annotation
//! the server acknowledged is in the final state, and every annotation
//! in the final state was acknowledged.
//!
//! State comparison is order-insensitive (see
//! `tests/server_concurrency.rs` for the rationale): annotation ids are
//! assigned in arrival order, which varies run to run, so the check
//! uses commutative aggregates — classifier objects, cluster member
//! totals, and the per-row multiset of raw annotations.

use insightnotes_client::Client;
use insightnotes_engine::Database;
use insightnotes_server::{Server, ServerConfig, ServerHandle};
use insightnotes_workload::{ingest_script, IngestConfig, SessionScript};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Order-insensitive per-row state, keyed by the bird's `id` column.
#[derive(Debug, PartialEq)]
struct RowState {
    classifier: Option<String>,
    cluster_members: Option<usize>,
    annotations: Vec<(String, String)>,
}

fn fingerprint(db: &Database) -> BTreeMap<i64, RowState> {
    let result = db
        .query_uncached("SELECT id FROM birds")
        .expect("full scan");
    let table = db.catalog().table_id("birds").expect("birds table");
    let mut out = BTreeMap::new();
    for (i, row) in result.rows.iter().enumerate() {
        let id = match row.row.values().first() {
            Some(insightnotes_storage::Value::Int(id)) => *id,
            other => panic!("non-int id column: {other:?}"),
        };
        let mut classifier = None;
        let mut cluster_members = None;
        for (inst, obj) in &row.summaries {
            match db.registry().instance(*inst).expect("instance").name() {
                "ClassBird1" => classifier = Some(obj.to_string()),
                "DupBird1" => {
                    cluster_members = Some(
                        obj.as_cluster()
                            .expect("cluster object")
                            .groups()
                            .iter()
                            .map(|g| g.size)
                            .sum(),
                    );
                }
                other => panic!("unexpected instance {other}"),
            }
        }
        // Base-table scans preserve insert order: position i = RowId i.
        let mut annotations: Vec<(String, String)> = db
            .store()
            .on_row(table, insightnotes_common::RowId(i as u64))
            .iter()
            .map(|(aid, _)| {
                let a = db.store().get(*aid).expect("annotation");
                (a.body.text.clone(), a.body.author.clone())
            })
            .collect();
        annotations.sort();
        out.insert(
            id,
            RowState {
                classifier,
                cluster_members,
                annotations,
            },
        );
    }
    out
}

fn serial_replay(script: &SessionScript) -> Database {
    let mut db = Database::new();
    for stmt in script.serial_order() {
        db.execute_sql(&stmt)
            .unwrap_or_else(|e| panic!("serial replay failed: {e}\n{stmt}"));
    }
    db
}

fn boot() -> (Server, ServerHandle) {
    let server =
        Server::bind("127.0.0.1:0", Database::new(), ServerConfig::default()).expect("bind");
    let handle = server.handle();
    (server, handle)
}

/// Drives one writer stream: batch size 1 sends one `Annotate` frame per
/// statement, larger sizes send `AnnotateBatch` chunks. Every item must
/// be acknowledged.
fn drive(client: &mut Client, stream: &[String], batch: usize) {
    if batch <= 1 {
        for sql in stream {
            client.annotate(sql).expect("annotate");
        }
    } else {
        for chunk in stream.chunks(batch) {
            for item in client.annotate_batch(chunk.to_vec()).expect("batch frame") {
                item.expect("batch item");
            }
        }
    }
}

const WRITERS: usize = 8;

#[test]
fn concurrent_batch_writers_match_serial_replay() {
    let script = ingest_script(&IngestConfig {
        seed: 0xBA7C4,
        writers: WRITERS,
        annotations_per_writer: 24,
        num_birds: 60,
        ..IngestConfig::default()
    });
    let reference = fingerprint(&serial_replay(&script));

    let (server, handle) = boot();
    let addr = server.local_addr().expect("addr");
    let db_arc = server.database();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let mut setup_client = Client::connect(addr).expect("connect for setup");
    for stmt in &script.setup {
        setup_client.execute(stmt).expect("setup statement");
    }

    // Writers mix frame granularities — single Annotate frames alongside
    // AnnotateBatch frames of several sizes — so the committer coalesces
    // jobs of uneven shape into shared groups. Readers scan throughout,
    // holding the shared lock the commit queue must wait out.
    let batch_sizes = [1usize, 1, 4, 4, 8, 8, 16, 24];
    let stop_readers = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let stop = Arc::clone(&stop_readers);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("reader connect");
                while !stop.load(Ordering::Relaxed) {
                    client
                        .query("SELECT name, wingspan FROM birds")
                        .expect("reader query");
                }
            });
        }
        let writers: Vec<_> = script
            .clients
            .iter()
            .zip(batch_sizes)
            .map(|(stream, batch)| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("writer connect");
                    drive(&mut client, stream, batch);
                })
            })
            .collect();
        for w in writers {
            w.join().expect("writer");
        }
        stop_readers.store(true, Ordering::Relaxed);
    });

    {
        let db = db_arc.read();
        let concurrent = fingerprint(&db);
        assert_eq!(concurrent.len(), reference.len(), "row count");
        for (id, want) in &reference {
            assert_eq!(concurrent.get(id), Some(want), "row {id} diverged");
        }
    }

    handle.shutdown();
    server_thread.join().expect("join server");
    // Setup plus at least one frame per writer chunk (readers add more).
    let min_frames: usize = script
        .clients
        .iter()
        .zip(batch_sizes)
        .map(|(stream, batch)| stream.len().div_ceil(batch.max(1)))
        .sum();
    assert!(
        handle.requests_served() as usize >= script.setup.len() + min_frames,
        "served {} requests",
        handle.requests_served()
    );
}

#[test]
fn graceful_shutdown_mid_queue_loses_no_reply() {
    // Far more work than will ever commit: shutdown fires early, so most
    // of these streams die in flight — which is the point.
    let script = ingest_script(&IngestConfig {
        seed: 0x5D0FF,
        writers: 6,
        annotations_per_writer: 1600,
        num_birds: 40,
        ..IngestConfig::default()
    });

    let (server, handle) = boot();
    let addr = server.local_addr().expect("addr");
    let db_arc = server.database();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let mut setup_client = Client::connect(addr).expect("connect for setup");
    for stmt in &script.setup {
        setup_client.execute(stmt).expect("setup statement");
    }
    let setup_frames = handle.requests_served();

    let acked: u64 = std::thread::scope(|scope| {
        let writers: Vec<_> = script
            .clients
            .iter()
            .map(|stream| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("writer connect");
                    let mut acked = 0u64;
                    'frames: for chunk in stream.chunks(8) {
                        match client.annotate_batch(chunk.to_vec()) {
                            Ok(items) => {
                                for item in items {
                                    // A structured per-item error would
                                    // mean a statement failed, not that
                                    // the server is going down.
                                    item.expect("batch item");
                                    acked += 1;
                                }
                            }
                            // Transport error or server-level error
                            // frame: shutdown reached this connection.
                            Err(_) => break 'frames,
                        }
                    }
                    acked
                })
            })
            .collect();

        // Let a handful of groups commit, then pull the plug while every
        // writer still has hundreds of frames queued behind it.
        while handle.requests_served() < setup_frames + 12 {
            std::thread::yield_now();
        }
        handle.shutdown();
        writers.into_iter().map(|w| w.join().expect("writer")).sum()
    });

    server_thread.join().expect("join server");

    let total_sent = 6 * 1600;
    assert!(acked > 0, "no annotations were acknowledged");
    assert!(
        acked < total_sent,
        "all {total_sent} annotations committed before shutdown; the test \
         did not exercise a mid-queue shutdown"
    );
    // The lossless-shutdown contract, both directions: an ack implies
    // the annotation is in the final state (committed work is never
    // rolled back), and a committed annotation implies its ack reached
    // the writer (the read-side shutdown lets in-flight replies flush).
    let committed = db_arc.read().store().stats().count as u64;
    assert_eq!(
        committed, acked,
        "committed annotations and acknowledged annotations diverged"
    );
}
