//! Concurrent sessions against one `insightd`: N client threads mix
//! Read-class SELECTs with Write-class `ADD ANNOTATION`s over the wire,
//! and the final database state must match a serial replay of the same
//! statements on an embedded [`Database`].
//!
//! What "match" means here is the paper's summary-object semantics, not
//! byte identity: annotation ids are assigned in arrival order, which
//! differs run to run under real concurrency, so the comparison uses
//! order-insensitive state —
//!
//! - the data rows themselves (writes never touch them),
//! - per-row classifier summary objects (label counts are a commutative
//!   aggregate, so every serializable order yields the same object),
//! - per-row cluster membership totals (the partition into groups can
//!   depend on arrival order, the member count cannot),
//! - the per-row multiset of (text, author) raw annotations.
//!
//! The run finishes with a wire-level shutdown and asserts the final
//! snapshot reopens with the same state (ISSUE acceptance: clean
//! shutdown writes a snapshot that a fresh `Database::open` reads).

use insightnotes_client::Client;
use insightnotes_common::wire::Response;
use insightnotes_engine::Database;
use insightnotes_server::{Server, ServerConfig};
use insightnotes_workload::{session_script, SessionConfig, SessionScript};
use std::collections::BTreeMap;

const CLIENTS: usize = 8;

fn script() -> SessionScript {
    session_script(&SessionConfig {
        seed: 0xC0C0,
        clients: CLIENTS,
        statements_per_client: 24,
        num_birds: 120,
        write_ratio: 0.4,
    })
}

/// Order-insensitive database state: one entry per bird row id.
#[derive(Debug, PartialEq)]
struct RowState {
    values: String,
    classifier: Option<String>,
    cluster_members: Option<usize>,
    annotations: Vec<(String, String)>,
}

fn fingerprint(db: &Database) -> BTreeMap<i64, RowState> {
    let result = db
        .query_uncached("SELECT id, name, sci_name, weight, wingspan, region FROM birds")
        .expect("full scan");
    let table = db.catalog().table_id("birds").expect("birds table");
    let mut out = BTreeMap::new();
    for (i, row) in result.rows.iter().enumerate() {
        let id = match row.row.values().first() {
            Some(insightnotes_storage::Value::Int(id)) => *id,
            other => panic!("non-int id column: {other:?}"),
        };
        let mut classifier = None;
        let mut cluster_members = None;
        for (inst, obj) in &row.summaries {
            let name = db
                .registry()
                .instance(*inst)
                .expect("instance")
                .name()
                .to_string();
            match name.as_str() {
                "ClassBird1" => classifier = Some(obj.to_string()),
                "DupBird1" => {
                    cluster_members = Some(
                        obj.as_cluster()
                            .expect("cluster object")
                            .groups()
                            .iter()
                            .map(|g| g.size)
                            .sum(),
                    );
                }
                other => panic!("unexpected instance {other}"),
            }
        }
        // Base-table scans preserve insert order, so result position i is
        // the storage RowId.
        let mut annotations: Vec<(String, String)> = db
            .store()
            .on_row(table, insightnotes_common::RowId(i as u64))
            .iter()
            .map(|(aid, _)| {
                let a = db.store().get(*aid).expect("annotation");
                (a.body.text.clone(), a.body.author.clone())
            })
            .collect();
        annotations.sort();
        out.insert(
            id,
            RowState {
                values: format!("{:?}", row.row.values()),
                classifier,
                cluster_members,
                annotations,
            },
        );
    }
    out
}

fn serial_replay(script: &SessionScript) -> Database {
    let mut db = Database::new();
    for stmt in script.serial_order() {
        db.execute_sql(&stmt)
            .unwrap_or_else(|e| panic!("serial replay failed: {e}\n{stmt}"));
    }
    db
}

#[test]
fn concurrent_sessions_match_serial_replay() {
    let script = script();
    let reference = fingerprint(&serial_replay(&script));

    let snapshot = std::env::temp_dir().join(format!(
        "insightnotes-server-concurrency-{}.indb",
        std::process::id()
    ));
    std::fs::remove_file(&snapshot).ok();

    let config = ServerConfig {
        snapshot_path: Some(snapshot.clone()),
        ..ServerConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", Database::new(), config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let db_arc = server.database();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // Serial setup phase over one connection.
    let mut setup_client = Client::connect(addr).expect("connect for setup");
    for stmt in &script.setup {
        setup_client.execute(stmt).expect("setup statement");
    }

    // N concurrent sessions, each its own connection, mixing reads and
    // annotation writes.
    std::thread::scope(|scope| {
        for (i, stream) in script.clients.iter().enumerate() {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for sql in stream {
                    match client.send_sql(sql).expect("transport") {
                        Response::Error(e) => {
                            panic!("client {i}: server error for {sql}: {}", e.into_error())
                        }
                        Response::Rows(_) | Response::Ack { .. } | Response::Zoomed(_) => {}
                        other => panic!("client {i}: unexpected frame {other:?}"),
                    }
                }
            });
        }
    });

    // Concurrent state must match the serial replay before shutdown.
    {
        let db = db_arc.read();
        let concurrent = fingerprint(&db);
        assert_eq!(concurrent.len(), reference.len(), "row count");
        for (id, want) in &reference {
            assert_eq!(concurrent.get(id), Some(want), "row {id} diverged");
        }
    }

    // Wire-level shutdown: the server snapshots and exits.
    setup_client.shutdown_server().expect("shutdown frame");
    let served = server_thread.join().expect("join server");
    assert!(
        served as usize >= script.setup.len() + CLIENTS * 24,
        "served {served} requests"
    );

    // The final snapshot reopens with the same order-insensitive state.
    let reopened = Database::open(&snapshot).expect("reopen snapshot");
    assert_eq!(fingerprint(&reopened), reference, "snapshot state");
    std::fs::remove_file(&snapshot).ok();
}
