//! End-to-end SQL lifecycle tests over the `Database` facade.

use insightnotes::engine::ExecOutcome;
use insightnotes::storage::Value;
use insightnotes::Database;

fn birds_db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE birds (id INT, name TEXT, weight FLOAT, region TEXT);
         INSERT INTO birds VALUES
           (1, 'Swan Goose', 3.2, 'northeast'),
           (2, 'Mallard', 1.1, 'midwest'),
           (3, 'Mute Swan', 11.0, 'northeast'),
           (4, 'Osprey', 1.6, 'pacific');",
    )
    .unwrap();
    db
}

#[test]
fn ddl_insert_select_lifecycle() {
    let db = birds_db();
    let result = db
        .query("SELECT name FROM birds WHERE weight > 2 ORDER BY name")
        .unwrap();
    let names: Vec<String> = result.rows.iter().map(|r| r.row[0].to_string()).collect();
    assert_eq!(names, vec!["Mute Swan", "Swan Goose"]);
}

#[test]
fn group_by_and_aggregates() {
    let db = birds_db();
    let result = db
        .query(
            "SELECT region, COUNT(*) AS n, AVG(weight) AS w FROM birds \
             GROUP BY region ORDER BY n DESC, region",
        )
        .unwrap();
    assert_eq!(result.rows.len(), 3);
    assert_eq!(result.rows[0].row[0], Value::Text("northeast".into()));
    assert_eq!(result.rows[0].row[1], Value::Int(2));
    assert_eq!(result.rows[0].row[2], Value::Float(7.1));
    // Output schema names follow aliases.
    assert_eq!(result.schema.columns()[1].name, "n");
}

#[test]
fn distinct_order_limit() {
    let db = birds_db();
    let result = db
        .query("SELECT DISTINCT region FROM birds ORDER BY region LIMIT 2")
        .unwrap();
    let regions: Vec<String> = result.rows.iter().map(|r| r.row[0].to_string()).collect();
    assert_eq!(regions, vec!["midwest", "northeast"]);
}

#[test]
fn self_join_with_aliases() {
    let db = birds_db();
    let result = db
        .query(
            "SELECT a.name, b.name FROM birds a, birds b \
             WHERE a.region = b.region AND a.id < b.id",
        )
        .unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0].row[0], Value::Text("Swan Goose".into()));
    assert_eq!(result.rows[0].row[1], Value::Text("Mute Swan".into()));
}

#[test]
fn explicit_join_syntax_matches_comma_syntax() {
    let mut db = birds_db();
    db.execute_sql(
        "CREATE TABLE sightings (bird INT, year INT);
         INSERT INTO sightings VALUES (1, 2001), (1, 2003), (3, 2002);",
    )
    .unwrap();
    let a = db
        .query(
            "SELECT b.name, s.year FROM birds b JOIN sightings s ON b.id = s.bird ORDER BY s.year",
        )
        .unwrap();
    let b = db
        .query(
            "SELECT b.name, s.year FROM birds b, sightings s WHERE b.id = s.bird ORDER BY s.year",
        )
        .unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(a.rows.len(), 3);
}

#[test]
fn summary_instances_via_sql_and_summary_predicates() {
    let mut db = birds_db();
    db.execute_sql(
        "CREATE SUMMARY INSTANCE Health TYPE CLASSIFIER
           LABELS ('refute', 'approve')
           TRAIN ('refute': 'wrong invalid needs verification',
                  'approve': 'confirmed verified correct experiment');
         LINK SUMMARY Health TO birds;
         ADD ANNOTATION 'value is wrong' ON birds WHERE id = 1;
         ADD ANNOTATION 'needs verification badly wrong' ON birds WHERE id = 1;
         ADD ANNOTATION 'confirmed by experiment' ON birds WHERE id = 2;",
    )
    .unwrap();

    // Summary-based predicate: only the refuted tuple qualifies.
    let result = db
        .query("SELECT name FROM birds WHERE SUMMARY_COUNT(Health, 'refute') > 1")
        .unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0].row[0], Value::Text("Swan Goose".into()));

    // Summary-based ordering: most-refuted first.
    let ordered = db
        .query(
            "SELECT name FROM birds \
             ORDER BY SUMMARY_COUNT(Health, 'refute') DESC, name LIMIT 2",
        )
        .unwrap();
    assert_eq!(ordered.rows[0].row[0], Value::Text("Swan Goose".into()));

    // SUMMARY_COUNT in the select list.
    let counted = db
        .query("SELECT name, SUMMARY_COUNT(Health, 'refute') AS refutes FROM birds WHERE id = 1")
        .unwrap();
    assert_eq!(counted.rows[0].row[1], Value::Int(2));
}

#[test]
fn add_annotation_targets_matching_rows_and_columns() {
    let mut db = birds_db();
    db.execute_sql(
        "CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('x')
           TRAIN ('x': 'anything');
         LINK SUMMARY C TO birds;",
    )
    .unwrap();
    let outcomes = db
        .execute_sql("ADD ANNOTATION 'regional note' ON birds WHERE region = 'northeast'")
        .unwrap();
    let ExecOutcome::Annotated { targets, .. } = &outcomes[0] else {
        panic!("expected annotation outcome");
    };
    assert_eq!(*targets, 2, "two northeast birds");

    // Column-scoped annotation disappears when the column is projected out.
    db.execute_sql("ADD ANNOTATION 'weight seems wrong' ON birds COLUMNS (weight) WHERE id = 2")
        .unwrap();
    let inst = db.registry().instance_id("C").unwrap();
    let with_weight = db
        .query("SELECT name, weight FROM birds WHERE id = 2")
        .unwrap();
    assert_eq!(
        with_weight.rows[0]
            .summary(inst)
            .unwrap()
            .annotation_count(),
        1
    );
    let without_weight = db.query("SELECT name FROM birds WHERE id = 2").unwrap();
    assert!(without_weight.rows[0].summary(inst).is_none());
}

#[test]
fn annotation_matching_no_rows_is_an_error() {
    let mut db = birds_db();
    let err = db
        .execute_sql("ADD ANNOTATION 'x' ON birds WHERE id = 999")
        .unwrap_err();
    assert_eq!(err.class(), "annotation");
}

#[test]
fn link_catches_up_on_existing_annotations() {
    let mut db = birds_db();
    db.execute_sql(
        "CREATE SUMMARY INSTANCE Early TYPE CLASSIFIER LABELS ('a', 'b')
           TRAIN ('a': 'alpha words here', 'b': 'beta words there');",
    )
    .unwrap();
    // Annotate BEFORE linking: nothing is summarized yet.
    db.execute_sql("ADD ANNOTATION 'alpha words' ON birds WHERE id = 1")
        .unwrap();
    let inst = db.registry().instance_id("Early").unwrap();
    let t = db.catalog().table_id("birds").unwrap();
    assert!(db
        .registry()
        .object(t, insightnotes::common::RowId::new(1), inst)
        .is_none());

    // Linking rebuilds the annotated rows.
    let outcomes = db.execute_sql("LINK SUMMARY Early TO birds").unwrap();
    let ExecOutcome::Linked { rows_rebuilt, .. } = &outcomes[0] else {
        panic!()
    };
    assert_eq!(*rows_rebuilt, 1);
    let obj = db
        .registry()
        .object(t, insightnotes::common::RowId::new(1), inst)
        .unwrap();
    assert_eq!(obj.annotation_count(), 1);
}

#[test]
fn unlink_and_drop_instance() {
    let mut db = birds_db();
    db.execute_sql(
        "CREATE SUMMARY INSTANCE X TYPE CLUSTER;
         LINK SUMMARY X TO birds;
         ADD ANNOTATION 'some note text' ON birds WHERE id = 1;
         UNLINK SUMMARY X FROM birds;",
    )
    .unwrap();
    let result = db.query("SELECT name FROM birds WHERE id = 1").unwrap();
    assert!(result.rows[0].summaries.is_empty());
    db.execute_sql("DROP SUMMARY INSTANCE X").unwrap();
    assert!(db.registry().instance_id("X").is_err());
}

#[test]
fn drop_table_cleans_annotations_and_links() {
    let mut db = birds_db();
    db.execute_sql(
        "CREATE SUMMARY INSTANCE Y TYPE CLUSTER;
         LINK SUMMARY Y TO birds;
         ADD ANNOTATION 'note before drop' ON birds WHERE id = 1;",
    )
    .unwrap();
    assert_eq!(db.store().stats().count, 1);
    db.execute_sql("DROP TABLE birds").unwrap();
    assert_eq!(db.store().stats().count, 0, "orphaned annotations removed");
    assert!(db.query("SELECT name FROM birds").is_err());
}

#[test]
fn error_paths_surface_proper_classes() {
    let mut db = birds_db();
    assert_eq!(
        db.query("SELECT nope FROM birds").unwrap_err().class(),
        "catalog"
    );
    assert_eq!(
        db.query("SELECT name FROM missing").unwrap_err().class(),
        "catalog"
    );
    assert_eq!(db.execute_sql("SELECT FROM").unwrap_err().class(), "parse");
    assert_eq!(
        db.execute_sql("CREATE TABLE birds (x INT)")
            .unwrap_err()
            .class(),
        "catalog"
    );
    assert_eq!(
        db.query("SELECT name, COUNT(*) FROM birds")
            .unwrap_err()
            .class(),
        "type"
    );
    assert_eq!(
        db.execute_sql("INSERT INTO birds VALUES (1, 2, 3)")
            .unwrap_err()
            .class(),
        "execution"
    );
    assert_eq!(
        db.query("SELECT name FROM birds WHERE SUMMARY_COUNT(nope, 'x') > 0")
            .unwrap_err()
            .class(),
        "summary"
    );
}

#[test]
fn multi_statement_scripts_execute_in_order() {
    let mut db = Database::new();
    let outcomes = db
        .execute_sql(
            "CREATE TABLE t (x INT); INSERT INTO t VALUES (1), (2); -- trailing comment
             SELECT x FROM t ORDER BY x DESC;",
        )
        .unwrap();
    assert_eq!(outcomes.len(), 3);
    let ExecOutcome::Query(q) = &outcomes[2] else {
        panic!()
    };
    assert_eq!(q.rows[0].row[0], Value::Int(2));
}

#[test]
fn render_result_includes_summaries() {
    let mut db = birds_db();
    db.execute_sql(
        "CREATE SUMMARY INSTANCE R TYPE CLASSIFIER LABELS ('note') TRAIN ('note': 'word');
         LINK SUMMARY R TO birds;
         ADD ANNOTATION 'word word' ON birds WHERE id = 1;",
    )
    .unwrap();
    let result = db.query("SELECT name FROM birds WHERE id = 1").unwrap();
    let rendered = db.render_result(&result);
    assert!(rendered.contains("Swan Goose"));
    assert!(rendered.contains("R [(note, 1)]"), "rendered: {rendered}");
    assert!(rendered.contains("QID"));
}
