//! Property tests for the morsel-driven parallel executor: for every
//! query shape, running with `DbConfig::parallelism = Some(1 | 2 | 8)`
//! must produce the same rows, in the same order, carrying the same
//! summary objects, as the serial executor (`parallelism = None`).
//!
//! Data is integer-valued throughout so SUM/AVG results are exact (i64
//! accumulation is associative; float reordering is out of scope here).
//! Summary objects are compared through the same canonical form as
//! `plan_equivalence` (cluster group ordering inside an object is a
//! merge-schedule artifact). At these input sizes cluster objects stay
//! far below their group budget, so group *membership* also matches;
//! at scale, bounded clusters may legitimately re-partition the same
//! contributing annotations when the merge association changes — see
//! DESIGN.md §6. Row order is compared exactly — morsel reassembly
//! makes parallel operator output order identical to serial.

use insightnotes::annotations::{AnnotationBody, ColSig};
use insightnotes::common::{ColumnId, RowId};
use insightnotes::engine::{Database, DbConfig, QueryResult};
use insightnotes::summaries::SummaryObject;
use proptest::prelude::*;

const THREAD_COUNTS: &[usize] = &[1, 2, 8];

const TEXT_POOL: &[&str] = &[
    "eating stonewort near shore",
    "eating stonewort near lake",
    "lesions and parasites observed",
    "wingspan measured at dawn",
    "see attached reference photo",
    "diving for fish repeatedly",
];

#[derive(Debug, Clone)]
struct Spec {
    r_rows: Vec<(i64, i64)>,
    s_rows: Vec<(i64, i64)>,
    // (on_r, row index, column mask 1..=3, text index)
    annotations: Vec<(bool, usize, u8, usize)>,
    threshold: i64,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec((0i64..4, 0i64..6), 1..8),
        prop::collection::vec((0i64..4, 0i64..6), 1..8),
        prop::collection::vec(
            (any::<bool>(), 0usize..8, 1u8..4, 0usize..TEXT_POOL.len()),
            0..16,
        ),
        0i64..6,
    )
        .prop_map(|(r_rows, s_rows, annotations, threshold)| Spec {
            r_rows,
            s_rows,
            annotations,
            threshold,
        })
}

fn build_db(spec: &Spec, parallelism: Option<usize>) -> Database {
    let mut db = Database::with_config(DbConfig {
        parallelism,
        ..DbConfig::default()
    })
    .expect("db construction");
    db.execute_sql(
        "CREATE TABLE R (a INT, b INT);
         CREATE TABLE S (x INT, y INT);
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER
           LABELS ('Behavior', 'Disease', 'Anatomy', 'Other')
           TRAIN ('Behavior': 'eating stonewort diving fish',
                  'Disease': 'lesions parasites',
                  'Anatomy': 'wingspan measured',
                  'Other': 'reference photo attached');
         CREATE SUMMARY INSTANCE K TYPE CLUSTER THRESHOLD 0.5;
         LINK SUMMARY C TO R;
         LINK SUMMARY C TO S;
         LINK SUMMARY K TO R;
         LINK SUMMARY K TO S;",
    )
    .unwrap();
    for &(a, b) in &spec.r_rows {
        db.execute_sql(&format!("INSERT INTO R VALUES ({a}, {b})"))
            .unwrap();
    }
    for &(x, y) in &spec.s_rows {
        db.execute_sql(&format!("INSERT INTO S VALUES ({x}, {y})"))
            .unwrap();
    }
    for &(on_r, row, mask, text) in &spec.annotations {
        let (table, nrows) = if on_r {
            ("R", spec.r_rows.len())
        } else {
            ("S", spec.s_rows.len())
        };
        let rid = RowId::new((row % nrows) as u64 + 1);
        let mut cols = Vec::new();
        if mask & 1 != 0 {
            cols.push(ColumnId::new(0));
        }
        if mask & 2 != 0 {
            cols.push(ColumnId::new(1));
        }
        db.annotate_rows(
            table,
            &[rid],
            ColSig::of_columns(&cols),
            AnnotationBody::text(TEXT_POOL[text], "prop"),
        )
        .unwrap();
    }
    db
}

/// Canonical rendering that preserves row order: summary-object internals
/// are normalized (cluster group order is a merge-schedule artifact) but
/// the row sequence itself must match the serial executor exactly.
fn canonicalize_ordered(result: &QueryResult) -> Vec<String> {
    result
        .rows
        .iter()
        .map(|r| {
            let mut parts = vec![r.row.to_string()];
            for (inst, obj) in &r.summaries {
                parts.push(format!("{inst}:{}", canonical_object(obj)));
            }
            parts.join(" | ")
        })
        .collect()
}

fn canonical_object(obj: &SummaryObject) -> String {
    match obj {
        SummaryObject::Classifier(c) => {
            let counts: Vec<String> = (0..obj.component_count())
                .map(|i| {
                    format!(
                        "{}={:?}",
                        c.labels()[i],
                        obj.zoom_ids(i).unwrap().as_slice()
                    )
                })
                .collect();
            format!("cls[{}]", counts.join(","))
        }
        SummaryObject::Cluster(_) => {
            let mut groups: Vec<String> = (0..obj.component_count())
                .map(|i| format!("{:?}", obj.zoom_ids(i).unwrap().as_slice()))
                .collect();
            groups.sort();
            format!("clu[{}]", groups.join(","))
        }
        SummaryObject::Snippet(s) => {
            let ids: Vec<u64> = s.entries().iter().map(|e| e.id).collect();
            format!("snp{ids:?}")
        }
    }
}

/// Runs `sql` serially and at every thread count, asserting all outputs
/// agree with the serial baseline.
fn assert_parallel_matches_serial(spec: &Spec, sql: &str) {
    let serial = canonicalize_ordered(&build_db(spec, None).query(sql).unwrap());
    for &threads in THREAD_COUNTS {
        let parallel = canonicalize_ordered(&build_db(spec, Some(threads)).query(sql).unwrap());
        prop_assert_eq!(
            &parallel,
            &serial,
            "parallel ({} threads) diverged from serial on {}",
            threads,
            sql
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn filter_project_sort(spec in spec_strategy()) {
        let t = spec.threshold;
        assert_parallel_matches_serial(
            &spec,
            &format!("SELECT a, b + 1 AS b1 FROM R WHERE b < {t} ORDER BY a DESC, b1"),
        );
    }

    #[test]
    fn equi_join(spec in spec_strategy()) {
        assert_parallel_matches_serial(
            &spec,
            "SELECT r.a, r.b, s.y FROM R r JOIN S s ON r.a = s.x",
        );
    }

    #[test]
    fn non_equi_join(spec in spec_strategy()) {
        assert_parallel_matches_serial(
            &spec,
            "SELECT r.a, s.y FROM R r, S s WHERE r.b < s.y",
        );
    }

    #[test]
    fn grouped_aggregate(spec in spec_strategy()) {
        assert_parallel_matches_serial(
            &spec,
            "SELECT a, COUNT(*) AS n, SUM(b) AS sb, AVG(b) AS ab, MIN(b) AS mn, MAX(b) AS mx \
             FROM R GROUP BY a ORDER BY a",
        );
    }

    #[test]
    fn global_aggregate(spec in spec_strategy()) {
        assert_parallel_matches_serial(&spec, "SELECT COUNT(*) AS n, SUM(y) AS sy FROM S");
    }

    #[test]
    fn distinct_rows(spec in spec_strategy()) {
        assert_parallel_matches_serial(&spec, "SELECT DISTINCT a FROM R");
    }

    #[test]
    fn limit_over_scan_and_filter(spec in spec_strategy()) {
        let t = spec.threshold;
        assert_parallel_matches_serial(&spec, "SELECT a, b FROM R LIMIT 3");
        assert_parallel_matches_serial(
            &spec,
            &format!("SELECT a, b FROM R WHERE b < {t} LIMIT 2"),
        );
    }
}

/// A deterministic large-input check that actually crosses morsel
/// boundaries (the proptest specs above stay small for speed): 2·600
/// annotated rows through scan → filter → join → aggregate must agree
/// between serial and all parallel thread counts.
#[test]
fn large_input_crosses_morsel_boundaries() {
    fn build(parallelism: Option<usize>) -> Database {
        let mut db = Database::with_config(DbConfig {
            parallelism,
            ..DbConfig::default()
        })
        .expect("db construction");
        let mut ddl = String::from(
            "CREATE TABLE R (a INT, b INT);
             CREATE TABLE S (x INT, y INT);
             CREATE SUMMARY INSTANCE C TYPE CLASSIFIER
               LABELS ('Behavior', 'Other')
               TRAIN ('Behavior': 'eating stonewort diving fish',
                      'Other': 'reference photo attached');
             LINK SUMMARY C TO R;",
        );
        for i in 0..2600i64 {
            ddl.push_str(&format!("INSERT INTO R VALUES ({}, {});", i % 97, i % 13));
        }
        for i in 0..300i64 {
            ddl.push_str(&format!("INSERT INTO S VALUES ({}, {});", i % 97, i));
        }
        db.execute_sql(&ddl).unwrap();
        let rids: Vec<RowId> = (0..2600).step_by(7).map(|i| RowId::new(i + 1)).collect();
        db.annotate_rows(
            "R",
            &rids,
            ColSig::of_columns(&[ColumnId::new(0)]),
            AnnotationBody::text("eating stonewort near shore", "bulk"),
        )
        .unwrap();
        db
    }
    let queries = [
        "SELECT a, COUNT(*) AS n, SUM(b) AS sb FROM R GROUP BY a ORDER BY a",
        "SELECT r.a, r.b, s.y FROM R r JOIN S s ON r.a = s.x WHERE r.b < 6",
        "SELECT DISTINCT b FROM R ORDER BY b",
        "SELECT a, b FROM R WHERE b = 3 LIMIT 10",
    ];
    for sql in queries {
        let serial = canonicalize_ordered(&build(None).query(sql).unwrap());
        for &threads in THREAD_COUNTS {
            let parallel = canonicalize_ordered(&build(Some(threads)).query(sql).unwrap());
            assert_eq!(parallel, serial, "threads={threads}, sql={sql}");
        }
    }
}

/// Empirical determinism classes on a real workload (floats + bounded
/// clusters, where parallel output legitimately deviates from serial):
/// `parallelism <= 1` must be *byte-identical* to serial, and every
/// `parallelism >= 2` must be byte-identical to every other — morsel
/// decomposition, not thread scheduling, decides the merge order.
#[test]
fn thread_count_determinism_classes() {
    use insightnotes::{seed_birds_database, WorkloadConfig};
    fn run(parallelism: Option<usize>) -> String {
        let mut db = Database::with_config(DbConfig {
            parallelism,
            ..DbConfig::default()
        })
        .expect("db");
        seed_birds_database(
            &mut db,
            &WorkloadConfig {
                seed: 7,
                num_birds: 1300,
                annotation_ratio: 0.3,
                ..WorkloadConfig::default()
            },
        )
        .expect("seed");
        let r = db
            .query(
                "SELECT region, COUNT(*) AS n, AVG(weight) AS w FROM birds \
                 WHERE weight > 1 GROUP BY region ORDER BY region",
            )
            .expect("query");
        db.render_result(&r)
    }
    let serial = run(None);
    assert_eq!(run(Some(0)), serial, "threads=0 must run the serial path");
    assert_eq!(run(Some(1)), serial, "threads=1 must run the serial path");
    let two = run(Some(2));
    assert_eq!(run(Some(8)), two, "threads=8 must equal threads=2");
}
