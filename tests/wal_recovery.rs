//! Crash-recovery properties of the write-ahead log.
//!
//! The durability contract under test: once a write is acknowledged
//! (its WAL record fsynced), it survives any crash — process kill,
//! torn final record, crash mid-checkpoint — and recovery reproduces
//! the exact pre-crash state, byte-identical to a serial re-ingest of
//! the acked prefix. Crashes are simulated two ways:
//!
//! * **byte-level**: the WAL file is copied and truncated at every
//!   byte offset, which covers every possible torn-append shape;
//! * **process-level**: a helper invocation of this test binary runs
//!   an ingest loop with `INSIGHTNOTES_CRASH_POINT` set, aborting
//!   inside the engine's append/sync/checkpoint paths, and the driver
//!   recovers from whatever the dead process left on disk.
//!
//! Torn *snapshots* (satellite of the same bug class) are covered too:
//! truncated snapshot files must fail with a classified error, and
//! stale `.indb.tmp` files from a crashed save must be swept.

use insightnotes::common::RowId;
use insightnotes::engine::persist::snapshot;
use insightnotes::engine::shard::{shard_snapshot_path, snapshot_manifest_path, MANIFEST_FILE};
use insightnotes::engine::wal::{SyncPolicy, Wal};
use insightnotes::engine::{Database, DbConfig, ShardedDatabase};
use insightnotes::sql::parse_one;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("insightnotes-walrec-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn wal_config(dir: &Path, sync: SyncPolicy) -> DbConfig {
    DbConfig {
        wal_dir: Some(dir.to_path_buf()),
        wal_sync: sync,
        ..DbConfig::default()
    }
}

const SCHEMA: &str = "CREATE TABLE t (p INT, q TEXT);
     INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three');
     CREATE SUMMARY INSTANCE C TYPE CLASSIFIER
       LABELS ('Behavior', 'Disease')
       TRAIN ('Behavior': 'eating stonewort diving',
              'Disease': 'lesions parasites infection');
     CREATE SUMMARY INSTANCE K TYPE CLUSTER THRESHOLD 0.5;
     LINK SUMMARY C TO t;
     LINK SUMMARY K TO t;";

const STATEMENTS: &[&str] = &[
    "ADD ANNOTATION 'eating stonewort near shore' AUTHOR 'ada' ON t WHERE p = 1",
    "ADD ANNOTATION 'lesions parasites infection' AUTHOR 'brahe' ON t WHERE p = 2",
    "ADD ANNOTATION 'diving and foraging' AUTHOR 'ada' ON t WHERE p = 3",
    "ADD ANNOTATION 'eating stonewort near shore' AUTHOR 'curie' ON t COLUMNS (q) WHERE p = 1",
    "DELETE ANNOTATION 2",
    "ADD ANNOTATION 'parasites observed again' AUTHOR 'brahe' ON t WHERE p = 2",
];

/// Zero-stamped state bytes: catalog + store + registry, no epoch or
/// clock, so states reached through different persistence histories
/// (live vs snapshot+replay) compare equal iff logically identical.
fn state_bytes(db: &Database) -> Vec<u8> {
    snapshot(db.catalog(), db.store(), db.registry())
}

/// Reference states: `states[k]` is (state bytes, clock) after the
/// schema plus the first `k` entries of `STATEMENTS`, produced by a
/// plain WAL-less database — the "serial replay of the acked prefix"
/// the recovered state must be byte-identical to.
fn reference_states() -> Vec<(Vec<u8>, u64)> {
    let mut db = Database::new();
    db.execute_sql(SCHEMA).unwrap();
    let mut states = vec![(state_bytes(&db), db.clock_now())];
    for sql in STATEMENTS {
        db.execute_sql(sql).unwrap();
        states.push((state_bytes(&db), db.clock_now()));
    }
    states
}

// -- replay equivalence ---------------------------------------------------

#[test]
fn recovery_without_snapshot_replays_the_full_log() {
    let dir = scratch("full-replay");
    let pre_crash;
    {
        let mut db = Database::with_config(wal_config(&dir, SyncPolicy::Batch)).unwrap();
        db.execute_sql(SCHEMA).unwrap();
        for sql in STATEMENTS {
            db.execute_sql(sql).unwrap();
        }
        db.wal_sync().unwrap();
        pre_crash = (state_bytes(&db), db.clock_now());
        // Dropped without save: the WAL is the only persistent state.
    }
    let (db, report) = Database::recover(None, wal_config(&dir, SyncPolicy::Batch)).unwrap();
    assert!(!report.snapshot_loaded);
    // One Script record for the schema, one per ingest statement.
    assert_eq!(report.records_replayed, 1 + STATEMENTS.len());
    assert_eq!(report.bytes_truncated, 0);
    assert_eq!(
        state_bytes(&db),
        pre_crash.0,
        "replay diverged from pre-crash state"
    );
    assert_eq!(db.clock_now(), pre_crash.1, "logical clock diverged");
    assert_eq!(state_bytes(&db), reference_states().last().unwrap().0);
}

#[test]
fn recovery_replays_the_wal_tail_on_top_of_a_checkpoint() {
    let dir = scratch("tail-replay");
    let snap = dir.join("db.indb");
    let pre_crash;
    {
        let mut db = Database::with_config(wal_config(&dir, SyncPolicy::Batch)).unwrap();
        db.execute_sql(SCHEMA).unwrap();
        for sql in &STATEMENTS[..3] {
            db.execute_sql(sql).unwrap();
        }
        db.checkpoint(&snap).unwrap();
        assert_eq!(db.epoch(), 1);
        for sql in &STATEMENTS[3..] {
            db.execute_sql(sql).unwrap();
        }
        db.wal_sync().unwrap();
        pre_crash = (state_bytes(&db), db.clock_now());
    }
    let (db, report) = Database::recover(Some(&snap), wal_config(&dir, SyncPolicy::Batch)).unwrap();
    assert!(report.snapshot_loaded);
    assert_eq!(report.records_replayed, STATEMENTS.len() - 3);
    assert_eq!(db.epoch(), 1);
    assert_eq!(state_bytes(&db), pre_crash.0);
    assert_eq!(db.clock_now(), pre_crash.1);
}

#[test]
fn typed_and_batch_entry_points_replay_identically() {
    use insightnotes::annotations::{AnnotationBody, ColSig};
    use insightnotes::common::RowId;
    use insightnotes::engine::{RowAnnotation, SqlStatement};

    let dir = scratch("typed-replay");
    let pre_crash;
    {
        let mut db = Database::with_config(wal_config(&dir, SyncPolicy::Batch)).unwrap();
        db.execute_sql(SCHEMA).unwrap();
        // SQL batch (the server's group-commit path).
        let stmts: Vec<SqlStatement> = [
            STATEMENTS[0],
            "ADD ANNOTATION 'bogus' ON missing WHERE p = 1", // per-item failure
            STATEMENTS[1],
        ]
        .iter()
        .map(|s| SqlStatement::parse(*s).unwrap())
        .collect();
        let results = db.annotate_batch_sql(stmts);
        assert_eq!(
            results
                .iter()
                .map(std::result::Result::is_ok)
                .collect::<Vec<_>>(),
            [true, false, true]
        );
        // Typed single + typed batch.
        db.annotate_rows(
            "t",
            &[RowId::new(1), RowId::new(3)],
            ColSig::whole_row(2),
            AnnotationBody::text("diving and foraging", "ada"),
        )
        .unwrap();
        let ids = db.annotate_rows_batch(vec![
            RowAnnotation {
                table: "t".into(),
                rows: vec![RowId::new(2)],
                cols: ColSig::whole_row(2),
                body: AnnotationBody::text("lesions parasites", "brahe"),
            },
            RowAnnotation {
                table: "missing".into(), // per-item failure must re-fail on replay
                rows: vec![RowId::new(1)],
                cols: ColSig::whole_row(2),
                body: AnnotationBody::text("x", "y"),
            },
        ]);
        assert!(ids[0].is_ok() && ids[1].is_err());
        db.wal_sync().unwrap();
        pre_crash = (state_bytes(&db), db.clock_now());
    }
    let (db, _) = Database::recover(None, wal_config(&dir, SyncPolicy::Batch)).unwrap();
    assert_eq!(state_bytes(&db), pre_crash.0);
    assert_eq!(db.clock_now(), pre_crash.1);
}

// -- acked-prefix durability under byte-level truncation ------------------

/// The core acked-writes property, exhaustively: ingest with per-record
/// watermarks, then truncate the log at *every* byte offset. Recovery
/// must land exactly on the reference state of the longest fully
/// durable prefix — never panic, never lose an acked record below the
/// cut, never invent a partial one above it.
#[test]
fn truncation_at_every_byte_recovers_the_longest_durable_prefix() {
    let dir = scratch("every-byte");
    let refs = reference_states();
    let mut watermarks = Vec::new(); // watermarks[k] = wal_len after k statements
    {
        let mut db = Database::with_config(wal_config(&dir, SyncPolicy::Always)).unwrap();
        db.execute_sql(SCHEMA).unwrap();
        watermarks.push(db.wal_len().unwrap());
        for sql in STATEMENTS {
            db.execute_sql(sql).unwrap();
            watermarks.push(db.wal_len().unwrap());
        }
    }
    let wal_path = Wal::path_in(&dir);
    let bytes = std::fs::read(&wal_path).unwrap();
    assert_eq!(bytes.len() as u64, *watermarks.last().unwrap());

    let schema_end = watermarks[0];
    for cut in schema_end..=bytes.len() as u64 {
        let dir2 = scratch("every-byte-cut");
        std::fs::write(Wal::path_in(&dir2), &bytes[..cut as usize]).unwrap();
        let (db, report) = Database::recover(None, wal_config(&dir2, SyncPolicy::Batch))
            .unwrap_or_else(|e| panic!("cut at byte {cut}: recovery failed: {e}"));
        // Longest statement prefix whose records fit under the cut.
        let k = watermarks.iter().filter(|&&w| w <= cut).count() - 1;
        assert_eq!(
            state_bytes(&db),
            refs[k].0,
            "cut at byte {cut}: expected state after {k} statements"
        );
        assert_eq!(db.clock_now(), refs[k].1, "cut at byte {cut}: clock");
        assert_eq!(report.bytes_truncated, cut - watermarks[k]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same property under random corruption rather than truncation: a
    /// flipped byte anywhere in the final record's frame drops that
    /// record (and nothing before it) or — if it hits the length field
    /// such that the frame now overruns the file — truncates the tail.
    /// Either way recovery lands on a reference prefix state.
    #[test]
    fn corrupting_the_final_record_never_loses_earlier_acks(
        victim_back_off in 0usize..64,
        flip in 1u8..=255,
    ) {
        let dir = scratch("corrupt-prop");
        let refs = reference_states();
        let mut watermarks = Vec::new();
        {
            let mut db = Database::with_config(wal_config(&dir, SyncPolicy::Always)).unwrap();
            db.execute_sql(SCHEMA).unwrap();
            watermarks.push(db.wal_len().unwrap());
            for sql in STATEMENTS {
                db.execute_sql(sql).unwrap();
                watermarks.push(db.wal_len().unwrap());
            }
        }
        let wal_path = Wal::path_in(&dir);
        let mut bytes = std::fs::read(&wal_path).unwrap();
        let last_start = watermarks[watermarks.len() - 2] as usize;
        // Corrupt a byte inside the final record's frame.
        let idx = bytes.len() - 1 - victim_back_off.min(bytes.len() - last_start - 1);
        bytes[idx] ^= flip;
        std::fs::write(&wal_path, &bytes).unwrap();

        let (db, _) = Database::recover(None, wal_config(&dir, SyncPolicy::Batch)).unwrap();
        let got = state_bytes(&db);
        let hit = refs
            .iter()
            .position(|(s, _)| *s == got)
            .expect("recovered state matches no reference prefix");
        prop_assert!(
            hit >= STATEMENTS.len() - 1,
            "corrupting the final record lost earlier records (prefix {hit})"
        );
    }
}

// -- process-kill fault injection -----------------------------------------

/// Helper body, run in a child process with `INSIGHTNOTES_CRASH_POINT`
/// set: ingests `STATEMENTS` one at a time, appending the statement
/// index to an `acked` file only after `wal_sync` returns — the moment
/// a server would release the client's ack. The injected crash aborts
/// somewhere inside append/sync, so the child dies mid-ingest.
#[test]
fn crash_helper_ingest() {
    let Ok(dir) = std::env::var("INSIGHTNOTES_CRASH_HELPER_DIR") else {
        return; // Not a helper invocation: nothing to do.
    };
    let dir = PathBuf::from(dir);
    let mut db = Database::with_config(wal_config(&dir, SyncPolicy::Batch)).unwrap();
    db.execute_sql(SCHEMA).unwrap();
    db.wal_sync().unwrap();
    use std::io::Write;
    let mut acked = std::fs::File::create(dir.join("acked")).unwrap();
    writeln!(acked, "schema").unwrap();
    acked.sync_all().unwrap();
    for (i, sql) in STATEMENTS.iter().enumerate() {
        db.execute_sql(sql).unwrap();
        db.wal_sync().unwrap();
        writeln!(acked, "{i}").unwrap();
        acked.sync_all().unwrap();
    }
    // Crash points upstream usually abort before reaching here; if the
    // configured point was never hit, the helper just exits cleanly.
}

fn run_crash_helper(dir: &Path, crash_point: &str) -> std::process::ExitStatus {
    Command::new(std::env::current_exe().unwrap())
        .args([
            "--exact",
            "crash_helper_ingest",
            "--nocapture",
            "--test-threads",
            "1",
        ])
        .env("INSIGHTNOTES_CRASH_HELPER_DIR", dir)
        .env("INSIGHTNOTES_CRASH_POINT", crash_point)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawn helper")
}

/// Acked units: the schema script counts as one, each statement as one
/// more — matching the indices of [`prefix_states`].
fn acked_count(dir: &Path) -> usize {
    match std::fs::read_to_string(dir.join("acked")) {
        Ok(s) => s.lines().count(),
        Err(_) => 0,
    }
}

/// [`reference_states`] extended downwards with the empty database:
/// `prefix_states()[u]` is the state after `u` acked units (0 = not
/// even the schema made it to disk).
fn prefix_states() -> Vec<(Vec<u8>, u64)> {
    let empty = Database::new();
    let mut states = vec![(state_bytes(&empty), empty.clock_now())];
    states.extend(reference_states());
    states
}

/// Every acked statement survives an abort injected at each crash
/// point in the append/sync path; the recovered state is byte-identical
/// to a serial replay of *some* prefix at least as long as the acked
/// one (a record can be durable without its ack having been released —
/// durability may overshoot the ack, never undershoot it).
#[test]
fn injected_crashes_never_lose_acked_statements() {
    let refs = prefix_states();
    for crash_point in [
        "wal.append.before",
        "wal.append.torn",
        "wal.append.after",
        "wal.sync.before",
        "wal.sync.after",
    ] {
        let dir = scratch(&format!("crash-{}", crash_point.replace('.', "-")));
        let status = run_crash_helper(&dir, crash_point);
        assert!(
            !status.success(),
            "{crash_point}: helper was expected to abort"
        );
        let acked = acked_count(&dir);
        let (db, report) = Database::recover(None, wal_config(&dir, SyncPolicy::Batch))
            .unwrap_or_else(|e| panic!("{crash_point}: recovery failed: {e}"));
        let got = state_bytes(&db);
        let recovered = refs
            .iter()
            .position(|(s, _)| *s == got)
            .unwrap_or_else(|| panic!("{crash_point}: recovered state matches no serial prefix"));
        assert!(
            recovered >= acked,
            "{crash_point}: acked {acked} statements but recovered only {recovered} \
             (report: {report})"
        );
        assert_eq!(db.clock_now(), refs[recovered].1, "{crash_point}: clock");
    }
}

/// Crashes injected inside the checkpoint itself (snapshot write,
/// rename, WAL rotation) must leave a recoverable pair: either the old
/// snapshot + full WAL, or the new snapshot + (possibly stale) WAL.
#[test]
fn injected_checkpoint_crashes_recover_cleanly() {
    for crash_point in [
        "snapshot.write.after",
        "snapshot.rename.before",
        "snapshot.rename.after",
        "wal.rotate.before",
        "wal.rotate.after",
    ] {
        let dir = scratch(&format!("ckpt-{}", crash_point.replace('.', "-")));
        let snap = dir.join("db.indb");
        let status = Command::new(std::env::current_exe().unwrap())
            .args([
                "--exact",
                "crash_helper_checkpoint",
                "--nocapture",
                "--test-threads",
                "1",
            ])
            .env("INSIGHTNOTES_CRASH_HELPER_DIR", &dir)
            .env("INSIGHTNOTES_CRASH_POINT", crash_point)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .status()
            .expect("spawn helper");
        assert!(
            !status.success(),
            "{crash_point}: helper was expected to abort"
        );
        let snap_arg = snap.exists().then_some(snap.as_path());
        let (db, report) = Database::recover(snap_arg, wal_config(&dir, SyncPolicy::Batch))
            .unwrap_or_else(|e| panic!("{crash_point}: recovery failed: {e}"));
        // Everything was acked before the checkpoint began, so the full
        // final state must come back regardless of where it died.
        let refs = reference_states();
        assert_eq!(
            state_bytes(&db),
            refs.last().unwrap().0,
            "{crash_point}: state after checkpoint crash (report: {report})"
        );
        assert_eq!(
            db.clock_now(),
            refs.last().unwrap().1,
            "{crash_point}: clock"
        );
    }
}

/// Helper body for checkpoint crash injection: full ingest, everything
/// synced, then a checkpoint that aborts at the configured point.
#[test]
fn crash_helper_checkpoint() {
    let Ok(dir) = std::env::var("INSIGHTNOTES_CRASH_HELPER_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let mut db = Database::with_config(wal_config(&dir, SyncPolicy::Batch)).unwrap();
    db.execute_sql(SCHEMA).unwrap();
    for sql in STATEMENTS {
        db.execute_sql(sql).unwrap();
    }
    db.wal_sync().unwrap();
    let _ = db.checkpoint(dir.join("db.indb")); // aborts at the crash point
}

// -- sharded layout: per-shard WAL segments, manifest, recovery -----------

const SHARD_COUNT: usize = 4;
const SHARD_ROWS: u64 = 12;

/// Widens `t` to twelve rows so the single-row ingest statements below
/// land records on several of the four shards.
fn sharded_setup(db: &ShardedDatabase) {
    db.execute_sql(SCHEMA).unwrap();
    let extra: Vec<String> = (4..=SHARD_ROWS)
        .map(|r| format!("({r}, 'row{r}')"))
        .collect();
    db.execute_sql(&format!("INSERT INTO t VALUES {}", extra.join(", ")))
        .unwrap();
}

/// One single-row annotation per row — each touches exactly one shard's
/// lock and WAL segment.
fn sharded_statements() -> Vec<String> {
    (1..=SHARD_ROWS)
        .map(|r| {
            format!(
                "ADD ANNOTATION 'eating stonewort near shore {r}' AUTHOR 'ada' \
                 ON t WHERE p = {r}"
            )
        })
        .collect()
}

/// Full sharded replay: each shard's recovered state is byte-identical
/// to its pre-crash state, and the whole is logically identical to a
/// serial, unsharded replay of the same statement stream — same
/// annotation ids, same `created` ticks, same bodies, row by row.
#[test]
fn sharded_recovery_replays_each_shard_byte_identically() {
    let dir = scratch("sharded-replay");
    let stmts = sharded_statements();
    let pre: Vec<Vec<u8>>;
    {
        let db = ShardedDatabase::create(wal_config(&dir, SyncPolicy::Batch), SHARD_COUNT).unwrap();
        sharded_setup(&db);
        for sql in &stmts {
            db.execute_sql(sql).unwrap();
        }
        db.wal_sync_all().unwrap();
        pre = (0..SHARD_COUNT)
            .map(|k| state_bytes(&db.shard(k).read()))
            .collect();
        // Dropped without checkpoint: the shard WALs are all there is.
    }
    let (db, report) =
        ShardedDatabase::recover(None, wal_config(&dir, SyncPolicy::Batch), SHARD_COUNT).unwrap();
    assert_eq!(report.shards.len(), SHARD_COUNT);
    assert!(report.records_replayed() >= stmts.len());
    for (k, s) in report.shards.iter().enumerate() {
        assert_eq!(s.report.bytes_truncated, 0, "shard {k} saw torn bytes");
    }
    for (k, bytes) in pre.iter().enumerate() {
        assert_eq!(
            &state_bytes(&db.shard(k).read()),
            bytes,
            "shard {k} replay diverged from its pre-crash state"
        );
    }

    let mut serial = Database::new();
    serial.execute_sql(SCHEMA).unwrap();
    let extra: Vec<String> = (4..=SHARD_ROWS)
        .map(|r| format!("({r}, 'row{r}')"))
        .collect();
    serial
        .execute_sql(&format!("INSERT INTO t VALUES {}", extra.join(", ")))
        .unwrap();
    for sql in &stmts {
        serial.execute_sql(sql).unwrap();
    }
    assert_eq!(db.annotation_count(), serial.store().stats().count);
    let t = serial.catalog().table_id("t").unwrap();
    for r in 1..=SHARD_ROWS {
        let row = RowId::new(r);
        let guard = db.shard(db.owner(t, row)).read();
        let digest = |db: &Database| -> Vec<(u64, u64, String)> {
            db.store()
                .on_row(t, row)
                .iter()
                .map(|&(aid, _)| {
                    let a = db.store().get(aid).unwrap();
                    (aid.raw(), a.body.created, a.body.text.clone())
                })
                .collect()
        };
        assert_eq!(
            digest(&guard),
            digest(&serial),
            "row {r} diverged from serial"
        );
    }
}

/// The kill-9 shape the per-shard fsync pipelines make possible: some
/// shard WALs carry the final group's frame, one doesn't (its tail is
/// torn mid-frame). Recovery must keep every record on the intact
/// shards and lose exactly the victim's torn tail — independent
/// segments, independent prefixes.
#[test]
fn torn_tail_on_one_shard_loses_only_that_shards_records() {
    let dir = scratch("sharded-torn-tail");
    let stmts = sharded_statements();
    let mut marks: Vec<Vec<u64>> = vec![Vec::new(); SHARD_COUNT];
    let mut owners = Vec::new();
    {
        let db =
            ShardedDatabase::create(wal_config(&dir, SyncPolicy::Always), SHARD_COUNT).unwrap();
        sharded_setup(&db);
        let t = db.shard(0).read().catalog().table_id("t").unwrap();
        for (i, sql) in stmts.iter().enumerate() {
            db.execute_sql(sql).unwrap();
            owners.push(db.owner(t, RowId::new(i as u64 + 1)));
            for (k, shard_marks) in marks.iter_mut().enumerate() {
                shard_marks.push(db.shard(k).read().wal_len().unwrap());
            }
        }
    }
    // Tear the final statement's frame on its owner shard: cut inside
    // the record, past the previous record boundary.
    let victim = *owners.last().unwrap();
    let victim_wal = Wal::path_in(&dir.join(format!("shard-{victim}")));
    let bytes = std::fs::read(&victim_wal).unwrap();
    let boundary = marks[victim][stmts.len() - 2];
    let cut = boundary + (bytes.len() as u64 - boundary) / 2;
    assert!(
        cut > boundary && cut < bytes.len() as u64,
        "tear must be mid-frame"
    );
    std::fs::write(&victim_wal, &bytes[..cut as usize]).unwrap();

    let (db, report) =
        ShardedDatabase::recover(None, wal_config(&dir, SyncPolicy::Batch), SHARD_COUNT).unwrap();
    assert!(
        report.shards[victim].report.bytes_truncated > 0,
        "victim shard should report the torn tail"
    );
    for (k, s) in report.shards.iter().enumerate() {
        if k != victim {
            assert_eq!(s.report.bytes_truncated, 0, "intact shard {k} lost bytes");
        }
    }
    let t = db.shard(0).read().catalog().table_id("t").unwrap();
    for (i, owner) in owners.iter().enumerate() {
        let row = RowId::new(i as u64 + 1);
        let guard = db.shard(db.owner(t, row)).read();
        let present = !guard.store().on_row(t, row).is_empty();
        let lost = *owner == victim && marks[victim][i] > boundary;
        assert_eq!(
            present, !lost,
            "statement {i} (owner shard {owner}, victim {victim})"
        );
    }
}

/// Shard-count changes and layout mixups are detected, classified
/// errors — never silent corruption.
#[test]
fn shard_count_changes_and_layout_mixups_are_classified_errors() {
    let dir = scratch("sharded-layout");
    {
        let db = ShardedDatabase::create(wal_config(&dir, SyncPolicy::Batch), SHARD_COUNT).unwrap();
        sharded_setup(&db);
        db.wal_sync_all().unwrap();
    }
    // Recover with a different shard count.
    let err = ShardedDatabase::recover(None, wal_config(&dir, SyncPolicy::Batch), 2)
        .expect_err("shard-count change accepted");
    assert!(err.to_string().contains("migration"), "{err}");
    // Recover unsharded against a sharded layout.
    let err = ShardedDatabase::recover(None, wal_config(&dir, SyncPolicy::Batch), 1)
        .expect_err("sharded layout opened unsharded");
    assert!(err.to_string().contains("manifest"), "{err}");
    // Shard segments present but the manifest is gone.
    std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
    let err = ShardedDatabase::recover(None, wal_config(&dir, SyncPolicy::Batch), SHARD_COUNT)
        .expect_err("manifest-less shard segments accepted");
    assert!(err.to_string().contains("manifest"), "{err}");

    // An unsharded snapshot fed to a sharded recover.
    let dir2 = scratch("sharded-layout-snap");
    let snap = dir2.join("db.indb");
    let mut plain = Database::new();
    plain.execute_sql(SCHEMA).unwrap();
    plain.save(&snap).unwrap();
    let err = ShardedDatabase::recover(
        Some(&snap),
        wal_config(&dir2, SyncPolicy::Batch),
        SHARD_COUNT,
    )
    .expect_err("unsharded snapshot accepted by sharded recover");
    assert!(err.to_string().contains("unsharded"), "{err}");
}

/// Per-shard checkpoints write `<path>.shard<k>` snapshots, bump each
/// shard's epoch, rotate each segment, and record the epoch vector in
/// the manifest; recovery stacks each shard's WAL tail on top of its
/// own snapshot.
#[test]
fn sharded_checkpoint_then_tail_replay_recovers_with_epochs() {
    let dir = scratch("sharded-ckpt");
    let snap = dir.join("db.indb");
    let stmts = sharded_statements();
    let pre: Vec<Vec<u8>>;
    {
        let db = ShardedDatabase::create(wal_config(&dir, SyncPolicy::Batch), SHARD_COUNT).unwrap();
        sharded_setup(&db);
        for sql in &stmts[..6] {
            db.execute_sql(sql).unwrap();
        }
        db.checkpoint(&snap).unwrap();
        for sql in &stmts[6..] {
            db.execute_sql(sql).unwrap();
        }
        db.wal_sync_all().unwrap();
        pre = (0..SHARD_COUNT)
            .map(|k| state_bytes(&db.shard(k).read()))
            .collect();
    }
    assert!(!snap.exists(), "no unsharded snapshot file at shards > 1");
    for k in 0..SHARD_COUNT {
        assert!(
            shard_snapshot_path(&snap, k).exists(),
            "shard {k} snapshot missing"
        );
    }
    let (db, report) = ShardedDatabase::recover(
        Some(&snap),
        wal_config(&dir, SyncPolicy::Batch),
        SHARD_COUNT,
    )
    .unwrap();
    for (k, s) in report.shards.iter().enumerate() {
        assert_eq!(s.epoch, 1, "shard {k} epoch");
        assert!(s.report.snapshot_loaded, "shard {k} snapshot not loaded");
    }
    for (k, bytes) in pre.iter().enumerate() {
        assert_eq!(
            &state_bytes(&db.shard(k).read()),
            bytes,
            "shard {k} diverged after checkpointed recovery"
        );
    }
}

/// Snapshot-only deployments (no WAL directory) have no WAL-base
/// manifest, so the sibling `<path>.manifest` written at checkpoint is
/// the only witness of the snapshot set's shard count. Recovering the
/// set with the right count works; a different count — or an unsharded
/// recover, or shard files with the manifest deleted — is a classified
/// error instead of silently loading a subset of the shards.
#[test]
fn snapshot_only_shard_count_changes_are_classified_errors() {
    let dir = scratch("snap-only-sharded");
    let snap = dir.join("db.indb");
    let stmts = sharded_statements();
    let pre: Vec<Vec<u8>>;
    {
        let db = ShardedDatabase::create(DbConfig::default(), SHARD_COUNT).unwrap();
        sharded_setup(&db);
        for sql in &stmts {
            db.execute_sql(sql).unwrap();
        }
        db.checkpoint(&snap).unwrap();
        pre = (0..SHARD_COUNT)
            .map(|k| state_bytes(&db.shard(k).read()))
            .collect();
    }
    assert!(
        snapshot_manifest_path(&snap).exists(),
        "sharded checkpoint must write the sibling manifest"
    );

    // The right shard count round-trips.
    let (db, report) =
        ShardedDatabase::recover(Some(&snap), DbConfig::default(), SHARD_COUNT).unwrap();
    for (k, s) in report.shards.iter().enumerate() {
        assert!(s.report.snapshot_loaded, "shard {k} snapshot not loaded");
    }
    for (k, bytes) in pre.iter().enumerate() {
        assert_eq!(
            &state_bytes(&db.shard(k).read()),
            bytes,
            "shard {k} diverged after snapshot-only recovery"
        );
    }

    // A different count (the insightd default shifts with the machine's
    // core count) is refused.
    let err = ShardedDatabase::recover(Some(&snap), DbConfig::default(), 2)
        .expect_err("shard-count change accepted in snapshot-only mode");
    assert!(err.to_string().contains("migration"), "{err}");

    // Unsharded recover against the sharded set: the plain path does
    // not exist, so without the manifest check this would silently
    // recover an empty database.
    let err = ShardedDatabase::recover(Some(&snap), DbConfig::default(), 1)
        .expect_err("sharded snapshot set accepted by unsharded recover");
    assert!(err.to_string().contains("manifest"), "{err}");

    // Shard files with the manifest deleted: incomplete set, refused.
    std::fs::remove_file(snapshot_manifest_path(&snap)).unwrap();
    let err = ShardedDatabase::recover(Some(&snap), DbConfig::default(), SHARD_COUNT)
        .expect_err("manifest-less shard snapshot files accepted");
    assert!(err.to_string().contains("manifest"), "{err}");
}

// -- checkpoint epochs and stale logs -------------------------------------

#[test]
fn stale_wal_from_a_crashed_rotation_is_discarded_not_replayed() {
    let dir = scratch("stale-wal");
    let snap = dir.join("db.indb");
    let mut db = Database::with_config(wal_config(&dir, SyncPolicy::Batch)).unwrap();
    db.execute_sql(SCHEMA).unwrap();
    db.execute_sql(STATEMENTS[0]).unwrap();
    db.wal_sync().unwrap();
    // Keep the epoch-0 log, as a crash between snapshot rename and WAL
    // rotation would have left it.
    let old_log = std::fs::read(Wal::path_in(&dir)).unwrap();
    db.checkpoint(&snap).unwrap();
    let after_checkpoint = state_bytes(&db);
    drop(db);
    std::fs::write(Wal::path_in(&dir), &old_log).unwrap();

    let (db, report) = Database::recover(Some(&snap), wal_config(&dir, SyncPolicy::Batch)).unwrap();
    assert!(report.stale_wal_discarded);
    assert_eq!(report.records_replayed, 0, "stale records must not replay");
    assert_eq!(state_bytes(&db), after_checkpoint);
    assert_eq!(db.epoch(), 1);
}

#[test]
fn wal_from_the_future_is_a_classified_error() {
    let dir = scratch("future-wal");
    let snap = dir.join("db.indb");
    let old_snap = dir.join("old.indb");
    let mut db = Database::with_config(wal_config(&dir, SyncPolicy::Batch)).unwrap();
    db.execute_sql(SCHEMA).unwrap();
    db.checkpoint(&snap).unwrap(); // epoch 1
    std::fs::copy(&snap, &old_snap).unwrap();
    db.execute_sql(STATEMENTS[0]).unwrap();
    db.checkpoint(&snap).unwrap(); // epoch 2
    drop(db);
    // An epoch-1 snapshot cannot anchor an epoch-2 log.
    let err = Database::recover(Some(&old_snap), wal_config(&dir, SyncPolicy::Batch))
        .expect_err("mismatched epochs must not recover silently");
    assert!(
        err.to_string().contains("epoch"),
        "error should name the epoch mismatch: {err}"
    );
}

// -- torn snapshots and stale temp files ----------------------------------

#[test]
fn truncated_snapshots_error_cleanly_and_never_panic() {
    let dir = scratch("torn-snap");
    let snap = dir.join("db.indb");
    let mut db = Database::new();
    db.execute_sql(SCHEMA).unwrap();
    db.execute_sql(STATEMENTS[0]).unwrap();
    db.save(&snap).unwrap();
    let bytes = std::fs::read(&snap).unwrap();
    for cut in [0, 1, 3, 8, 17, bytes.len() / 2, bytes.len() - 1] {
        let torn = dir.join(format!("torn-{cut}.indb"));
        std::fs::write(&torn, &bytes[..cut]).unwrap();
        let err = Database::recover(Some(&torn), DbConfig::default())
            .expect_err("torn snapshot accepted");
        // Classified (codec/IO) error, not a panic and not a fresh db.
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn stale_snapshot_temp_file_is_swept_on_recovery() {
    let dir = scratch("stale-tmp");
    let snap = dir.join("db.indb");
    let mut db = Database::new();
    db.execute_sql(SCHEMA).unwrap();
    db.save(&snap).unwrap();
    let expected = state_bytes(&db);
    // A crash mid-save leaves a temp file beside the real snapshot.
    let tmp = snap.with_extension("indb.tmp");
    std::fs::write(&tmp, b"half-written garbage").unwrap();

    let (db, report) = Database::recover(Some(&snap), DbConfig::default()).unwrap();
    assert!(report.tmp_removed);
    assert!(!tmp.exists(), "temp file should be deleted");
    assert_eq!(state_bytes(&db), expected);

    // Temp file with no committed snapshot at all: a crash before the
    // first rename. Recovery starts fresh rather than failing.
    let lonely = dir.join("never.indb");
    std::fs::write(lonely.with_extension("indb.tmp"), b"garbage").unwrap();
    let (db, report) = Database::recover(Some(&lonely), DbConfig::default()).unwrap();
    assert!(report.tmp_removed);
    assert!(!report.snapshot_loaded);
    assert_eq!(db.store().stats().count, 0);
}

// -- configuration guard rails --------------------------------------------

#[test]
fn with_config_refuses_to_clobber_an_existing_log() {
    let dir = scratch("clobber");
    {
        let mut db = Database::with_config(wal_config(&dir, SyncPolicy::Batch)).unwrap();
        db.execute_sql(SCHEMA).unwrap();
        db.wal_sync().unwrap();
    }
    let err = Database::with_config(wal_config(&dir, SyncPolicy::Batch))
        .expect_err("existing WAL silently clobbered");
    assert!(
        err.to_string().contains("recover"),
        "error should point at Database::recover: {err}"
    );
}

#[test]
fn unlogged_write_entry_points_are_rejected_when_wal_is_on() {
    let dir = scratch("guards");
    let mut db = Database::with_config(wal_config(&dir, SyncPolicy::Batch)).unwrap();
    db.execute_sql(SCHEMA).unwrap();
    // `execute` takes a pre-parsed Statement with no source text, so a
    // write through it could never be logged — it must refuse.
    let stmt = parse_one(STATEMENTS[0]).unwrap();
    assert!(db.execute(stmt).is_err(), "unlogged execute accepted");
    let results = db.annotate_batch(vec![parse_one(STATEMENTS[0]).unwrap()]);
    assert!(results[0].is_err(), "unlogged annotate_batch accepted");
    // Reads are unaffected.
    assert!(db.execute(parse_one("SELECT p FROM t").unwrap()).is_ok());
}

#[test]
fn sync_policies_gate_fsyncs_at_the_database_level() {
    for (policy, check) in [
        // Always: one fsync per logged record, wal_sync is a no-op.
        (
            SyncPolicy::Always,
            &(|a: u64, s: u64| s >= a) as &dyn Fn(u64, u64) -> bool,
        ),
        // Batch: nothing synced until wal_sync is called.
        (SyncPolicy::Batch, &|_, s| s == 0),
        // Off: never synced, even by wal_sync.
        (SyncPolicy::Off, &|_, s| s == 0),
    ] {
        let dir = scratch(&format!("sync-{policy}"));
        let mut db = Database::with_config(wal_config(&dir, policy)).unwrap();
        db.execute_sql(SCHEMA).unwrap();
        db.execute_sql(STATEMENTS[0]).unwrap();
        let (appends, syncs) = db.wal_io_stats().unwrap();
        assert_eq!(appends, 2, "{policy}: two records logged");
        assert!(
            check(appends, syncs),
            "{policy}: {syncs} syncs after {appends} appends"
        );
        db.wal_sync().unwrap();
        let (_, syncs_after) = db.wal_io_stats().unwrap();
        match policy {
            SyncPolicy::Off => assert_eq!(syncs_after, 0, "off must never fsync"),
            _ => assert!(syncs_after >= 1),
        }
    }
}
