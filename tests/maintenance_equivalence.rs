//! Property tests for incremental maintenance: absorbing annotations one
//! at a time must produce exactly the summaries a from-scratch rebuild
//! produces, and the summarize-once digest cache must not change results.

use insightnotes::annotations::{AnnotationBody, ColSig};
use insightnotes::common::{ColumnId, RowId};
use insightnotes::engine::{Database, DbConfig};
use insightnotes::summaries::MaintenanceMode;
use proptest::prelude::*;

const TEXT_POOL: &[&str] = &[
    "eating stonewort near shore",
    "eating stonewort near lake today",
    "lesions parasites infection",
    "wingspan plumage measured",
    "reference photo attached survey",
    "diving foraging flocking",
];

#[derive(Debug, Clone)]
struct Stream {
    // (row index, column mask 1..=7, text index, multi_tuple)
    events: Vec<(usize, u8, usize, bool)>,
}

fn stream_strategy() -> impl Strategy<Value = Stream> {
    prop::collection::vec(
        (0usize..5, 1u8..8, 0usize..TEXT_POOL.len(), any::<bool>()),
        1..25,
    )
    .prop_map(|events| Stream { events })
}

const NUM_ROWS: usize = 5;

fn fresh_db(mode: MaintenanceMode) -> Database {
    let mut db = Database::with_config(DbConfig {
        maintenance: mode,
        ..DbConfig::default()
    })
    .unwrap();
    db.execute_sql(
        "CREATE TABLE t (p INT, q TEXT, r FLOAT);
         INSERT INTO t VALUES (1, 'one', 1.0), (2, 'two', 2.0), (3, 'three', 3.0),
                              (4, 'four', 4.0), (5, 'five', 5.0);
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER
           LABELS ('Behavior', 'Disease', 'Anatomy', 'Other')
           TRAIN ('Behavior': 'eating stonewort diving foraging',
                  'Disease': 'lesions parasites infection',
                  'Anatomy': 'wingspan plumage measured',
                  'Other': 'reference photo attached');
         CREATE SUMMARY INSTANCE K TYPE CLUSTER THRESHOLD 0.5;
         CREATE SUMMARY INSTANCE S TYPE SNIPPET MIN_SOURCE 60;
         LINK SUMMARY C TO t;
         LINK SUMMARY K TO t;
         LINK SUMMARY S TO t;",
    )
    .unwrap();
    db
}

fn replay(db: &mut Database, stream: &Stream) {
    for &(row, mask, text, multi) in &stream.events {
        let mut rows = vec![RowId::new((row % NUM_ROWS) as u64 + 1)];
        if multi {
            let other = (row % NUM_ROWS) as u64 % NUM_ROWS as u64 + 2;
            let other = if other > NUM_ROWS as u64 { 1 } else { other };
            if other != rows[0].raw() {
                rows.push(RowId::new(other));
            }
        }
        let mut cols = Vec::new();
        for bit in 0..3u16 {
            if mask & (1 << bit) != 0 {
                cols.push(ColumnId::new(bit));
            }
        }
        db.annotate_rows(
            "t",
            &rows,
            ColSig::of_columns(&cols),
            AnnotationBody::text(TEXT_POOL[text], "prop"),
        )
        .unwrap();
    }
}

fn all_objects(db: &Database) -> Vec<String> {
    let t = db.catalog().table_id("t").unwrap();
    let mut out = Vec::new();
    for rid in 1..=NUM_ROWS as u64 {
        for (inst, obj) in db.registry().objects_on(t, RowId::new(rid)) {
            out.push(format!("r{rid} {inst} {obj:?}"));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_equals_rebuild(stream in stream_strategy()) {
        let mut inc = fresh_db(MaintenanceMode::Incremental);
        let mut reb = fresh_db(MaintenanceMode::Rebuild);
        replay(&mut inc, &stream);
        replay(&mut reb, &stream);
        prop_assert_eq!(all_objects(&inc), all_objects(&reb));
    }

    #[test]
    fn digest_cache_does_not_change_results(stream in stream_strategy()) {
        let mut cached = fresh_db(MaintenanceMode::Incremental);
        let mut uncached = fresh_db(MaintenanceMode::Incremental);
        uncached.registry_mut().use_digest_cache = false;
        replay(&mut cached, &stream);
        replay(&mut uncached, &stream);
        prop_assert_eq!(all_objects(&cached), all_objects(&uncached));
    }

    #[test]
    fn summaries_track_annotation_counts_exactly(stream in stream_strategy()) {
        let mut db = fresh_db(MaintenanceMode::Incremental);
        replay(&mut db, &stream);
        let t = db.catalog().table_id("t").unwrap();
        let c = db.registry().instance_id("C").unwrap();
        for rid in 1..=NUM_ROWS as u64 {
            let expected = db.store().count_on_row(t, RowId::new(rid));
            if let Some(obj) = db.registry().object(t, RowId::new(rid), c) {
                // Every annotation contributes exactly once to the
                // classifier object.
                prop_assert_eq!(obj.annotation_count(), expected);
                let label_total: usize = (0..obj.component_count())
                    .map(|i| obj.zoom_ids(i).unwrap().len())
                    .sum();
                prop_assert_eq!(label_total, expected);
            } else {
                prop_assert_eq!(expected, 0);
            }
        }
    }
}

#[test]
fn rebuild_mode_digest_count_grows_linearly() {
    let mut db = fresh_db(MaintenanceMode::Rebuild);
    db.registry_mut().use_digest_cache = false;
    let mut last = 0usize;
    for i in 0..6 {
        let outcome = db
            .execute_sql(&format!(
                "ADD ANNOTATION 'eating stonewort {i}' ON t WHERE p = 1"
            ))
            .unwrap();
        let insightnotes::engine::ExecOutcome::Annotated { maintenance, .. } = &outcome[0] else {
            panic!()
        };
        // Rebuild digests each of the i+1 annotations for each of the 3
        // instances.
        assert_eq!(maintenance.digests_computed, (i + 1) * 3);
        assert!(maintenance.digests_computed > last);
        last = maintenance.digests_computed;
    }
}

#[test]
fn incremental_mode_digest_count_is_constant() {
    let mut db = fresh_db(MaintenanceMode::Incremental);
    for i in 0..6 {
        let outcome = db
            .execute_sql(&format!(
                "ADD ANNOTATION 'eating stonewort {i}' ON t WHERE p = 1"
            ))
            .unwrap();
        let insightnotes::engine::ExecOutcome::Annotated { maintenance, .. } = &outcome[0] else {
            panic!()
        };
        assert_eq!(maintenance.digests_computed, 3, "one digest per instance");
    }
}
