//! Property tests for the binary codec: every persisted type must
//! round-trip losslessly from arbitrary inputs, and corrupt input must
//! fail rather than mis-decode.

use insightnotes::common::codec::Encodable;
use insightnotes::common::IdSet;
use insightnotes::storage::{Row, Value};
use insightnotes::text::{NaiveBayes, SparseVector, Vocabulary};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks PartialEq-based comparison, and
        // grouping normalizes NaN anyway.
        prop::num::f64::NORMAL.prop_map(Value::Float),
        ".*".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn values_round_trip(v in value_strategy()) {
        prop_assert_eq!(Value::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn rows_round_trip(values in prop::collection::vec(value_strategy(), 0..12)) {
        let row = Row::new(values);
        prop_assert_eq!(Row::from_bytes(&row.to_bytes()).unwrap(), row);
    }

    #[test]
    fn idsets_round_trip(ids in prop::collection::btree_set(any::<u32>(), 0..200)) {
        let set: IdSet = ids.into_iter().map(u64::from).collect();
        let bytes = set.to_bytes();
        prop_assert_eq!(IdSet::from_bytes(&bytes).unwrap(), set);
    }

    #[test]
    fn idset_truncation_never_panics(
        ids in prop::collection::btree_set(any::<u32>(), 1..50),
        cut in 1usize..16,
    ) {
        let set: IdSet = ids.into_iter().map(u64::from).collect();
        let bytes = set.to_bytes();
        let cut = cut.min(bytes.len());
        // Must error (or, for a prefix that happens to parse, never panic).
        let _ = IdSet::from_bytes(&bytes[..bytes.len() - cut]);
    }

    #[test]
    fn sparse_vectors_round_trip(
        entries in prop::collection::btree_map(any::<u32>(), -100.0f32..100.0, 0..40)
    ) {
        let v = SparseVector::from_sorted_entries(entries.into_iter().collect());
        prop_assert_eq!(SparseVector::from_bytes(&v.to_bytes()).unwrap(), v);
    }

    #[test]
    fn vocabularies_round_trip(terms in prop::collection::btree_set("[a-z]{1,8}", 0..40)) {
        let mut vocab = Vocabulary::new();
        let ids: Vec<_> = terms.iter().map(|t| vocab.intern(t)).collect();
        if !ids.is_empty() {
            vocab.observe_doc(&ids);
        }
        let back = Vocabulary::from_bytes(&vocab.to_bytes()).unwrap();
        prop_assert_eq!(back.len(), vocab.len());
        for t in &terms {
            prop_assert_eq!(back.get(t), vocab.get(t));
        }
        prop_assert_eq!(back.num_docs(), vocab.num_docs());
    }

    #[test]
    fn trained_models_round_trip(
        docs in prop::collection::vec(("[a-z ]{4,30}", 0usize..3), 1..20)
    ) {
        let mut nb = NaiveBayes::new(vec!["x".into(), "y".into(), "z".into()]);
        for (text, label) in &docs {
            nb.train(*label, text);
        }
        let back = NaiveBayes::from_bytes(&nb.to_bytes()).unwrap();
        for (text, _) in &docs {
            prop_assert_eq!(back.classify(text), nb.classify(text));
        }
    }

    #[test]
    fn random_bytes_never_panic_decoders(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        // Decoding garbage may error — it must never panic or loop.
        let _ = Value::from_bytes(&bytes);
        let _ = Row::from_bytes(&bytes);
        let _ = IdSet::from_bytes(&bytes);
        let _ = SparseVector::from_bytes(&bytes);
        let _ = Vocabulary::from_bytes(&bytes);
    }
}

#[test]
fn snapshot_of_snapshot_is_identical() {
    use insightnotes::engine::persist::{restore, snapshot};
    use insightnotes::Database;
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (x INT, s TEXT);
         INSERT INTO t VALUES (1, 'a'), (2, NULL);
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('l') TRAIN ('l': 'w');
         LINK SUMMARY C TO t;
         ADD ANNOTATION 'w w' ON t WHERE x = 1;",
    )
    .unwrap();
    let first = snapshot(db.catalog(), db.store(), db.registry());
    let (catalog, store, registry, epoch, clock) = restore(&first).unwrap();
    assert_eq!((epoch, clock), (0, 0), "plain snapshots carry zero stamps");
    let second = snapshot(&catalog, &store, &registry);
    assert_eq!(first, second, "snapshots are canonical (fixed point)");
}
