//! Property tests for the summary-object algebra itself — the laws the
//! operator semantics rest on (DESIGN.md "exact summary algebra"):
//!
//! - classifier merge is commutative, associative, and idempotent
//!   (set-union semantics over contributing ids);
//! - projection composes: projecting twice equals projecting once with
//!   the composed map;
//! - for classifiers, project-then-merge equals merge-then-project — the
//!   object-level heart of Theorems 1–2 (the planner still projects
//!   first, because for *clusters* only the project-first order is
//!   well-defined);
//! - zoom-in ids always partition the object's contributing ids.

use insightnotes::annotations::ColSig;
use insightnotes::summaries::{object::ClassifierObject, Contribution, SummaryObject};
use proptest::prelude::*;
use std::sync::Arc;

const ARITY: u16 = 4;
const LABELS: usize = 3;

/// One annotation event: (id, label, non-empty column mask).
///
/// The label is a *function of the id* (`id % LABELS`): a summary
/// instance digests an annotation deterministically, so the same
/// annotation can never carry different labels on two objects of the
/// same instance. Column masks may differ per attachment (the same
/// annotation can cover different columns on different tuples).
type Event = (u64, usize, u8);

fn events() -> impl Strategy<Value = Vec<Event>> {
    prop::collection::vec((0u64..40, 1u8..(1 << ARITY)), 0..30).prop_map(|mut v| {
        v.sort_by_key(|e| e.0);
        v.dedup_by_key(|e| e.0);
        v.into_iter()
            .map(|(id, mask)| (id, (id % LABELS as u64) as usize, mask))
            .collect()
    })
}

fn classifier(events: &[Event]) -> SummaryObject {
    let labels: Arc<[String]> = (0..LABELS)
        .map(|i| format!("L{i}"))
        .collect::<Vec<_>>()
        .into();
    let mut obj = SummaryObject::Classifier(ClassifierObject::new(labels));
    for &(id, label, mask) in events {
        obj.apply(
            id,
            ColSig::from_bits(mask as u64),
            &Contribution::Label(label),
        )
        .unwrap();
    }
    obj
}

/// Keep columns whose bit is set in `mask`, compacted to low ordinals.
fn mask_remap(mask: u8) -> impl Fn(u16) -> Option<u16> {
    move |c: u16| {
        if c >= ARITY || mask & (1 << c) == 0 {
            return None;
        }
        // New ordinal = number of surviving columns below c.
        Some((0..c).filter(|&b| mask & (1 << b) != 0).count() as u16)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn classifier_merge_is_commutative(a in events(), b in events()) {
        let (oa, ob) = (classifier(&a), classifier(&b));
        let mut ab = oa.clone();
        ab.merge(&ob).unwrap();
        let mut ba = ob.clone();
        ba.merge(&oa).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn classifier_merge_is_associative(a in events(), b in events(), c in events()) {
        let (oa, ob, oc) = (classifier(&a), classifier(&b), classifier(&c));
        let mut left = oa.clone();
        left.merge(&ob).unwrap();
        left.merge(&oc).unwrap();
        let mut right_inner = ob.clone();
        right_inner.merge(&oc).unwrap();
        let mut right = oa.clone();
        right.merge(&right_inner).unwrap();
        prop_assert_eq!(left, right);
    }

    #[test]
    fn classifier_merge_is_idempotent(a in events()) {
        let oa = classifier(&a);
        let mut twice = oa.clone();
        twice.merge(&oa).unwrap();
        prop_assert_eq!(twice, oa);
    }

    #[test]
    fn projection_composes(a in events(), m1 in 0u8..16, m2 in 0u8..16) {
        let mut stepwise = classifier(&a);
        stepwise.project(&mask_remap(m1));
        // Second projection speaks the compacted ordinals of the first:
        // column j of the intermediate object came from the j-th set bit
        // of m1; it survives iff that ordinal's bit is set in m2.
        let surviving: Vec<u16> = (0..ARITY).filter(|&c| m1 & (1 << c) != 0).collect();
        let m2_on_new = |j: u16| -> Option<u16> {
            if (j as usize) < surviving.len() && m2 & (1 << j) != 0 {
                Some((0..j).filter(|&b| m2 & (1 << b) != 0).count() as u16)
            } else {
                None
            }
        };
        stepwise.project(&m2_on_new);

        // Composed mask over the ORIGINAL ordinals.
        let mut direct = classifier(&a);
        let composed = |c: u16| -> Option<u16> {
            let mid = mask_remap(m1)(c)?;
            m2_on_new(mid)
        };
        direct.project(&composed);
        prop_assert_eq!(stepwise, direct);
    }

    #[test]
    fn classifier_project_commutes_with_merge(a in events(), b in events(), mask in 0u8..16) {
        // Project both sides, then merge …
        let mut pa = classifier(&a);
        pa.project(&mask_remap(mask));
        let mut pb = classifier(&b);
        pb.project(&mask_remap(mask));
        pa.merge(&pb).unwrap();
        // … versus merge, then project.
        let mut merged = classifier(&a);
        merged.merge(&classifier(&b)).unwrap();
        merged.project(&mask_remap(mask));
        prop_assert_eq!(pa, merged);
    }

    #[test]
    fn zoom_ids_partition_contributing_ids(a in events()) {
        let obj = classifier(&a);
        let mut union = insightnotes::common::IdSet::new();
        let mut total = 0usize;
        for i in 0..obj.component_count() {
            let ids = obj.zoom_ids(i).unwrap();
            total += ids.len();
            union = union.union(&ids);
        }
        // Labels partition: no id in two labels, none lost.
        prop_assert_eq!(total, union.len());
        prop_assert_eq!(union, obj.all_ids());
    }

    #[test]
    fn projection_never_invents_ids(a in events(), mask in 0u8..16) {
        let before = classifier(&a);
        let mut after = before.clone();
        after.project(&mask_remap(mask));
        prop_assert!(after.all_ids().is_subset(&before.all_ids()));
        prop_assert!(after.annotation_count() <= before.annotation_count());
        // Full mask = identity on contributing ids.
        let mut identity = before.clone();
        identity.project(&mask_remap(0b1111));
        prop_assert_eq!(identity.all_ids(), before.all_ids());
    }
}
