//! Reproduces the paper's Figure 2 worked example end-to-end.
//!
//! Schema: `R(a, b, c, d)`, `S(x, y, z)`; query
//! `SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2`.
//!
//! The figure's invariants:
//! 1. the projection step removes the effect of annotations attached only
//!    to `r.c` / `r.d` / `s.y` — and of `s.x`, whose *value* survives for
//!    the join but whose annotations do not;
//! 2. the selection step changes no summaries;
//! 3. the join merges `ClassBird2` / `SimCluster` objects from both sides
//!    without double counting annotations attached to both tuples, while
//!    one-sided objects (`ClassBird1`, `TextSummary1`) propagate
//!    unchanged;
//! 4. dropping a cluster representative elects a replacement.

use insightnotes::annotations::ColSig;
use insightnotes::common::ColumnId;
use insightnotes::engine::Database;
use insightnotes::storage::Value;

const FIG2_QUERY: &str = "Select r.a, r.b, s.z From R r, S s Where r.a = s.x And r.b = 2";

/// Builds the Figure 2 database: both tables, two classifier instances,
/// a cluster instance, and a snippet instance; annotations placed on
/// specific columns.
fn figure2_db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE R (a INT, b INT, c TEXT, d TEXT);
         CREATE TABLE S (x INT, y TEXT, z TEXT);
         INSERT INTO R VALUES (1, 2, 'c-value', 'd-value');
         INSERT INTO S VALUES (1, 'y-value', 'z-value');
         CREATE SUMMARY INSTANCE ClassBird1 TYPE CLASSIFIER
           LABELS ('Behavior', 'Disease', 'Anatomy', 'Other')
           TRAIN ('Behavior': 'eating stonewort diving foraging',
                  'Disease': 'lesions parasites infection pox',
                  'Anatomy': 'wingspan plumage beak measured',
                  'Other': 'reference attached photo');
         CREATE SUMMARY INSTANCE ClassBird2 TYPE CLASSIFIER
           LABELS ('Provenance', 'Comment', 'Question')
           TRAIN ('Provenance': 'derived from banding station import',
                  'Comment': 'interesting observation noted nearby',
                  'Question': 'what why unclear verify which');
         CREATE SUMMARY INSTANCE SimCluster TYPE CLUSTER THRESHOLD 0.5;
         CREATE SUMMARY INSTANCE TextSummary1 TYPE SNIPPET MIN_SOURCE 200;
         LINK SUMMARY ClassBird1 TO R;
         LINK SUMMARY ClassBird2 TO R;
         LINK SUMMARY SimCluster TO R;
         LINK SUMMARY TextSummary1 TO R;
         LINK SUMMARY ClassBird2 TO S;
         LINK SUMMARY SimCluster TO S;",
    )
    .unwrap();
    db
}

/// Attaches an annotation to explicit columns of row 1 of `table`.
fn annotate(db: &mut Database, table: &str, cols: &[u16], text: &str) {
    let sig = if cols.is_empty() {
        let arity = db.catalog().table_by_name(table).unwrap().schema().arity();
        ColSig::whole_row(arity)
    } else {
        ColSig::of_columns(&cols.iter().map(|&c| ColumnId::new(c)).collect::<Vec<_>>())
    };
    db.annotate_rows(
        table,
        &[insightnotes::common::RowId::new(1)],
        sig,
        insightnotes::annotations::AnnotationBody::text(text, "demo"),
    )
    .unwrap();
}

#[test]
fn projection_removes_unneeded_column_annotations() {
    let mut db = figure2_db();
    // Whole-row behavior note survives; c-only and d-only notes vanish.
    annotate(&mut db, "R", &[], "eating stonewort diving");
    annotate(&mut db, "R", &[2], "lesions on sample c");
    annotate(&mut db, "R", &[3], "wingspan measured note d");

    let result = db.query(FIG2_QUERY).unwrap();
    assert_eq!(result.rows.len(), 1);
    let row = &result.rows[0];
    assert_eq!(
        row.row.values(),
        &[Value::Int(1), Value::Int(2), Value::Text("z-value".into())]
    );
    let inst = db.registry().instance_id("ClassBird1").unwrap();
    let class1 = row.summary(inst).unwrap().as_classifier().unwrap();
    assert_eq!(class1.count_by_name("Behavior"), Some(1));
    assert_eq!(
        class1.count_by_name("Disease"),
        Some(0),
        "r.c annotation removed"
    );
    assert_eq!(
        class1.count_by_name("Anatomy"),
        Some(0),
        "r.d annotation removed"
    );
}

#[test]
fn join_only_column_keeps_value_but_loses_annotations() {
    let mut db = figure2_db();
    // Annotation on s.x only: x is needed for the join but is not an
    // output column, so per the paper its annotations' effects are
    // removed before the merge.
    annotate(&mut db, "S", &[0], "derived from banding station");
    // Annotation on s.z: z is an output column; it survives.
    annotate(&mut db, "S", &[2], "interesting observation noted");

    let result = db.query(FIG2_QUERY).unwrap();
    let row = &result.rows[0];
    let inst = db.registry().instance_id("ClassBird2").unwrap();
    let class2 = row.summary(inst).unwrap().as_classifier().unwrap();
    assert_eq!(
        class2.count_by_name("Provenance"),
        Some(0),
        "s.x annotation must not reach the output"
    );
    assert_eq!(class2.count_by_name("Comment"), Some(1));
}

#[test]
fn selection_leaves_summaries_unchanged() {
    let mut db = figure2_db();
    annotate(&mut db, "R", &[0, 1], "eating stonewort");
    let (result, trace) = db
        .query_traced("SELECT r.a, r.b FROM R r WHERE r.b = 2")
        .unwrap();
    assert_eq!(result.rows.len(), 1);
    // Find the filter step and its input step; the summary rendering of
    // the surviving tuple must be identical across the two.
    let steps = &trace.steps;
    let filter_pos = steps.iter().position(|s| s.operator == "Filter").unwrap();
    assert!(filter_pos > 0);
    let before = &steps[filter_pos - 1].rows;
    let after = &steps[filter_pos].rows;
    assert_eq!(before, after, "selection must not transform summaries");
}

#[test]
fn join_merges_without_double_counting_shared_annotation() {
    let mut db = figure2_db();
    let r_table = db.catalog().table_id("r").unwrap();
    let s_table = db.catalog().table_id("s").unwrap();
    let row1 = insightnotes::common::RowId::new(1);

    // One annotation attached only to r's output columns.
    db.annotate_rows(
        "R",
        &[row1],
        ColSig::of_columns(&[ColumnId::new(0), ColumnId::new(1)]),
        insightnotes::annotations::AnnotationBody::text("interesting observation noted", "x"),
    )
    .unwrap();
    // The SAME annotation attached to both r (col a) and s (col z): the
    // paper's double-counting case — after the merge it must count once.
    db.annotate_targets(
        vec![
            (r_table, row1, ColSig::of_columns(&[ColumnId::new(0)])),
            (s_table, row1, ColSig::of_columns(&[ColumnId::new(2)])),
        ],
        insightnotes::annotations::AnnotationBody::text("interesting observation nearby", "y"),
    )
    .unwrap();

    let result = db.query(FIG2_QUERY).unwrap();
    let inst = db.registry().instance_id("ClassBird2").unwrap();
    let class2 = result.rows[0]
        .summary(inst)
        .unwrap()
        .as_classifier()
        .unwrap();
    // 1 (r-only) + 1 (shared, counted once) — not 3.
    assert_eq!(class2.count_by_name("Comment"), Some(2));
}

#[test]
fn one_sided_summary_objects_propagate_unchanged() {
    let mut db = figure2_db();
    annotate(&mut db, "R", &[0], "eating stonewort diving");
    let result = db.query(FIG2_QUERY).unwrap();
    let row = &result.rows[0];
    // ClassBird1 and TextSummary1 are linked to R only; ClassBird1 must
    // arrive with r's counts.
    let cb1 = db.registry().instance_id("ClassBird1").unwrap();
    assert_eq!(
        row.summary(cb1)
            .unwrap()
            .as_classifier()
            .unwrap()
            .count_by_name("Behavior"),
        Some(1)
    );
}

#[test]
fn cluster_representative_reelected_when_dropped() {
    let mut db = figure2_db();
    // Two near-identical notes: the first (on column c only) founds the
    // cluster and is its representative; the second (whole row) follows.
    annotate(&mut db, "R", &[2], "eating stonewort near shore");
    annotate(&mut db, "R", &[], "eating stonewort near lake");

    let sim = db.registry().instance_id("SimCluster").unwrap();
    let before = db
        .registry()
        .object(
            db.catalog().table_id("r").unwrap(),
            insightnotes::common::RowId::new(1),
            sim,
        )
        .unwrap()
        .as_cluster()
        .unwrap()
        .groups();
    assert_eq!(before.len(), 1);
    assert_eq!(before[0].size, 2);
    let founder = before[0].representative.unwrap();

    // Projecting out r.c drops the founder; the follower takes over.
    let result = db.query(FIG2_QUERY).unwrap();
    let groups = result.rows[0]
        .summary(sim)
        .unwrap()
        .as_cluster()
        .unwrap()
        .groups();
    assert_eq!(groups.len(), 1);
    assert_eq!(groups[0].size, 1);
    let rep = groups[0].representative.unwrap();
    assert_ne!(rep, founder, "a new representative must be elected");
}

#[test]
fn snippet_object_drops_documents_of_projected_columns() {
    let mut db = figure2_db();
    let article = "Swan goose breeding range observations. ".repeat(20);
    // Document attached to r.d → dropped by the projection.
    db.annotate_rows(
        "R",
        &[insightnotes::common::RowId::new(1)],
        ColSig::of_columns(&[ColumnId::new(3)]),
        insightnotes::annotations::AnnotationBody::text("see article", "demo")
            .with_document(&article),
    )
    .unwrap();
    // Document attached to the output columns → survives.
    db.annotate_rows(
        "R",
        &[insightnotes::common::RowId::new(1)],
        ColSig::of_columns(&[ColumnId::new(0), ColumnId::new(1)]),
        insightnotes::annotations::AnnotationBody::text("experiment writeup", "demo")
            .with_document(&article),
    )
    .unwrap();

    let ts = db.registry().instance_id("TextSummary1").unwrap();
    let result = db.query(FIG2_QUERY).unwrap();
    let snip = result.rows[0].summary(ts).unwrap().as_snippet().unwrap();
    assert_eq!(
        snip.entries().len(),
        1,
        "only the a/b-attached document survives"
    );
}

#[test]
fn trace_shows_pipeline_steps_in_order() {
    let mut db = figure2_db();
    annotate(&mut db, "R", &[], "eating stonewort");
    let (_, trace) = db.query_traced(FIG2_QUERY).unwrap();
    let ops: Vec<&str> = trace.steps.iter().map(|s| s.operator.as_str()).collect();
    // Post-order execution: scans/filters/projections feed the join,
    // which feeds the final projection.
    assert!(ops.contains(&"Scan"));
    assert!(ops.contains(&"Filter"));
    assert!(ops.contains(&"Join"));
    assert_eq!(*ops.last().unwrap(), "Project");
    let join_pos = ops.iter().position(|&o| o == "Join").unwrap();
    let first_project = ops.iter().position(|&o| o == "Project").unwrap();
    assert!(
        first_project < join_pos,
        "projection must run before the merge (Theorems 1–2): {ops:?}"
    );
    let rendered = trace.to_string();
    assert!(
        rendered.contains("ClassBird1"),
        "trace renders summary objects"
    );
}
