//! Edge cases and failure injection across the whole stack.

use insightnotes::annotations::{AnnotationBody, ColSig};
use insightnotes::common::RowId;
use insightnotes::engine::ExecOutcome;
use insightnotes::storage::Value;
use insightnotes::Database;

#[test]
fn queries_over_empty_tables() {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE t (x INT, y TEXT)").unwrap();
    assert!(db.query("SELECT x FROM t").unwrap().rows.is_empty());
    assert!(db
        .query("SELECT DISTINCT y FROM t")
        .unwrap()
        .rows
        .is_empty());
    assert!(db
        .query("SELECT a.x FROM t a, t b WHERE a.x = b.x")
        .unwrap()
        .rows
        .is_empty());
    // Global aggregate still yields one row.
    let agg = db.query("SELECT COUNT(*), SUM(x) FROM t").unwrap();
    assert_eq!(agg.rows[0].row[0], Value::Int(0));
    assert!(agg.rows[0].row[1].is_null());
    // Grouped aggregate over empty input yields no groups.
    assert!(db
        .query("SELECT y, COUNT(*) FROM t GROUP BY y")
        .unwrap()
        .rows
        .is_empty());
}

#[test]
fn unicode_annotations_round_trip_through_everything() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (name TEXT);
         INSERT INTO t VALUES ('Спящая гусыня');
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('заметка')
           TRAIN ('заметка': 'видел гуся у озера');
         LINK SUMMARY C TO t;
         ADD ANNOTATION 'видел гуся 🦢 у озера' AUTHOR 'алиса' ON t;",
    )
    .unwrap();
    let result = db.query("SELECT name FROM t").unwrap();
    assert_eq!(result.rows[0].row[0], Value::Text("Спящая гусыня".into()));
    let out = db
        .execute_sql(&format!(
            "ZOOMIN REFERENCE QID {} ON C INDEX 1",
            result.qid.raw()
        ))
        .unwrap();
    let ExecOutcome::ZoomIn(z) = &out[0] else {
        panic!()
    };
    assert_eq!(z.annotations[0].text, "видел гуся 🦢 у озера");
    assert_eq!(z.annotations[0].author, "алиса");

    // And through a snapshot.
    let path = std::env::temp_dir().join(format!(
        "insightnotes-edge-unicode-{}.indb",
        std::process::id()
    ));
    db.save(&path).unwrap();
    let reopened = Database::open(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reopened.store().stats().count, 1);
}

#[test]
fn column_limit_is_enforced() {
    let mut db = Database::new();
    let cols: Vec<String> = (0..65).map(|i| format!("c{i} INT")).collect();
    let err = db
        .execute_sql(&format!("CREATE TABLE wide ({})", cols.join(", ")))
        .unwrap_err();
    assert_eq!(err.class(), "catalog");
    // 64 columns is fine.
    let cols: Vec<String> = (0..64).map(|i| format!("c{i} INT")).collect();
    db.execute_sql(&format!("CREATE TABLE wide ({})", cols.join(", ")))
        .unwrap();
}

#[test]
fn whole_row_annotation_on_64_column_table() {
    let mut db = Database::new();
    let cols: Vec<String> = (0..64).map(|i| format!("c{i} INT")).collect();
    db.execute_sql(&format!("CREATE TABLE wide ({})", cols.join(", ")))
        .unwrap();
    let vals: Vec<String> = (0..64).map(|i| i.to_string()).collect();
    db.execute_sql(&format!("INSERT INTO wide VALUES ({})", vals.join(", ")))
        .unwrap();
    db.execute_sql(
        "CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('n') TRAIN ('n': 'w');
         LINK SUMMARY C TO wide;
         ADD ANNOTATION 'w w' ON wide;",
    )
    .unwrap();
    // Projecting to one column keeps the whole-row annotation.
    let result = db.query("SELECT c63 FROM wide").unwrap();
    let inst = db.registry().instance_id("C").unwrap();
    assert_eq!(result.rows[0].summary(inst).unwrap().annotation_count(), 1);
}

#[test]
fn zoomin_on_rows_without_objects_is_empty_not_an_error() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (x INT);
         INSERT INTO t VALUES (1), (2);
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('n') TRAIN ('n': 'w');
         LINK SUMMARY C TO t;
         ADD ANNOTATION 'w' ON t WHERE x = 1;",
    )
    .unwrap();
    let result = db.query("SELECT x FROM t").unwrap();
    // Zoom over the unannotated tuple only.
    let out = db
        .execute_sql(&format!(
            "ZOOMIN REFERENCE QID {} WHERE x = 2 ON C INDEX 1",
            result.qid.raw()
        ))
        .unwrap();
    let ExecOutcome::ZoomIn(z) = &out[0] else {
        panic!()
    };
    assert_eq!(z.matched_rows, 1);
    assert!(z.annotations.is_empty());
}

#[test]
fn huge_annotation_documents_are_handled() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (x INT);
         INSERT INTO t VALUES (1);
         CREATE SUMMARY INSTANCE S TYPE SNIPPET MAX_SENTENCES 2 MIN_SOURCE 100;
         LINK SUMMARY S TO t;",
    )
    .unwrap();
    let doc = "A sentence about geese near the lake shore. ".repeat(5000); // ~220 KB
    db.annotate_rows(
        "t",
        &[RowId::new(1)],
        ColSig::whole_row(1),
        AnnotationBody::text("huge doc", "x").with_document(&doc),
    )
    .unwrap();
    let result = db.query("SELECT x FROM t").unwrap();
    let inst = db.registry().instance_id("S").unwrap();
    let snip = result.rows[0].summary(inst).unwrap().as_snippet().unwrap();
    assert_eq!(snip.entries().len(), 1);
    assert!(snip.entries()[0].snippet.len() < 512);
    assert_eq!(snip.entries()[0].source_bytes as usize, doc.len());
}

#[test]
fn annotations_survive_row_value_not_row_identity() {
    // Deleting a row and inserting an identical one must NOT revive the
    // old row's annotations (stable, never-reused row ids).
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (x INT);
         INSERT INTO t VALUES (7);
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('n') TRAIN ('n': 'w');
         LINK SUMMARY C TO t;
         ADD ANNOTATION 'w' ON t WHERE x = 7;
         DELETE FROM t WHERE x = 7;
         INSERT INTO t VALUES (7);",
    )
    .unwrap();
    let result = db.query("SELECT x FROM t").unwrap();
    assert_eq!(result.rows.len(), 1);
    assert!(
        result.rows[0].summaries.is_empty(),
        "no resurrected metadata"
    );
    assert_eq!(db.store().stats().count, 0);
}

#[test]
fn sql_injectionish_strings_are_plain_data() {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE t (s TEXT)").unwrap();
    db.execute_sql("INSERT INTO t VALUES ('Robert''); DROP TABLE t; --')")
        .unwrap();
    let result = db.query("SELECT s FROM t").unwrap();
    assert_eq!(
        result.rows[0].row[0],
        Value::Text("Robert'); DROP TABLE t; --".into())
    );
    // Table is intact.
    assert!(db.query("SELECT s FROM t").is_ok());
}

#[test]
fn nulls_flow_through_the_whole_pipeline() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (x INT, y INT);
         INSERT INTO t VALUES (1, NULL), (NULL, 2), (1, 3), (NULL, NULL);",
    )
    .unwrap();
    // NULL keys never join.
    let joined = db
        .query("SELECT a.x FROM t a, t b WHERE a.x = b.y")
        .unwrap();
    assert_eq!(
        joined.rows.len(),
        0,
        "x=1 never equals any y of (NULL,2,3,NULL)"
    );
    // But NULLs group together.
    let grouped = db
        .query("SELECT x, COUNT(*) AS n FROM t GROUP BY x ORDER BY n DESC")
        .unwrap();
    assert_eq!(grouped.rows.len(), 2);
    assert_eq!(grouped.rows[0].row[1], Value::Int(2));
    // IS NULL selects them.
    let nulls = db.query("SELECT y FROM t WHERE x IS NULL").unwrap();
    assert_eq!(nulls.rows.len(), 2);
}

#[test]
fn multi_target_annotation_deleted_once_refreshes_all_rows() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (x INT);
         INSERT INTO t VALUES (1), (2);
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('n') TRAIN ('n': 'w');
         LINK SUMMARY C TO t;",
    )
    .unwrap();
    let tid = db.catalog().table_id("t").unwrap();
    let id = db
        .annotate_targets(
            vec![
                (tid, RowId::new(1), ColSig::whole_row(1)),
                (tid, RowId::new(2), ColSig::whole_row(1)),
            ],
            AnnotationBody::text("shared w", "x"),
        )
        .unwrap();
    let out = db.delete_annotation(id).unwrap();
    let ExecOutcome::AnnotationDeleted { rows_refreshed, .. } = out else {
        panic!()
    };
    assert_eq!(rows_refreshed, 2);
    let inst = db.registry().instance_id("C").unwrap();
    for rid in [1u64, 2] {
        assert!(db.registry().object(tid, RowId::new(rid), inst).is_none());
    }
}

#[test]
fn very_long_conjunction_parses_and_plans() {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE t (x INT); INSERT INTO t VALUES (5)")
        .unwrap();
    let conjuncts: Vec<String> = (0..64).map(|i| format!("x <> {}", 1000 + i)).collect();
    let sql = format!("SELECT x FROM t WHERE {}", conjuncts.join(" AND "));
    assert_eq!(db.query(&sql).unwrap().rows.len(), 1);
}

#[test]
fn deeply_nested_parentheses_do_not_overflow() {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE t (x INT); INSERT INTO t VALUES (5)")
        .unwrap();
    let expr = format!("{}x = 5{}", "(".repeat(60), ")".repeat(60));
    assert_eq!(
        db.query(&format!("SELECT x FROM t WHERE {expr}"))
            .unwrap()
            .rows
            .len(),
        1
    );
}

#[test]
fn self_join_of_annotated_table_is_exact_under_projection() {
    // The same tuple on both join sides: its object merges with itself
    // (idempotent), never double counting.
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (x INT);
         INSERT INTO t VALUES (1);
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('n') TRAIN ('n': 'w');
         LINK SUMMARY C TO t;
         ADD ANNOTATION 'w one' ON t;
         ADD ANNOTATION 'w two' ON t;",
    )
    .unwrap();
    let result = db
        .query("SELECT a.x, b.x FROM t a, t b WHERE a.x = b.x")
        .unwrap();
    assert_eq!(result.rows.len(), 1);
    let inst = db.registry().instance_id("C").unwrap();
    assert_eq!(
        result.rows[0].summary(inst).unwrap().annotation_count(),
        2,
        "self-merge must be idempotent"
    );
}
