//! Integration tests over the seeded AKN-style workload: the full system
//! running at realistic annotation ratios.

use insightnotes::engine::ExecOutcome;
use insightnotes::workload::{seed_birds_database, QueryGen, WorkloadConfig};
use insightnotes::Database;

fn config(num_birds: usize, ratio: f64) -> WorkloadConfig {
    WorkloadConfig {
        num_birds,
        annotation_ratio: ratio,
        ..WorkloadConfig::default()
    }
}

#[test]
fn thirty_x_ratio_database_summarizes_everything() {
    let mut db = Database::new();
    let stats = seed_birds_database(&mut db, &config(20, 30.0)).unwrap();
    assert_eq!(stats.annotations, 600);

    // Every annotation is absorbed by the classifier object of its row.
    let t = db.catalog().table_id("birds").unwrap();
    let classifier = db.registry().instance_id("ClassBird1").unwrap();
    let mut covered = 0usize;
    for rid in db.store().annotated_rows(t) {
        let obj = db
            .registry()
            .object(t, rid, classifier)
            .expect("object exists");
        assert_eq!(obj.annotation_count(), db.store().count_on_row(t, rid));
        covered += obj.annotation_count();
    }
    assert!(
        covered >= stats.annotations,
        "multi-target annotations count per row"
    );
}

#[test]
fn summaries_compress_raw_annotations() {
    let mut db = Database::new();
    // 10% of annotations carry attached documents — the "large object"
    // annotations (articles, reports) that motivate the Snippet type.
    seed_birds_database(
        &mut db,
        &WorkloadConfig {
            num_birds: 20,
            annotation_ratio: 60.0,
            document_rate: 0.1,
            ..WorkloadConfig::default()
        },
    )
    .unwrap();
    let raw_bytes = db.store().stats().content_bytes;
    let summary_bytes = db.registry().total_object_bytes();
    // The whole point of the paper: summaries are much smaller than the
    // raw annotations they stand for (documents dominate the raw side).
    assert!(
        summary_bytes < raw_bytes,
        "summaries ({summary_bytes} B) must be smaller than raw ({raw_bytes} B)"
    );

    // And radically fewer objects than annotations: 3 objects per tuple
    // versus dozens of raw annotations.
    let objects = db.registry().object_count();
    let annotations = db.store().stats().count;
    assert!(objects <= 3 * 20);
    assert!(annotations >= 20 * 60);
}

#[test]
fn generated_query_workload_runs_clean() {
    let mut db = Database::new();
    seed_birds_database(&mut db, &config(25, 10.0)).unwrap();
    let mut gen = QueryGen::new(7, 25);
    for _ in 0..25 {
        let sql = gen.next_query();
        let result = db
            .query(&sql)
            .unwrap_or_else(|e| panic!("query `{sql}` failed: {e}"));
        // Aggregate queries return groups; scans return rows; every result
        // gets a QID and is zoomable in principle.
        assert!(result.qid.raw() > 100);
    }
    assert_eq!(db.zoom().query_count(), 25);
}

#[test]
fn zoomin_over_workload_results_returns_real_annotations() {
    let mut db = Database::new();
    seed_birds_database(&mut db, &config(15, 20.0)).unwrap();
    let result = db.query("SELECT id, name, weight FROM birds").unwrap();
    let qid = result.qid.raw();
    // Zoom into the Behavior label across all tuples.
    let outcomes = db
        .execute_sql(&format!(
            "ZOOMIN REFERENCE QID {qid} ON ClassBird1 LABEL 'Behavior'"
        ))
        .unwrap();
    let ExecOutcome::ZoomIn(z) = &outcomes[0] else {
        panic!()
    };
    assert!(z.from_cache);
    assert!(!z.annotations.is_empty());
    // Each retrieved annotation is a real stored annotation.
    for a in &z.annotations {
        assert!(!a.text.is_empty());
        assert!(a.author.starts_with("watcher"));
    }
}

#[test]
fn classifier_tracks_ground_truth_above_chance() {
    use insightnotes::text::NaiveBayes;
    use insightnotes::workload::{BirdGen, ANNOTATION_CLASSES};
    let mut gen = BirdGen::new(99);
    let mut nb = NaiveBayes::new(
        ANNOTATION_CLASSES
            .iter()
            .map(std::string::ToString::to_string)
            .collect(),
    );
    for (class, text) in gen.training_corpus(20) {
        nb.train(class, &text);
    }
    let mut correct = 0usize;
    let total = 300usize;
    for _ in 0..total {
        let ann = gen.annotation(0.0, 0.0);
        if nb.classify(&ann.text) == ann.class {
            correct += 1;
        }
    }
    let accuracy = correct as f64 / total as f64;
    assert!(
        accuracy > 0.6,
        "classifier accuracy {accuracy} should beat 0.25 chance comfortably"
    );
}

#[test]
fn snippet_objects_compress_documents() {
    let mut db = Database::new();
    let stats = seed_birds_database(
        &mut db,
        &WorkloadConfig {
            num_birds: 10,
            annotation_ratio: 20.0,
            document_rate: 0.3,
            ..WorkloadConfig::default()
        },
    )
    .unwrap();
    assert!(stats.documents > 10);
    let t = db.catalog().table_id("birds").unwrap();
    let snip = db.registry().instance_id("TextSummary1").unwrap();
    let mut entries = 0usize;
    for rid in db.store().annotated_rows(t) {
        if let Some(obj) = db.registry().object(t, rid, snip) {
            let s = obj.as_snippet().unwrap();
            for e in s.entries() {
                assert!(
                    (e.snippet.len() as u64) < e.source_bytes,
                    "snippet must be shorter than its source"
                );
                entries += 1;
            }
        }
    }
    assert!(entries > 0, "documents produced snippet entries");
}

#[test]
fn cluster_objects_group_near_duplicates() {
    let mut db = Database::new();
    seed_birds_database(
        &mut db,
        &WorkloadConfig {
            num_birds: 5,
            annotation_ratio: 40.0,
            duplicate_rate: 0.6,
            ..WorkloadConfig::default()
        },
    )
    .unwrap();
    let t = db.catalog().table_id("birds").unwrap();
    let sim = db.registry().instance_id("SimCluster").unwrap();
    let mut any_multi_group = false;
    for rid in db.store().annotated_rows(t) {
        if let Some(obj) = db.registry().object(t, rid, sim) {
            let c = obj.as_cluster().unwrap();
            let groups = c.groups();
            let members: usize = groups.iter().map(|g| g.size).sum();
            // Grouping must compress: fewer groups than members overall.
            if members >= 5 {
                assert!(
                    groups.len() < members,
                    "row {rid}: {members} members in {} groups",
                    groups.len()
                );
                any_multi_group = true;
            }
        }
    }
    assert!(
        any_multi_group,
        "expected at least one heavily annotated row"
    );
}

#[test]
fn gene_workload_builds_a_second_domain() {
    use insightnotes::workload::genes::{GeneGen, GENES_DDL, GENE_CLASSES};
    let mut db = Database::new();
    db.execute_sql(GENES_DDL).unwrap();
    let mut gen = GeneGen::new(3);
    let corpus = gen.training_corpus(10);
    let pairs: Vec<String> = corpus
        .iter()
        .map(|(c, t)| format!("'{}': '{t}'", GENE_CLASSES[*c]))
        .collect();
    db.execute_sql(&format!(
        "CREATE SUMMARY INSTANCE GeneClass TYPE CLASSIFIER LABELS ({}) TRAIN ({})",
        GENE_CLASSES
            .iter()
            .map(|c| format!("'{c}'"))
            .collect::<Vec<_>>()
            .join(", "),
        pairs.join(", ")
    ))
    .unwrap();
    db.execute_sql("LINK SUMMARY GeneClass TO genes").unwrap();
    for r in gen.records(10) {
        db.execute_sql(&format!(
            "INSERT INTO genes VALUES ({}, '{}', '{}', {}, '{}')",
            r.id, r.symbol, r.organism, r.seq_len, r.description
        ))
        .unwrap();
    }
    for i in 0..50 {
        let (_, text) = gen.annotation();
        db.execute_sql(&format!(
            "ADD ANNOTATION '{text}' ON genes WHERE id = {}",
            i % 10 + 1
        ))
        .unwrap();
    }
    let result = db
        .query("SELECT symbol FROM genes WHERE SUMMARY_COUNT(GeneClass, 'Provenance') > 0")
        .unwrap();
    assert!(!result.rows.is_empty());
}
