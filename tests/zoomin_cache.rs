//! Zoom-in query processing end-to-end (paper §2.2 / Figure 3) and the
//! disk result cache behind it.

use insightnotes::engine::{Database, DbConfig, ExecOutcome};
use insightnotes::storage::Value;

/// Figure 3's setup: tuples with refuting/approving annotations and an
/// attached article.
fn figure3_db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (c1 TEXT, c2 TEXT, c3 INT);
         INSERT INTO t VALUES ('x', 'y', 5), ('x', 'y', 10);
         CREATE SUMMARY INSTANCE NaiveBayesClass TYPE CLASSIFIER
           LABELS ('refute', 'approve')
           TRAIN ('refute': 'wrong invalid verification needs',
                  'approve': 'confirmed correct verified valid');
         CREATE SUMMARY INSTANCE TextSummary TYPE SNIPPET MIN_SOURCE 100;
         LINK SUMMARY NaiveBayesClass TO t;
         LINK SUMMARY TextSummary TO t;
         ADD ANNOTATION 'Value 5 is wrong' ON t WHERE c3 = 5;
         ADD ANNOTATION 'Needs verification' ON t WHERE c3 = 10;
         ADD ANNOTATION 'Invalid experiment data wrong' ON t WHERE c3 = 10;
         ADD ANNOTATION 'confirmed correct by follow-up' ON t WHERE c3 = 5;",
    )
    .unwrap();
    let article = "Wikipedia article about the observed phenomenon. ".repeat(10);
    db.execute_sql(&format!(
        "ADD ANNOTATION 'wikipedia link' DOCUMENT '{article}' ON t WHERE c3 = 5"
    ))
    .unwrap();
    db
}

#[test]
fn zoomin_retrieves_refuting_annotations_per_figure3a() {
    let mut db = figure3_db();
    let result = db.query("SELECT c1, c2, c3 FROM t").unwrap();
    let qid = result.qid.raw();

    // Figure 3(a): ZoomIn on the 'refute' label (index 1) over both rows.
    let outcomes = db
        .execute_sql(&format!(
            "ZoomIn Reference QID {qid} Where c1 = 'x' On NaiveBayesClass Index 1"
        ))
        .unwrap();
    let ExecOutcome::ZoomIn(z) = &outcomes[0] else {
        panic!()
    };
    assert_eq!(z.matched_rows, 2);
    assert_eq!(z.annotations.len(), 3, "one refute on r1, two on r2");
    assert!(z.annotations.iter().any(|a| a.text == "Value 5 is wrong"));
    assert!(z.from_cache);
}

#[test]
fn zoomin_by_label_name_and_with_predicate() {
    let mut db = figure3_db();
    let result = db.query("SELECT c1, c2, c3 FROM t").unwrap();
    let qid = result.qid.raw();
    let outcomes = db
        .execute_sql(&format!(
            "ZOOMIN REFERENCE QID {qid} WHERE c3 = 10 ON NaiveBayesClass LABEL 'refute'"
        ))
        .unwrap();
    let ExecOutcome::ZoomIn(z) = &outcomes[0] else {
        panic!()
    };
    assert_eq!(z.matched_rows, 1);
    assert_eq!(z.annotations.len(), 2);
}

#[test]
fn zoomin_retrieves_document_per_figure3b() {
    let mut db = figure3_db();
    let result = db.query("SELECT c1, c2, c3 FROM t").unwrap();
    let qid = result.qid.raw();
    // Figure 3(b): retrieve the article attached to the c3 = 5 tuple.
    let outcomes = db
        .execute_sql(&format!(
            "ZOOMIN REFERENCE QID {qid} WHERE c3 = 5 ON TextSummary INDEX 1"
        ))
        .unwrap();
    let ExecOutcome::ZoomIn(z) = &outcomes[0] else {
        panic!()
    };
    assert_eq!(z.annotations.len(), 1);
    let doc = z.annotations[0].document.as_ref().expect("full document");
    assert!(doc.contains("Wikipedia article"));
    assert!(doc.len() > 400, "the complete article, not the snippet");
}

#[test]
fn zoomin_errors_on_bad_references() {
    let mut db = figure3_db();
    let result = db.query("SELECT c1, c2, c3 FROM t").unwrap();
    let qid = result.qid.raw();
    assert_eq!(
        db.execute_sql("ZOOMIN REFERENCE QID 99999 ON NaiveBayesClass INDEX 1")
            .unwrap_err()
            .class(),
        "zoomin"
    );
    assert_eq!(
        db.execute_sql(&format!(
            "ZOOMIN REFERENCE QID {qid} ON NaiveBayesClass INDEX 0"
        ))
        .unwrap_err()
        .class(),
        "zoomin"
    );
    assert_eq!(
        db.execute_sql(&format!("ZOOMIN REFERENCE QID {qid} ON Missing INDEX 1"))
            .unwrap_err()
            .class(),
        "summary"
    );
    assert_eq!(
        db.execute_sql(&format!(
            "ZOOMIN REFERENCE QID {qid} ON NaiveBayesClass LABEL 'nope'"
        ))
        .unwrap_err()
        .class(),
        "summary"
    );
}

#[test]
fn zoomin_on_cluster_groups_returns_members() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (x INT);
         INSERT INTO t VALUES (1);
         CREATE SUMMARY INSTANCE SC TYPE CLUSTER THRESHOLD 0.5;
         LINK SUMMARY SC TO t;
         ADD ANNOTATION 'eating stonewort near shore' ON t;
         ADD ANNOTATION 'eating stonewort near lake' ON t;
         ADD ANNOTATION 'wingspan measured at dawn' ON t;",
    )
    .unwrap();
    let result = db.query("SELECT x FROM t").unwrap();
    let qid = result.qid.raw();
    let outcomes = db
        .execute_sql(&format!("ZOOMIN REFERENCE QID {qid} ON SC INDEX 1"))
        .unwrap();
    let ExecOutcome::ZoomIn(z) = &outcomes[0] else {
        panic!()
    };
    assert_eq!(
        z.annotations.len(),
        2,
        "first group holds the two near-dupes"
    );
    assert!(z.annotations.iter().all(|a| a.text.contains("stonewort")));
}

#[test]
fn evicted_results_are_reexecuted_transparently() {
    // A cache too small for any result forces the re-execution path.
    let mut db = Database::with_config(DbConfig {
        cache_budget: 8,
        ..DbConfig::default()
    })
    .unwrap();
    db.execute_sql(
        "CREATE TABLE t (x INT);
         INSERT INTO t VALUES (1), (2);
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('note') TRAIN ('note': 'word');
         LINK SUMMARY C TO t;
         ADD ANNOTATION 'word note' ON t WHERE x = 1;",
    )
    .unwrap();
    let result = db.query("SELECT x FROM t").unwrap();
    let qid = result.qid.raw();
    assert_eq!(
        db.zoom().cache().stats().rejected,
        1,
        "result too big to cache"
    );

    let outcomes = db
        .execute_sql(&format!(
            "ZOOMIN REFERENCE QID {qid} WHERE x = 1 ON C INDEX 1"
        ))
        .unwrap();
    let ExecOutcome::ZoomIn(z) = &outcomes[0] else {
        panic!()
    };
    assert!(!z.from_cache, "must re-execute the retained plan");
    assert_eq!(z.annotations.len(), 1);
    assert_eq!(z.annotations[0].text, "word note");
}

#[test]
fn reexecution_reflects_current_database_state() {
    let mut db = Database::with_config(DbConfig {
        cache_budget: 8,
        ..DbConfig::default()
    })
    .unwrap();
    db.execute_sql(
        "CREATE TABLE t (x INT);
         INSERT INTO t VALUES (1);
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('note') TRAIN ('note': 'word');
         LINK SUMMARY C TO t;
         ADD ANNOTATION 'first' ON t;",
    )
    .unwrap();
    let qid = db.query("SELECT x FROM t").unwrap().qid.raw();
    // A second annotation lands after the query ran; re-execution (cache
    // rejected everything) sees it. This mirrors the paper's model where
    // the cache trades staleness bounds for latency — the uncached path
    // is always current.
    db.execute_sql("ADD ANNOTATION 'second' ON t").unwrap();
    let outcomes = db
        .execute_sql(&format!("ZOOMIN REFERENCE QID {qid} ON C INDEX 1"))
        .unwrap();
    let ExecOutcome::ZoomIn(z) = &outcomes[0] else {
        panic!()
    };
    assert_eq!(z.annotations.len(), 2);
}

/// Regression test: cached zoom results (and the QID result cache
/// behind them) must not serve annotations after a lifecycle statement
/// removes them. Before the fix, `RETRACT`/`DELETE`/`CORRECT` left the
/// cached entries untouched and a repeated zoom-in returned the stale
/// annotation set.
#[test]
fn lifecycle_ops_invalidate_cached_zoom_results() {
    let mut db = figure3_db();
    let qid = db.query("SELECT c1, c2, c3 FROM t").unwrap().qid.raw();
    fn refuters(db: &mut Database, qid: u64) -> Vec<String> {
        let outcomes = db
            .execute_sql(&format!(
                "ZOOMIN REFERENCE QID {qid} ON NaiveBayesClass INDEX 1"
            ))
            .unwrap();
        let ExecOutcome::ZoomIn(z) = &outcomes[0] else {
            panic!()
        };
        z.annotations.iter().map(|a| a.text.clone()).collect()
    }
    let first = refuters(&mut db, qid);
    assert_eq!(first.len(), 3, "all refuting annotations before curation");
    assert!(first.contains(&"Value 5 is wrong".to_string()));

    // Retract #1 ('Value 5 is wrong'): the cached zoom result for this
    // QID must stop serving it.
    db.execute_sql("RETRACT ANNOTATION 1").unwrap();
    let after_retract = refuters(&mut db, qid);
    assert!(
        !after_retract.contains(&"Value 5 is wrong".to_string()),
        "zoom served a retracted annotation from the cache"
    );
    assert_eq!(after_retract.len(), 2);

    // Hard-delete #3: same contract for the pre-lifecycle path.
    db.execute_sql("DELETE ANNOTATION 3").unwrap();
    let after_delete = refuters(&mut db, qid);
    assert!(!after_delete.contains(&"Invalid experiment data wrong".to_string()));
    assert_eq!(after_delete.len(), 1);

    // Correct #2: the successor's (still refuting) text replaces the
    // predecessor's in the zoomed set.
    db.execute_sql("CORRECT ANNOTATION 2 'wrong invalid verification still needs work'")
        .unwrap();
    let after_correct = refuters(&mut db, qid);
    assert!(!after_correct.contains(&"Needs verification".to_string()));
    assert!(after_correct.contains(&"wrong invalid verification still needs work".to_string()));
}

#[test]
fn query_results_get_distinct_qids_and_cache_entries() {
    let db = figure3_db();
    let a = db.query("SELECT c1 FROM t").unwrap();
    let b = db.query("SELECT c2 FROM t").unwrap();
    assert_ne!(a.qid, b.qid);
    assert_eq!(db.zoom().query_count(), 2);
    assert!(db.zoom().cache().contains(a.qid));
    assert!(db.zoom().cache().contains(b.qid));
}

#[test]
fn zoomed_result_row_values_match_query_output() {
    let mut db = figure3_db();
    let result = db
        .query("SELECT c3 FROM t WHERE c3 > 1 ORDER BY c3")
        .unwrap();
    assert_eq!(result.rows[0].row[0], Value::Int(5));
    // Zoom-in over a projected result: annotations on dropped columns
    // (c1, c2) no longer contribute.
    let qid = result.qid.raw();
    let outcomes = db
        .execute_sql(&format!(
            "ZOOMIN REFERENCE QID {qid} WHERE c3 = 5 ON NaiveBayesClass INDEX 1"
        ))
        .unwrap();
    let ExecOutcome::ZoomIn(z) = &outcomes[0] else {
        panic!()
    };
    // The whole-row refute annotation still covers c3.
    assert_eq!(z.annotations.len(), 1);
}
