//! Plan-shape tests: the canonical structures the planner must produce,
//! checked through `EXPLAIN`-style renderings and plan inspection.

use insightnotes::engine::plan::LogicalPlan;
use insightnotes::storage::Value;
use insightnotes::Database;

fn db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE R (a INT, b INT, c TEXT);
         CREATE TABLE S (x INT, y TEXT);
         INSERT INTO R VALUES (1, 10, 'p'), (2, 20, 'q'), (1, 30, 'r');
         INSERT INTO S VALUES (1, 'one'), (2, 'two');",
    )
    .unwrap();
    db
}

/// Collects operator names in post-order (execution order).
fn post_order(plan: &LogicalPlan, out: &mut Vec<&'static str>) {
    for child in plan.children() {
        post_order(child, out);
    }
    out.push(plan.name());
}

#[test]
fn single_table_filters_sit_on_scans() {
    let db = db();
    let plan = db
        .plan_sql("SELECT r.a FROM R r, S s WHERE r.a = s.x AND r.b > 5 AND s.y = 'one'")
        .unwrap();
    let text = plan.explain();
    // Both single-table predicates appear below the Join.
    let join_depth = text
        .lines()
        .find(|l| l.trim_start().starts_with("Join"))
        .map(|l| l.len() - l.trim_start().len())
        .unwrap();
    let filter_depths: Vec<usize> = text
        .lines()
        .filter(|l| l.trim_start().starts_with("Filter"))
        .map(|l| l.len() - l.trim_start().len())
        .collect();
    assert_eq!(filter_depths.len(), 2, "{text}");
    assert!(
        filter_depths.iter().all(|&d| d > join_depth),
        "single-table filters must be below the join:\n{text}"
    );
}

#[test]
fn leaf_projections_precede_the_join() {
    let db = db();
    let plan = db
        .plan_sql("SELECT r.a, s.y FROM R r, S s WHERE r.a = s.x")
        .unwrap();
    let mut ops = Vec::new();
    post_order(&plan, &mut ops);
    let join = ops.iter().position(|&o| o == "Join").unwrap();
    let projects_before = ops[..join].iter().filter(|&&o| o == "Project").count();
    assert!(
        projects_before >= 1,
        "project-before-merge requires leaf projection: {ops:?}"
    );
}

#[test]
fn no_redundant_projection_for_full_width_scan() {
    let db = db();
    // All columns selected and no predicates: the plan is just a scan.
    let plan = db.plan_sql("SELECT a, b, c FROM R").unwrap();
    assert_eq!(plan.name(), "Scan", "{}", plan.explain());
}

#[test]
fn wildcard_is_a_bare_scan() {
    let db = db();
    let plan = db.plan_sql("SELECT * FROM R").unwrap();
    assert_eq!(plan.name(), "Scan");
    assert_eq!(plan.schema().arity(), 3);
}

#[test]
fn cross_join_without_predicates() {
    let db = db();
    let result = db.query("SELECT r.a, s.x FROM R r, S s").unwrap();
    assert_eq!(result.rows.len(), 6, "3 × 2 cross product");
}

#[test]
fn aggregate_plan_has_group_then_project() {
    let db = db();
    let plan = db
        .plan_sql("SELECT a, COUNT(*) AS n FROM R GROUP BY a ORDER BY n DESC")
        .unwrap();
    let mut ops = Vec::new();
    post_order(&plan, &mut ops);
    let agg = ops.iter().position(|&o| o == "Aggregate").unwrap();
    let sort = ops.iter().position(|&o| o == "Sort").unwrap();
    assert!(
        agg < sort,
        "sort on aliases runs above the aggregate: {ops:?}"
    );
}

#[test]
fn having_filters_groups() {
    let db = db();
    let result = db
        .query("SELECT a, COUNT(*) AS n FROM R GROUP BY a HAVING n > 1")
        .unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0].row[0], Value::Int(1));
    assert_eq!(result.rows[0].row[1], Value::Int(2));

    // HAVING can also reference group columns and compose.
    let result = db
        .query("SELECT a, SUM(b) AS total FROM R GROUP BY a HAVING total > 30 AND a >= 1")
        .unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0].row[1], Value::Float(40.0));
}

#[test]
fn having_preserves_group_summaries() {
    let mut db = db();
    db.execute_sql(
        "CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('note') TRAIN ('note': 'word');
         LINK SUMMARY C TO R;
         ADD ANNOTATION 'word here' ON R WHERE b = 10;
         ADD ANNOTATION 'word there' ON R WHERE b = 30;",
    )
    .unwrap();
    let result = db
        .query("SELECT a, COUNT(*) AS n FROM R GROUP BY a HAVING n > 1")
        .unwrap();
    assert_eq!(result.rows.len(), 1);
    let inst = db.registry().instance_id("C").unwrap();
    // Both annotated rows (b=10, b=30) belong to the surviving group a=1.
    assert_eq!(
        result.rows[0].summary(inst).unwrap().annotation_count(),
        2,
        "HAVING must pass merged group summaries through unchanged"
    );
}

#[test]
fn having_without_group_by_is_an_error() {
    let db = db();
    assert_eq!(
        db.plan_sql("SELECT a FROM R HAVING a > 1")
            .unwrap_err()
            .class(),
        "type"
    );
}

#[test]
fn global_aggregate_has_no_grouping_columns() {
    let db = db();
    let result = db.query("SELECT COUNT(*), AVG(b) FROM R").unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0].row[0], Value::Int(3));
    assert_eq!(result.rows[0].row[1], Value::Float(20.0));
}

#[test]
fn order_by_output_alias_vs_source_column() {
    let db = db();
    // Alias ordering (bound on the output schema).
    let by_alias = db
        .query("SELECT b AS weight FROM R ORDER BY weight DESC LIMIT 1")
        .unwrap();
    assert_eq!(by_alias.rows[0].row[0], Value::Int(30));
    // Ordering by a column that is NOT in the output (bound pre-projection).
    let by_hidden = db.query("SELECT a FROM R ORDER BY b DESC LIMIT 1").unwrap();
    assert_eq!(by_hidden.rows[0].row[0], Value::Int(1));
}

#[test]
fn duplicate_binding_is_rejected() {
    let db = db();
    assert_eq!(
        db.plan_sql("SELECT r.a FROM R r, S r").unwrap_err().class(),
        "catalog"
    );
}

#[test]
fn ambiguous_bare_column_is_rejected() {
    let mut db = db();
    db.execute_sql("CREATE TABLE T2 (a INT)").unwrap();
    assert_eq!(
        db.plan_sql("SELECT a FROM R, T2").unwrap_err().class(),
        "catalog"
    );
}

#[test]
fn three_way_join_builds_left_deep() {
    let mut db = db();
    db.execute_sql("CREATE TABLE U (k INT); INSERT INTO U VALUES (1)")
        .unwrap();
    let plan = db
        .plan_sql("SELECT r.a FROM R r, S s, U u WHERE r.a = s.x AND s.x = u.k")
        .unwrap();
    let mut ops = Vec::new();
    post_order(&plan, &mut ops);
    assert_eq!(ops.iter().filter(|&&o| o == "Join").count(), 2);
    assert_eq!(ops.iter().filter(|&&o| o == "Scan").count(), 3);
    let db2 = db;
    let result = db2
        .query("SELECT r.a FROM R r, S s, U u WHERE r.a = s.x AND s.x = u.k")
        .unwrap();
    assert_eq!(result.rows.len(), 2, "two R rows with a = 1");
}
