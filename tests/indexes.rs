//! Hash indexes end to end: DDL, plan selection, correctness parity with
//! scans, summary attachment, and persistence.

use insightnotes::engine::ExecOutcome;
use insightnotes::storage::Value;
use insightnotes::Database;

fn db() -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE birds (id INT, name TEXT, region TEXT);
         INSERT INTO birds VALUES
           (1, 'Swan Goose', 'northeast'),
           (2, 'Mallard', 'midwest'),
           (3, 'Osprey', 'northeast'),
           (4, 'Mute Swan', 'pacific');",
    )
    .unwrap();
    db
}

#[test]
fn create_index_changes_the_plan() {
    let mut db = db();
    let before = db.plan_sql("SELECT name FROM birds WHERE id = 2").unwrap();
    assert!(before.explain().contains("Scan"), "{}", before.explain());
    assert!(!before.explain().contains("IndexScan"));

    let out = db.execute_sql("CREATE INDEX ON birds (id)").unwrap();
    assert!(matches!(
        out[0],
        ExecOutcome::IndexChanged { created: true, .. }
    ));

    let after = db.plan_sql("SELECT name FROM birds WHERE id = 2").unwrap();
    assert!(after.explain().contains("IndexScan"), "{}", after.explain());

    // DROP reverts to a scan.
    db.execute_sql("DROP INDEX ON birds (id)").unwrap();
    let reverted = db.plan_sql("SELECT name FROM birds WHERE id = 2").unwrap();
    assert!(!reverted.explain().contains("IndexScan"));
}

#[test]
fn index_scan_matches_full_scan_results() {
    let mut with_index = db();
    with_index
        .execute_sql("CREATE INDEX ON birds (region)")
        .unwrap();
    let without = db();
    for q in [
        "SELECT id, name FROM birds WHERE region = 'northeast' ORDER BY id",
        "SELECT id FROM birds WHERE region = 'nowhere'",
        "SELECT b.id, c.id FROM birds b, birds c \
         WHERE b.region = 'northeast' AND b.id < c.id ORDER BY b.id, c.id",
        "SELECT region, COUNT(*) AS n FROM birds WHERE region = 'northeast' GROUP BY region",
    ] {
        let a = with_index.query(q).unwrap();
        let b = without.query(q).unwrap();
        assert_eq!(a.rows, b.rows, "query `{q}`");
    }
}

#[test]
fn index_scan_attaches_summaries() {
    let mut db = db();
    db.execute_sql(
        "CREATE INDEX ON birds (id);
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('n') TRAIN ('n': 'w');
         LINK SUMMARY C TO birds;
         ADD ANNOTATION 'w note' ON birds WHERE id = 2;",
    )
    .unwrap();
    let plan = db
        .plan_sql("SELECT id, name FROM birds WHERE id = 2")
        .unwrap();
    assert!(plan.explain().contains("IndexScan"));
    let result = db.query("SELECT id, name FROM birds WHERE id = 2").unwrap();
    assert_eq!(result.rows.len(), 1);
    let inst = db.registry().instance_id("C").unwrap();
    assert_eq!(result.rows[0].summary(inst).unwrap().annotation_count(), 1);
}

#[test]
fn index_reflects_inserts_and_deletes() {
    let mut db = db();
    db.execute_sql("CREATE INDEX ON birds (region)").unwrap();
    db.execute_sql("INSERT INTO birds VALUES (5, 'Heron', 'northeast')")
        .unwrap();
    let r = db
        .query("SELECT id FROM birds WHERE region = 'northeast'")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    db.execute_sql("DELETE FROM birds WHERE id = 1").unwrap();
    let r = db
        .query("SELECT id FROM birds WHERE region = 'northeast'")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn indexes_survive_snapshots() {
    let mut db = db();
    db.execute_sql("CREATE INDEX ON birds (id)").unwrap();
    let path =
        std::env::temp_dir().join(format!("insightnotes-idx-test-{}.indb", std::process::id()));
    db.save(&path).unwrap();
    let reopened = Database::open(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let plan = reopened
        .plan_sql("SELECT name FROM birds WHERE id = 3")
        .unwrap();
    assert!(plan.explain().contains("IndexScan"), "{}", plan.explain());
}

#[test]
fn raw_engine_uses_the_index_too() {
    let mut db = db();
    db.execute_sql("CREATE INDEX ON birds (id)").unwrap();
    let rows = db.query_raw("SELECT name FROM birds WHERE id = 4").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].row[0], Value::Text("Mute Swan".into()));
}

#[test]
fn index_ddl_errors() {
    let mut db = db();
    assert_eq!(
        db.execute_sql("CREATE INDEX ON missing (id)")
            .unwrap_err()
            .class(),
        "catalog"
    );
    assert_eq!(
        db.execute_sql("CREATE INDEX ON birds (nope)")
            .unwrap_err()
            .class(),
        "catalog"
    );
    assert_eq!(
        db.execute_sql("DROP INDEX ON birds (id)")
            .unwrap_err()
            .class(),
        "catalog"
    );
}

#[test]
fn null_probe_through_index_matches_nothing() {
    let mut db = db();
    db.execute_sql("INSERT INTO birds VALUES (NULL, 'Mystery', 'unknown')")
        .unwrap();
    db.execute_sql("CREATE INDEX ON birds (id)").unwrap();
    // `id = NULL` never matches (three-valued logic), with or without
    // the index; the planner keeps NULL literals off the index path.
    let r = db.query("SELECT name FROM birds WHERE id = NULL").unwrap();
    assert!(r.rows.is_empty());
}
