//! Snapshot persistence and deletion semantics, end to end.

use insightnotes::engine::ExecOutcome;
use insightnotes::storage::Value;
use insightnotes::workload::{seed_birds_database, WorkloadConfig};
use insightnotes::Database;

fn snapshot_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("insightnotes-it-{}-{tag}.indb", std::process::id()))
}

#[test]
fn seeded_workload_survives_save_and_open() {
    let mut original = Database::new();
    seed_birds_database(
        &mut original,
        &WorkloadConfig {
            num_birds: 15,
            annotation_ratio: 10.0,
            ..WorkloadConfig::default()
        },
    )
    .unwrap();
    let path = snapshot_path("workload");
    original.save(&path).unwrap();
    let mut reopened = Database::open(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Whole data + summary state identical through a query.
    let q = "SELECT id, name, weight FROM birds ORDER BY id";
    let a = original.query(q).unwrap();
    let b = reopened.query(q).unwrap();
    assert_eq!(a.rows, b.rows);
    assert_eq!(original.store().stats(), reopened.store().stats());
    assert_eq!(
        original.registry().object_count(),
        reopened.registry().object_count()
    );

    // The restored instances keep maintaining (models, vocab intact).
    reopened
        .execute_sql("ADD ANNOTATION 'foraging near the shore' ON birds WHERE id = 1")
        .unwrap();
    let t = reopened.catalog().table_id("birds").unwrap();
    let c = reopened.registry().instance_id("ClassBird1").unwrap();
    let obj = reopened
        .registry()
        .object(t, insightnotes::common::RowId::new(1), c)
        .unwrap();
    assert_eq!(
        obj.annotation_count(),
        reopened
            .store()
            .count_on_row(t, insightnotes::common::RowId::new(1))
    );
}

#[test]
fn delete_rows_removes_annotations_and_summaries() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (x INT, tag TEXT);
         INSERT INTO t VALUES (1, 'keep'), (2, 'drop'), (3, 'drop');
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER LABELS ('n') TRAIN ('n': 'word');
         LINK SUMMARY C TO t;
         ADD ANNOTATION 'word one' ON t WHERE x = 1;
         ADD ANNOTATION 'word two' ON t WHERE x = 2;",
    )
    .unwrap();
    let outcomes = db.execute_sql("DELETE FROM t WHERE tag = 'drop'").unwrap();
    let ExecOutcome::RowsDeleted { rows, .. } = &outcomes[0] else {
        panic!()
    };
    assert_eq!(*rows, 2);
    let result = db.query("SELECT x FROM t").unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0].row[0], Value::Int(1));
    // Row 2's annotation is gone; row 1's remains.
    assert_eq!(db.store().stats().count, 1);
    assert_eq!(db.registry().object_count(), 1);
}

#[test]
fn delete_all_rows_without_predicate() {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE t (x INT); INSERT INTO t VALUES (1), (2)")
        .unwrap();
    let outcomes = db.execute_sql("DELETE FROM t").unwrap();
    assert!(matches!(
        outcomes[0],
        ExecOutcome::RowsDeleted { rows: 2, .. }
    ));
    assert!(db.query("SELECT x FROM t").unwrap().rows.is_empty());
}

#[test]
fn delete_annotation_rebuilds_summaries() {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE t (x INT);
         INSERT INTO t VALUES (1);
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER
           LABELS ('a', 'b') TRAIN ('a': 'alpha word', 'b': 'beta word');
         CREATE SUMMARY INSTANCE K TYPE CLUSTER THRESHOLD 0.5;
         LINK SUMMARY C TO t;
         LINK SUMMARY K TO t;
         ADD ANNOTATION 'alpha first' ON t;
         ADD ANNOTATION 'alpha second' ON t;
         ADD ANNOTATION 'beta third' ON t;",
    )
    .unwrap();
    let t = db.catalog().table_id("t").unwrap();
    let c = db.registry().instance_id("C").unwrap();
    let row1 = insightnotes::common::RowId::new(1);
    let before = db.registry().object(t, row1, c).unwrap();
    assert_eq!(before.annotation_count(), 3);

    // Delete the second annotation (id 2).
    let outcomes = db.execute_sql("DELETE ANNOTATION 2").unwrap();
    let ExecOutcome::AnnotationDeleted { rows_refreshed, .. } = &outcomes[0] else {
        panic!()
    };
    assert_eq!(*rows_refreshed, 1);

    let after = db.registry().object(t, row1, c).unwrap();
    assert_eq!(after.annotation_count(), 2);
    assert!(
        !after.all_ids().contains(2),
        "deleted id no longer contributes"
    );

    // Deleting twice is an error; zoom-in never returns the deleted one.
    assert!(db.execute_sql("DELETE ANNOTATION 2").is_err());
    let result = db.query("SELECT x FROM t").unwrap();
    let out = db
        .execute_sql(&format!(
            "ZOOMIN REFERENCE QID {} ON C LABEL 'a'",
            result.qid.raw()
        ))
        .unwrap();
    let ExecOutcome::ZoomIn(z) = &out[0] else {
        panic!()
    };
    assert!(z.annotations.iter().all(|a| a.id.raw() != 2));
}

#[test]
fn delete_rebuild_matches_never_inserted() {
    // Summaries after deleting an annotation must equal summaries that
    // never saw it (rebuild gives order-insensitivity for classifiers;
    // clustering is replayed in insertion order, which the store retains).
    let build = |texts: &[&str]| {
        let mut db = Database::new();
        db.execute_sql(
            "CREATE TABLE t (x INT);
             INSERT INTO t VALUES (1);
             CREATE SUMMARY INSTANCE C TYPE CLASSIFIER
               LABELS ('a', 'b') TRAIN ('a': 'alpha word', 'b': 'beta word');
             LINK SUMMARY C TO t;",
        )
        .unwrap();
        for t in texts {
            db.execute_sql(&format!("ADD ANNOTATION '{t}' ON t"))
                .unwrap();
        }
        db
    };
    let mut with_deletion = build(&["alpha one", "beta two", "alpha three"]);
    with_deletion.execute_sql("DELETE ANNOTATION 2").unwrap();

    let t = with_deletion.catalog().table_id("t").unwrap();
    let c = with_deletion.registry().instance_id("C").unwrap();
    let row1 = insightnotes::common::RowId::new(1);
    let obj = with_deletion.registry().object(t, row1, c).unwrap();
    let counts: Vec<usize> = (0..obj.component_count())
        .map(|i| obj.zoom_ids(i).unwrap().len())
        .collect();
    assert_eq!(counts, vec![2, 0], "both alpha notes remain, beta gone");
}

#[test]
fn explain_shows_the_canonical_plan() {
    let mut db = Database::new();
    db.execute_sql("CREATE TABLE R (a INT, b INT); CREATE TABLE S (x INT, y INT);")
        .unwrap();
    let outcomes = db
        .execute_sql("EXPLAIN SELECT r.a, s.y FROM R r, S s WHERE r.a = s.x AND r.b = 2")
        .unwrap();
    let ExecOutcome::Explain(plan) = &outcomes[0] else {
        panic!()
    };
    assert!(plan.contains("Join"), "{plan}");
    assert!(plan.contains("Scan r"));
    assert!(plan.contains("Filter"));
    // Project-before-merge: a Project sits below the Join.
    let join_line = plan
        .lines()
        .position(|l| l.trim_start().starts_with("Join"))
        .unwrap();
    let has_deeper_project = plan
        .lines()
        .skip(join_line + 1)
        .any(|l| l.trim_start().starts_with("Project"));
    assert!(has_deeper_project, "{plan}");
}

#[test]
fn incremental_and_rebuild_deletion_agree_on_classifiers() {
    use insightnotes::engine::DbConfig;
    use insightnotes::summaries::MaintenanceMode;
    let build = |mode: MaintenanceMode| {
        let mut db = Database::with_config(DbConfig {
            maintenance: mode,
            ..DbConfig::default()
        })
        .unwrap();
        db.execute_sql(
            "CREATE TABLE t (x INT);
             INSERT INTO t VALUES (1);
             CREATE SUMMARY INSTANCE C TYPE CLASSIFIER
               LABELS ('a', 'b') TRAIN ('a': 'alpha word', 'b': 'beta word');
             LINK SUMMARY C TO t;
             ADD ANNOTATION 'alpha one' ON t;
             ADD ANNOTATION 'beta two' ON t;
             ADD ANNOTATION 'alpha three' ON t;
             DELETE ANNOTATION 2;",
        )
        .unwrap();
        db
    };
    let inc = build(MaintenanceMode::Incremental);
    let reb = build(MaintenanceMode::Rebuild);
    let t = inc.catalog().table_id("t").unwrap();
    let c = inc.registry().instance_id("C").unwrap();
    let row1 = insightnotes::common::RowId::new(1);
    assert_eq!(
        inc.registry().object(t, row1, c),
        reb.registry().object(t, row1, c),
        "classifier deletion is exact under both strategies"
    );
}

#[test]
fn incremental_deletion_keeps_cluster_membership_exact() {
    let mut db = Database::new(); // incremental by default
    db.execute_sql(
        "CREATE TABLE t (x INT);
         INSERT INTO t VALUES (1);
         CREATE SUMMARY INSTANCE K TYPE CLUSTER THRESHOLD 0.5;
         LINK SUMMARY K TO t;
         ADD ANNOTATION 'eating stonewort near shore' ON t;
         ADD ANNOTATION 'eating stonewort near lake' ON t;
         ADD ANNOTATION 'wingspan measured today' ON t;",
    )
    .unwrap();
    let t = db.catalog().table_id("t").unwrap();
    let k = db.registry().instance_id("K").unwrap();
    let row1 = insightnotes::common::RowId::new(1);
    let rep_before = db
        .registry()
        .object(t, row1, k)
        .unwrap()
        .as_cluster()
        .unwrap()
        .groups()[0]
        .representative
        .unwrap();

    // Delete the stonewort group's representative; the group survives
    // with the other member elected.
    db.delete_annotation(insightnotes::common::AnnotationId::new(rep_before))
        .unwrap();
    let obj = db.registry().object(t, row1, k).unwrap();
    assert_eq!(obj.annotation_count(), 2);
    assert!(!obj.all_ids().contains(rep_before));
    let groups = obj.as_cluster().unwrap().groups();
    let stonewort = groups
        .iter()
        .find(|g| g.size == 1 && g.representative != Some(3));
    assert!(stonewort.is_some(), "groups: {groups:?}");
}
