//! Property tests for Theorems 1–2: equivalent query formulations must
//! propagate identical annotation summaries.
//!
//! The planner canonicalizes every formulation to project annotation
//! effects out before any merge, so swapping join order, moving
//! predicates between `ON` and `WHERE`, or reordering conjuncts must not
//! change the output rows *or* their summary objects.
//!
//! Summary objects are compared through a canonical form: classifier
//! label counts, cluster groups as sets of member-id sets, snippet entry
//! ids — the semantically meaningful content, independent of internal
//! ordering artifacts (e.g. which side a cluster merge started from).

use insightnotes::annotations::{AnnotationBody, ColSig};
use insightnotes::common::{ColumnId, RowId};
use insightnotes::engine::{Database, QueryResult};
use insightnotes::summaries::SummaryObject;
use proptest::prelude::*;

const TEXT_POOL: &[&str] = &[
    "eating stonewort near shore",
    "eating stonewort near lake",
    "lesions and parasites observed",
    "wingspan measured at dawn",
    "see attached reference photo",
    "diving for fish repeatedly",
];

#[derive(Debug, Clone)]
struct Spec {
    r_rows: Vec<(i64, i64)>,
    s_rows: Vec<(i64, i64)>,
    // (on_r, row index, column mask (1..=3 for R's 2 data cols + both), text index)
    annotations: Vec<(bool, usize, u8, usize)>,
    threshold: i64,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec((0i64..4, 0i64..6), 1..6),
        prop::collection::vec((0i64..4, 0i64..6), 1..6),
        prop::collection::vec(
            (any::<bool>(), 0usize..6, 1u8..4, 0usize..TEXT_POOL.len()),
            0..16,
        ),
        0i64..6,
    )
        .prop_map(|(r_rows, s_rows, annotations, threshold)| Spec {
            r_rows,
            s_rows,
            annotations,
            threshold,
        })
}

fn build_db(spec: &Spec) -> Database {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE R (a INT, b INT);
         CREATE TABLE S (x INT, y INT);
         CREATE SUMMARY INSTANCE C TYPE CLASSIFIER
           LABELS ('Behavior', 'Disease', 'Anatomy', 'Other')
           TRAIN ('Behavior': 'eating stonewort diving fish',
                  'Disease': 'lesions parasites',
                  'Anatomy': 'wingspan measured',
                  'Other': 'reference photo attached');
         CREATE SUMMARY INSTANCE K TYPE CLUSTER THRESHOLD 0.5;
         LINK SUMMARY C TO R;
         LINK SUMMARY C TO S;
         LINK SUMMARY K TO R;
         LINK SUMMARY K TO S;",
    )
    .unwrap();
    for &(a, b) in &spec.r_rows {
        db.execute_sql(&format!("INSERT INTO R VALUES ({a}, {b})"))
            .unwrap();
    }
    for &(x, y) in &spec.s_rows {
        db.execute_sql(&format!("INSERT INTO S VALUES ({x}, {y})"))
            .unwrap();
    }
    for &(on_r, row, mask, text) in &spec.annotations {
        let (table, nrows) = if on_r {
            ("R", spec.r_rows.len())
        } else {
            ("S", spec.s_rows.len())
        };
        let rid = RowId::new((row % nrows) as u64 + 1);
        let mut cols = Vec::new();
        if mask & 1 != 0 {
            cols.push(ColumnId::new(0));
        }
        if mask & 2 != 0 {
            cols.push(ColumnId::new(1));
        }
        db.annotate_rows(
            table,
            &[rid],
            ColSig::of_columns(&cols),
            AnnotationBody::text(TEXT_POOL[text], "prop"),
        )
        .unwrap();
    }
    db
}

/// Canonical, ordering-independent form of a result set.
fn canonicalize(result: &QueryResult) -> Vec<String> {
    let mut rows: Vec<String> = result
        .rows
        .iter()
        .map(|r| {
            let mut parts = vec![r.row.to_string()];
            for (inst, obj) in &r.summaries {
                parts.push(format!("{inst}:{}", canonical_object(obj)));
            }
            parts.join(" | ")
        })
        .collect();
    rows.sort();
    rows
}

fn canonical_object(obj: &SummaryObject) -> String {
    match obj {
        SummaryObject::Classifier(c) => {
            let counts: Vec<String> = (0..obj.component_count())
                .map(|i| {
                    format!(
                        "{}={:?}",
                        c.labels()[i],
                        obj.zoom_ids(i).unwrap().as_slice()
                    )
                })
                .collect();
            format!("cls[{}]", counts.join(","))
        }
        SummaryObject::Cluster(_) => {
            let mut groups: Vec<String> = (0..obj.component_count())
                .map(|i| format!("{:?}", obj.zoom_ids(i).unwrap().as_slice()))
                .collect();
            groups.sort();
            format!("clu[{}]", groups.join(","))
        }
        SummaryObject::Snippet(s) => {
            let ids: Vec<u64> = s.entries().iter().map(|e| e.id).collect();
            format!("snp{ids:?}")
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn join_order_does_not_change_summaries(spec in spec_strategy()) {
        let db1 = build_db(&spec);
        let db2 = build_db(&spec);
        let t = spec.threshold;
        let q1 = format!(
            "SELECT r.a, s.y FROM R r, S s WHERE r.a = s.x AND r.b < {t}"
        );
        let q2 = format!(
            "SELECT r.a, s.y FROM S s, R r WHERE s.x = r.a AND r.b < {t}"
        );
        let r1 = db1.query(&q1).unwrap();
        let r2 = db2.query(&q2).unwrap();
        prop_assert_eq!(canonicalize(&r1), canonicalize(&r2));
    }

    #[test]
    fn on_clause_equals_where_clause(spec in spec_strategy()) {
        let db1 = build_db(&spec);
        let db2 = build_db(&spec);
        let r1 = db1
            .query("SELECT r.b, s.y FROM R r JOIN S s ON r.a = s.x")
            .unwrap();
        let r2 = db2
            .query("SELECT r.b, s.y FROM R r, S s WHERE r.a = s.x")
            .unwrap();
        prop_assert_eq!(canonicalize(&r1), canonicalize(&r2));
    }

    #[test]
    fn conjunct_order_is_irrelevant(spec in spec_strategy()) {
        let db1 = build_db(&spec);
        let db2 = build_db(&spec);
        let t = spec.threshold;
        let r1 = db1
            .query(&format!(
                "SELECT r.a FROM R r, S s WHERE r.a = s.x AND r.b < {t} AND s.y >= 0"
            ))
            .unwrap();
        let r2 = db2
            .query(&format!(
                "SELECT r.a FROM R r, S s WHERE s.y >= 0 AND r.b < {t} AND r.a = s.x"
            ))
            .unwrap();
        prop_assert_eq!(canonicalize(&r1), canonicalize(&r2));
    }

    #[test]
    fn repeated_execution_is_deterministic(spec in spec_strategy()) {
        let db = build_db(&spec);
        let q = "SELECT r.a, s.y FROM R r, S s WHERE r.a = s.x";
        let r1 = db.query(q).unwrap();
        let r2 = db.query(q).unwrap();
        prop_assert_eq!(canonicalize(&r1), canonicalize(&r2));
    }

    #[test]
    fn distinct_absorbs_duplicates_consistently(spec in spec_strategy()) {
        let db1 = build_db(&spec);
        let db2 = build_db(&spec);
        // DISTINCT over a projection vs the same query with the duplicate
        // source rows pre-filtered to one representative must agree on
        // total annotation coverage per surviving tuple.
        let r1 = db1.query("SELECT DISTINCT a FROM R").unwrap();
        let r2 = db2.query("SELECT DISTINCT a FROM R").unwrap();
        prop_assert_eq!(canonicalize(&r1), canonicalize(&r2));
    }
}
