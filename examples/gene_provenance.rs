//! The biological-database scenario: curation annotations over a gene
//! table, classified into {FunctionPrediction, Provenance, Comment} —
//! the paper's example of re-configuring the same engine for a second
//! domain (extensibility, §2.3).
//!
//! Run with: `cargo run --example gene_provenance`

use insightnotes::engine::ExecOutcome;
use insightnotes::workload::genes::{GeneGen, GENES_DDL, GENE_CLASSES};
use insightnotes::{Database, Result};

fn main() -> Result<()> {
    let mut db = Database::new();
    db.execute_sql(GENES_DDL)?;

    // Domain-specific classifier: same Classifier type, different labels
    // and training corpus than the bird instance — level 2 of the
    // summarization hierarchy.
    let mut gen = GeneGen::new(2026);
    let corpus = gen.training_corpus(15);
    let pairs: Vec<String> = corpus
        .iter()
        .map(|(c, t)| format!("'{}': '{t}'", GENE_CLASSES[*c]))
        .collect();
    db.execute_sql(&format!(
        "CREATE SUMMARY INSTANCE GeneClass TYPE CLASSIFIER LABELS ({}) TRAIN ({});
         CREATE SUMMARY INSTANCE CurationCluster TYPE CLUSTER THRESHOLD 0.5;
         LINK SUMMARY GeneClass TO genes;
         LINK SUMMARY CurationCluster TO genes;",
        GENE_CLASSES
            .iter()
            .map(|c| format!("'{c}'"))
            .collect::<Vec<_>>()
            .join(", "),
        pairs.join(", ")
    ))?;

    // 20 genes, 300 curation notes.
    for r in gen.records(20) {
        db.execute_sql(&format!(
            "INSERT INTO genes VALUES ({}, '{}', '{}', {}, '{}')",
            r.id, r.symbol, r.organism, r.seq_len, r.description
        ))?;
    }
    for i in 0..300 {
        let (_, text) = gen.annotation();
        db.execute_sql(&format!(
            "ADD ANNOTATION '{text}' AUTHOR 'curator{}' ON genes WHERE id = {}",
            i % 7,
            i % 20 + 1
        ))?;
    }
    println!(
        "20 genes, {} curation annotations\n",
        db.store().stats().count
    );

    // Which genes have machine-imported provenance but open comments?
    println!("── genes with provenance trails and open comments ──");
    let result = db.query(
        "SELECT symbol, organism,
                SUMMARY_COUNT(GeneClass, 'Provenance') AS prov,
                SUMMARY_COUNT(GeneClass, 'Comment') AS comments
         FROM genes
         WHERE SUMMARY_COUNT(GeneClass, 'Provenance') > 2
           AND SUMMARY_COUNT(GeneClass, 'Comment') > 2
         ORDER BY comments DESC LIMIT 6",
    )?;
    for row in &result.rows {
        println!("  {}", row.row);
    }

    // Zoom into the comment backlog of the top gene.
    if let Some(top) = result.rows.first() {
        let symbol = top.row[0].to_string();
        println!("\n── open comments on {symbol} ──");
        let outcomes = db.execute_sql(&format!(
            "ZOOMIN REFERENCE QID {} WHERE symbol = '{symbol}' ON GeneClass LABEL 'Comment'",
            result.qid.raw()
        ))?;
        if let ExecOutcome::ZoomIn(z) = &outcomes[0] {
            for a in z.annotations.iter().take(6) {
                println!("  [{}] {}", a.author, a.text);
            }
        }
    }

    // Organism-level rollup with merged summaries.
    println!("\n── curation volume by organism ──");
    let rollup = db.query(
        "SELECT organism, COUNT(*) AS genes FROM genes GROUP BY organism ORDER BY genes DESC",
    )?;
    for row in &rollup.rows {
        let merged = row
            .summaries
            .iter()
            .find_map(|(_, o)| {
                o.as_classifier().map(|c| {
                    GENE_CLASSES
                        .iter()
                        .enumerate()
                        .map(|(i, l)| format!("{l}:{}", c.count(i)))
                        .collect::<Vec<_>>()
                        .join(" ")
                })
            })
            .unwrap_or_else(|| "-".into());
        println!("  {:<10} {:>2} genes  [{merged}]", row.row[0], row.row[1]);
    }
    Ok(())
}
