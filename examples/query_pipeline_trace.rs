//! The "under-the-hood" demo (paper demonstration scenario 3): executes
//! Figure 2's query with per-operator tracing and prints how each
//! operator transforms the tuples *and* their summary objects.
//!
//! Run with: `cargo run --example query_pipeline_trace`

use insightnotes::annotations::{AnnotationBody, ColSig};
use insightnotes::common::{ColumnId, RowId};
use insightnotes::{Database, Result};

fn main() -> Result<()> {
    let mut db = Database::new();
    db.execute_sql(
        "CREATE TABLE R (a INT, b INT, c TEXT, d TEXT);
         CREATE TABLE S (x INT, y TEXT, z TEXT);
         INSERT INTO R VALUES (1, 2, 'c-value', 'd-value');
         INSERT INTO S VALUES (1, 'y-value', 'z-value');
         CREATE SUMMARY INSTANCE ClassBird2 TYPE CLASSIFIER
           LABELS ('Provenance', 'Comment', 'Question')
           TRAIN ('Provenance': 'derived banding station import record',
                  'Comment': 'interesting observation noted nearby seen',
                  'Question': 'why unclear verify which what');
         CREATE SUMMARY INSTANCE SimCluster TYPE CLUSTER THRESHOLD 0.5;
         LINK SUMMARY ClassBird2 TO R;
         LINK SUMMARY ClassBird2 TO S;
         LINK SUMMARY SimCluster TO R;
         LINK SUMMARY SimCluster TO S;",
    )?;

    // Annotations placed per Figure 2: some on output columns, some on
    // columns the query projects away, one shared between both tuples.
    let r = db.catalog().table_id("r")?;
    let s = db.catalog().table_id("s")?;
    let row1 = RowId::new(1);
    let col = |c: u16| ColSig::of_columns(&[ColumnId::new(c)]);

    // On r: two comments on the output columns, one provenance note on
    // r.c (dropped), one question on r.d (dropped).
    db.annotate_rows(
        "R",
        &[row1],
        col(0),
        AnnotationBody::text("interesting observation noted", "w1"),
    )?;
    db.annotate_rows(
        "R",
        &[row1],
        col(1),
        AnnotationBody::text("seen nearby again", "w2"),
    )?;
    db.annotate_rows(
        "R",
        &[row1],
        col(2),
        AnnotationBody::text("derived from banding station", "w3"),
    )?;
    db.annotate_rows(
        "R",
        &[row1],
        col(3),
        AnnotationBody::text("why unclear which record", "w4"),
    )?;
    // On s: a comment on s.z (output) and a provenance note on s.x
    // (join key only → its annotations are removed before the merge).
    db.annotate_rows(
        "S",
        &[row1],
        col(2),
        AnnotationBody::text("interesting observation seen", "w5"),
    )?;
    db.annotate_rows(
        "S",
        &[row1],
        col(0),
        AnnotationBody::text("import record derived", "w6"),
    )?;
    // One annotation attached to BOTH tuples — merged once, not twice.
    db.annotate_targets(
        vec![(r, row1, col(0)), (s, row1, col(2))],
        AnnotationBody::text("noted on both tuples nearby", "w7"),
    )?;

    let query = "Select r.a, r.b, s.z From R r, S s Where r.a = s.x And r.b = 2";
    println!("query: {query}\n");

    let plan = db.plan_sql(query)?;
    println!("── plan ──\n{}", plan.explain());

    let (result, trace) = db.query_traced(query)?;
    println!("── pipeline trace (post-order; summaries after each operator) ──");
    print!("{trace}");

    println!("── final result ──");
    print!("{}", db.render_result(&result));

    println!(
        "\nNote how the leaf projections removed the effects of the \
         annotations on r.c, r.d, s.y — and of s.x's note, whose column \
         only served the join — before the merge, and how the annotation \
         attached to both tuples (`w7`) was counted once."
    );
    Ok(())
}
