//! Quickstart: the InsightNotes loop in one file.
//!
//! Creates a small annotated table, defines the three summary types of
//! Figure 1, queries with summary propagation, and zooms in.
//!
//! Run with: `cargo run --example quickstart`

use insightnotes::engine::ExecOutcome;
use insightnotes::{Database, Result};

fn main() -> Result<()> {
    let mut db = Database::new();

    // 1. Base data.
    db.execute_sql(
        "CREATE TABLE birds (id INT, name TEXT, sci_name TEXT, weight FLOAT);
         INSERT INTO birds VALUES
           (1, 'Swan Goose', 'Anser cygnoides', 3.2),
           (2, 'Mallard', 'Anas platyrhynchos', 1.1),
           (3, 'Mute Swan', 'Cygnus olor', 11.0);",
    )?;

    // 2. Summary instances (Figure 1: a classifier, a clusterer, and a
    //    snippet summarizer) linked to the table.
    db.execute_sql(
        "CREATE SUMMARY INSTANCE ClassBird1 TYPE CLASSIFIER
           LABELS ('Behavior', 'Disease', 'Anatomy', 'Other')
           TRAIN ('Behavior': 'eating stonewort diving foraging nesting',
                  'Disease': 'lesions parasites infection pox influenza',
                  'Anatomy': 'wingspan plumage beak measured weight',
                  'Other': 'reference attached photo survey');
         CREATE SUMMARY INSTANCE SimCluster TYPE CLUSTER THRESHOLD 0.5;
         CREATE SUMMARY INSTANCE TextSummary1 TYPE SNIPPET MIN_SOURCE 200;
         LINK SUMMARY ClassBird1 TO birds;
         LINK SUMMARY SimCluster TO birds;
         LINK SUMMARY TextSummary1 TO birds;",
    )?;

    // 3. Annotations: free text, near-duplicates, and an attached article.
    db.execute_sql(
        "ADD ANNOTATION 'found eating stonewort near the shore' AUTHOR 'alice'
           ON birds WHERE name = 'Swan Goose';
         ADD ANNOTATION 'observed eating stonewort by the lake' AUTHOR 'bob'
           ON birds WHERE name = 'Swan Goose';
         ADD ANNOTATION 'lesions visible on left wing' AUTHOR 'carol'
           ON birds COLUMNS (weight) WHERE name = 'Swan Goose';
         ADD ANNOTATION 'wingspan measured at 185cm' AUTHOR 'dave'
           ON birds WHERE name = 'Swan Goose';",
    )?;
    let article = "The swan goose is a large goose with a natural breeding \
                   range in inland Mongolia. It winters mainly in central \
                   and eastern China, in lakes and wetlands. "
        .repeat(4);
    db.execute_sql(&format!(
        "ADD ANNOTATION 'wikipedia article' DOCUMENT '{article}' ON birds \
         WHERE name = 'Swan Goose'"
    ))?;

    // 4. Query: summaries propagate with the result.
    let result = db.query("SELECT name, weight FROM birds WHERE weight > 2 ORDER BY name")?;
    println!("── query result with annotation summaries ──");
    print!("{}", db.render_result(&result));

    // 5. Zoom-in: expand the Behavior class back to its raw annotations.
    println!("\n── zoom-in: Behavior annotations on the result ──");
    let outcomes = db.execute_sql(&format!(
        "ZOOMIN REFERENCE QID {} WHERE name = 'Swan Goose' ON ClassBird1 LABEL 'Behavior'",
        result.qid.raw()
    ))?;
    if let ExecOutcome::ZoomIn(z) = &outcomes[0] {
        for a in &z.annotations {
            println!("  {} — {} (by {})", a.id, a.text, a.author);
        }
        println!(
            "  [{} annotations, served {}]",
            z.annotations.len(),
            if z.from_cache {
                "from cache"
            } else {
                "by re-execution"
            }
        );
    }

    // 6. Summary-based predicate: tuples with any disease evidence.
    println!("\n── summary predicate: disease-flagged birds ──");
    // (weight stays in the output: the lesions note is attached to the
    // weight cell, and only output columns keep their annotations.)
    let flagged = db.query(
        "SELECT name, weight, SUMMARY_COUNT(ClassBird1, 'Disease') AS disease_notes \
         FROM birds WHERE SUMMARY_COUNT(ClassBird1, 'Disease') > 0",
    )?;
    print!("{}", db.render_result(&flagged));

    Ok(())
}
