//! The AKN/eBird scenario at scale: a bird database annotated at a 30x
//! annotation-to-record ratio, queried and zoomed like the paper's demo.
//!
//! Run with: `cargo run --release --example ornithology_curation`

use insightnotes::engine::ExecOutcome;
use insightnotes::workload::{seed_birds_database, WorkloadConfig};
use insightnotes::{Database, Result};

fn main() -> Result<()> {
    let mut db = Database::new();
    let config = WorkloadConfig {
        num_birds: 100,
        annotation_ratio: 30.0,
        duplicate_rate: 0.3,
        document_rate: 0.05,
        ..WorkloadConfig::default()
    };
    println!(
        "seeding {} birds at {}x annotations …",
        config.num_birds, config.annotation_ratio
    );
    let stats = seed_birds_database(&mut db, &config)?;
    println!(
        "  {} rows, {} annotations ({} with attached documents)",
        stats.rows, stats.annotations, stats.documents
    );
    let store = db.store().stats();
    println!(
        "  raw annotation content: {} KiB across {} attachment points",
        store.content_bytes / 1024,
        store.attachments
    );
    println!(
        "  summary state: {} objects, {} KiB\n",
        db.registry().object_count(),
        db.registry().total_object_bytes() / 1024
    );

    // A curator's session: find heavily disease-flagged birds.
    println!("── birds with the most disease evidence ──");
    let result = db.query(
        "SELECT id, name, region, SUMMARY_COUNT(ClassBird1, 'Disease') AS disease \
         FROM birds \
         WHERE SUMMARY_COUNT(ClassBird1, 'Disease') > 0 \
         ORDER BY SUMMARY_COUNT(ClassBird1, 'Disease') DESC, id \
         LIMIT 5",
    )?;
    for row in &result.rows {
        println!("  {}", row.row);
    }

    // Drill into the top hit's disease annotations.
    if let Some(top) = result.rows.first() {
        let id = &top.row[0];
        println!("\n── zoom-in: raw disease annotations on bird {id} ──");
        let outcomes = db.execute_sql(&format!(
            "ZOOMIN REFERENCE QID {} WHERE id = {id} ON ClassBird1 LABEL 'Disease'",
            result.qid.raw()
        ))?;
        if let ExecOutcome::ZoomIn(z) = &outcomes[0] {
            for a in z.annotations.iter().take(8) {
                println!("  {} — {}", a.author, a.text);
            }
            if z.annotations.len() > 8 {
                println!("  … and {} more", z.annotations.len() - 8);
            }
        }
    }

    // Region-level rollup: grouping merges the tuples' summaries.
    println!("\n── annotation activity by region ──");
    let rollup = db
        .query("SELECT region, COUNT(*) AS birds FROM birds GROUP BY region ORDER BY birds DESC")?;
    for row in &rollup.rows {
        let summary_note = row.summaries.first().map_or_else(
            || "no annotations".into(),
            |(_, o)| format!("{} annotations summarized", o.annotation_count()),
        );
        println!("  {:<12} {} ({summary_note})", row.row[0], row.row[1]);
    }

    // Cluster view of one busy tuple.
    println!("\n── duplicate-collapsed view of bird 1 ──");
    let one = db.query("SELECT id, name, weight, region FROM birds WHERE id = 1")?;
    print!("{}", db.render_result(&one));

    println!(
        "\ncache: {} queries registered, {} results held ({} KiB)",
        db.zoom().query_count(),
        db.zoom().cache().len(),
        db.zoom().cache().used_bytes() / 1024
    );
    Ok(())
}
