//! Interactive shell — the stand-in for the paper's Excel-based
//! InsightNotesGate GUI (demonstration scenario, §3).
//!
//! All of the demo's operations are available as statements:
//! querying with summary visualization, adding annotations, creating and
//! linking summary instances, and zooming in. Extra shell commands:
//!
//! ```text
//! \seed [n ratio]   seed the AKN-style bird workload (default 50 x30)
//! \tables           list tables
//! \instances        list summary instances
//! \explain SELECT…  show the query plan
//! \trace SELECT…    execute with the per-operator pipeline trace
//! \stats            store / summary / cache statistics
//! \save FILE        snapshot the database to disk
//! \open FILE        replace the session with a snapshot
//! \help             this text
//! \q                quit
//! ```
//!
//! Run with: `cargo run --example insightnotes_shell`

use insightnotes::engine::ExecOutcome;
use insightnotes::workload::{seed_birds_database, WorkloadConfig};
use insightnotes::Database;
use std::io::{self, BufRead, Write};

fn main() {
    let mut db = Database::new();
    println!("InsightNotes shell — \\help for commands, \\q to quit");
    let stdin = io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("insightnotes> ");
        } else {
            print!("          ...> ");
        }
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            if !meta_command(&mut db, trimmed) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        // Execute once the statement terminates (or on a blank line).
        if trimmed.ends_with(';') || (trimmed.is_empty() && !buffer.trim().is_empty()) {
            let sql = std::mem::take(&mut buffer);
            run_sql(&mut db, &sql);
        }
    }
}

/// Handles a backslash command; returns false to quit.
fn meta_command(db: &mut Database, cmd: &str) -> bool {
    let (name, rest) = cmd.split_once(' ').unwrap_or((cmd, ""));
    match name {
        "\\q" | "\\quit" => return false,
        "\\help" => println!(
            "statements: CREATE TABLE / INSERT / SELECT / EXPLAIN / DELETE /\n\
             ADD ANNOTATION / DELETE ANNOTATION / CREATE SUMMARY INSTANCE /\n\
             LINK SUMMARY / UNLINK SUMMARY / ZOOMIN\n\
             commands: \\seed [n ratio], \\tables, \\instances,\n\
             \\explain <select>, \\trace <select>, \\stats,\n\
             \\save <file>, \\open <file>, \\q"
        ),
        "\\save" => match db.save(rest.trim()) {
            Ok(()) => println!("saved to {}", rest.trim()),
            Err(e) => eprintln!("{e}"),
        },
        "\\open" => match Database::open(rest.trim()) {
            Ok(opened) => {
                *db = opened;
                println!("opened {}", rest.trim());
            }
            Err(e) => eprintln!("{e}"),
        },
        "\\seed" => {
            let mut parts = rest.split_whitespace();
            let n = parts.next().and_then(|s| s.parse().ok()).unwrap_or(50);
            let ratio = parts.next().and_then(|s| s.parse().ok()).unwrap_or(30.0);
            let config = WorkloadConfig {
                num_birds: n,
                annotation_ratio: ratio,
                ..WorkloadConfig::default()
            };
            match seed_birds_database(db, &config) {
                Ok(stats) => println!(
                    "seeded {} birds with {} annotations ({} documents)",
                    stats.rows, stats.annotations, stats.documents
                ),
                Err(e) => eprintln!("{e}"),
            }
        }
        "\\tables" => {
            for t in db.catalog().table_names() {
                let table = db.catalog().table_by_name(t).expect("listed");
                println!("  {t} {} — {} rows", table.schema(), table.len());
            }
        }
        "\\instances" => {
            for inst in db.registry().instances() {
                let labels = inst
                    .labels()
                    .map(|l| format!(" labels={l:?}"))
                    .unwrap_or_default();
                println!("  {} [{}]{}", inst.name(), inst.kind(), labels);
            }
        }
        "\\explain" => match db.plan_sql(rest) {
            Ok(plan) => print!("{}", plan.explain()),
            Err(e) => eprintln!("{e}"),
        },
        "\\trace" => match db.query_traced(rest) {
            Ok((result, trace)) => {
                print!("{trace}");
                print!("{}", db.render_result(&result));
            }
            Err(e) => eprintln!("{e}"),
        },
        "\\stats" => {
            let s = db.store().stats();
            println!(
                "annotations: {} ({} KiB content, {} attachments)",
                s.count,
                s.content_bytes / 1024,
                s.attachments
            );
            println!(
                "summaries:   {} objects ({} KiB)",
                db.registry().object_count(),
                db.registry().total_object_bytes() / 1024
            );
            let c = db.zoom().cache().stats();
            println!(
                "cache [{}]: {} entries, {} KiB used; {} hits / {} misses / {} evictions",
                db.zoom().cache().policy_name(),
                db.zoom().cache().len(),
                db.zoom().cache().used_bytes() / 1024,
                c.hits,
                c.misses,
                c.evictions
            );
        }
        other => eprintln!("unknown command `{other}` — try \\help"),
    }
    true
}

fn run_sql(db: &mut Database, sql: &str) {
    match db.execute_sql(sql) {
        Ok(outcomes) => {
            for outcome in outcomes {
                match outcome {
                    ExecOutcome::Query(result) => print!("{}", db.render_result(&result)),
                    ExecOutcome::ZoomIn(z) => {
                        for a in &z.annotations {
                            let doc = a
                                .document
                                .as_ref()
                                .map(|d| format!(" [+document {} B]", d.len()))
                                .unwrap_or_default();
                            println!("  {} {} — {}{}", a.id, a.author, a.text, doc);
                        }
                        println!(
                            "  ({} annotations from {} rows, {})",
                            z.annotations.len(),
                            z.matched_rows,
                            if z.from_cache {
                                "cache hit"
                            } else {
                                "re-executed"
                            }
                        );
                    }
                    other => println!("{other}"),
                }
            }
        }
        Err(e) => eprintln!("{e}"),
    }
}
